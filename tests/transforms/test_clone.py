"""Unit tests for CFG subgraph cloning (the unroller's workhorse)."""

import pytest

from repro.ir import Branch, Phi, verify_function
from repro.transforms import clone_blocks

from tests.support import parse


def setup_diamond():
    f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  %base = add i32 %x, 100
  br label %top
top:
  br i1 %c, label %l, label %r
l:
  %lv = add i32 %base, 1
  br label %join
r:
  %rv = add i32 %base, 2
  br label %join
join:
  %m = phi i32 [ %lv, %l ], [ %rv, %r ]
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %m
  store i32 %m, i32 addrspace(1)* %g
  br label %out
out:
  ret void
}
""")
    names = ["top", "l", "r", "join"]
    return f, [f.block_by_name(n) for n in names]


class TestCloneBlocks:
    def test_blocks_and_instructions_duplicated(self):
        f, blocks = setup_diamond()
        before = len(f.blocks)
        cloned = clone_blocks(f, blocks, "c1")
        assert len(f.blocks) == before + len(blocks)
        for block in blocks:
            twin = cloned.block(block)
            assert twin is not block
            assert len(twin) == len(block)

    def test_internal_edges_redirected(self):
        f, blocks = setup_diamond()
        cloned = clone_blocks(f, blocks, "c1")
        top_clone = cloned.block(blocks[0])
        term = top_clone.terminator
        assert term.true_successor is cloned.block(blocks[1])
        assert term.false_successor is cloned.block(blocks[2])

    def test_external_edges_preserved(self):
        f, blocks = setup_diamond()
        cloned = clone_blocks(f, blocks, "c1")
        join_clone = cloned.block(blocks[3])
        # join's successor %out is outside the cloned set: unchanged.
        assert join_clone.terminator.true_successor is f.block_by_name("out")

    def test_operands_remapped_internally(self):
        f, blocks = setup_diamond()
        cloned = clone_blocks(f, blocks, "c1")
        join_clone = cloned.block(blocks[3])
        phi = join_clone.phis[0]
        l_clone = cloned.block(blocks[1])
        lv_clone = l_clone.instructions[0]
        assert phi.incoming_for(l_clone) is lv_clone

    def test_external_operands_shared(self):
        f, blocks = setup_diamond()
        base = f.block_by_name("entry").instructions[0]
        cloned = clone_blocks(f, blocks, "c1")
        lv_clone = cloned.block(blocks[1]).instructions[0]
        assert lv_clone.operand(0) is base  # %base defined outside the set

    def test_extra_value_map_seeds_remapping(self):
        f, blocks = setup_diamond()
        base = f.block_by_name("entry").instructions[0]
        replacement = f.args[1]  # %x
        cloned = clone_blocks(f, blocks, "c1",
                              extra_value_map={base: replacement})
        lv_clone = cloned.block(blocks[1]).instructions[0]
        assert lv_clone.operand(0) is replacement

    def test_phi_incoming_from_outside_dropped(self):
        f, blocks = setup_diamond()
        # Clone only {l, r, join}: join's phi has both preds inside, but
        # clone top out and the phi preds come from the cloned set only.
        subset = blocks[1:]  # l, r, join
        cloned = clone_blocks(f, subset, "c2")
        phi = cloned.block(blocks[3]).phis[0]
        assert len(phi.incoming) == 2
        assert all(p in {cloned.block(blocks[1]), cloned.block(blocks[2])}
                   for p in phi.incoming_blocks)

    def test_value_map_identity_for_outsiders(self):
        f, blocks = setup_diamond()
        cloned = clone_blocks(f, blocks, "c1")
        outsider = f.args[0]
        assert cloned.value(outsider) is outsider
