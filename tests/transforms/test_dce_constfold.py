"""Tests for dead-code elimination and constant folding."""

from repro.ir import Load, Store, verify_function
from repro.transforms import eliminate_dead_code, fold_constants

from tests.support import parse


class TestDCE:
    def test_removes_unused_chain(self):
        f = parse("""
define void @k(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = xor i32 %b, 3
  ret void
}
""")
        assert eliminate_dead_code(f)
        assert len(f.entry) == 1  # just the ret

    def test_keeps_stores(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  store i32 1, i32 addrspace(1)* %p
  ret void
}
""")
        assert not eliminate_dead_code(f)
        assert any(isinstance(i, Store) for i in f.entry)

    def test_removes_dead_loads(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %v = load i32, i32 addrspace(1)* %p
  ret void
}
""")
        assert eliminate_dead_code(f)
        assert not any(isinstance(i, Load) for i in f.entry)

    def test_keeps_used_values(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p, i32 %x) {
entry:
  %a = add i32 %x, 1
  store i32 %a, i32 addrspace(1)* %p
  ret void
}
""")
        assert not eliminate_dead_code(f)

    def test_keeps_barrier_calls(self):
        f = parse("""
define void @k() {
entry:
  call void @llvm.gpu.barrier()
  ret void
}
""")
        assert not eliminate_dead_code(f)


class TestConstFold:
    def test_folds_arithmetic_chain(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %a = add i32 2, 3
  %b = mul i32 %a, 4
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %b, i32 addrspace(1)* %g
  ret void
}
""")
        assert fold_constants(f)
        store = [i for i in f.entry if i.opcode == "store"][0]
        assert store.value.value == 20

    def test_folds_comparison(self):
        f = parse("""
define void @k() {
entry:
  %c = icmp slt i32 3, 5
  br i1 %c, label %a, label %b
a:
  ret void
b:
  ret void
}
""")
        assert fold_constants(f)
        assert not f.entry.terminator.is_conditional
        assert f.entry.terminator.true_successor.name == "a"
        verify_function(f)

    def test_branch_fold_updates_phis(self):
        f = parse("""
define void @k() {
entry:
  br i1 0, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret void
}
""")
        fold_constants(f)
        verify_function(f)
        # The dead arm still has its edge until unreachable cleanup runs.
        from repro.transforms import remove_unreachable_blocks

        remove_unreachable_blocks(f)
        verify_function(f)
        phi = f.block_by_name("m").phis[0]
        assert len(phi.incoming) == 1

    def test_algebraic_identities(self):
        f = parse("""
define void @k(i32 %x, i32 addrspace(1)* %p) {
entry:
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = sub i32 %b, %b
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %c, i32 addrspace(1)* %g
  ret void
}
""")
        fold_constants(f)
        store = [i for i in f.entry if i.opcode == "store"][0]
        assert store.value.value == 0

    def test_select_with_constant_condition(self):
        f = parse("""
define void @k(i32 %x, i32 %y, i32 addrspace(1)* %p) {
entry:
  %s = select i1 1, i32 %x, i32 %y
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %s, i32 addrspace(1)* %g
  ret void
}
""")
        fold_constants(f)
        store = [i for i in f.entry if i.opcode == "store"][0]
        assert store.value is f.args[0]

    def test_division_by_zero_not_folded(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %d = sdiv i32 5, 0
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %d, i32 addrspace(1)* %g
  ret void
}
""")
        fold_constants(f)
        assert any(i.opcode == "sdiv" for i in f.entry)
