"""Tests for the pass pipeline infrastructure."""

import pytest

from repro.transforms import PassPipeline, eliminate_dead_code, fold_constants

from tests.support import parse


def make_function():
    return parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %a = add i32 2, 3
  %dead = mul i32 %a, 7
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %a, i32 addrspace(1)* %g
  ret void
}
""")


class TestPipeline:
    def test_runs_passes_in_order(self):
        f = make_function()
        pipeline = PassPipeline()
        order = []
        pipeline.add("first", lambda fn: order.append("first") or False)
        pipeline.add("second", lambda fn: order.append("second") or False)
        pipeline.run(f)
        assert order == ["first", "second"]

    def test_reports_changes(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.add("dce", eliminate_dead_code)
        assert pipeline.run(f)
        assert not pipeline.run(f)  # second run: nothing left to do

    def test_records_timings(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.run(f)
        assert len(pipeline.timings) == 1
        timing = pipeline.timings[0]
        assert timing.name == "fold"
        assert timing.seconds >= 0
        assert timing.changed
        assert pipeline.total_seconds >= timing.seconds

    def test_run_to_fixpoint(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.add("dce", eliminate_dead_code)
        assert pipeline.run_to_fixpoint(f)
        # Fixpoint reached: constants folded, dead mul gone.
        assert len(f.entry) == 3  # gep, store, ret

    def test_fixpoint_divergence_detected(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("always-changes", lambda fn: True)
        with pytest.raises(RuntimeError, match="fixpoint"):
            pipeline.run_to_fixpoint(f, max_iterations=4)

    def test_verify_mode_catches_broken_pass(self):
        f = make_function()

        def breaker(fn):
            # Remove the terminator: structurally invalid.
            term = fn.entry.terminator
            fn.entry._instructions.remove(term)
            return True

        pipeline = PassPipeline(verify=True)
        pipeline.add("breaker", breaker)
        with pytest.raises(RuntimeError, match="verification failed after"):
            pipeline.run(f)
