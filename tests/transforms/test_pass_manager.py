"""Tests for the pass pipeline infrastructure."""

import pytest

from repro.transforms import PassPipeline, eliminate_dead_code, fold_constants

from tests.support import parse


def make_function():
    return parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %a = add i32 2, 3
  %dead = mul i32 %a, 7
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %a, i32 addrspace(1)* %g
  ret void
}
""")


class TestPipeline:
    def test_runs_passes_in_order(self):
        f = make_function()
        pipeline = PassPipeline()
        order = []
        pipeline.add("first", lambda fn: order.append("first") or False)
        pipeline.add("second", lambda fn: order.append("second") or False)
        pipeline.run(f)
        assert order == ["first", "second"]

    def test_reports_changes(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.add("dce", eliminate_dead_code)
        assert pipeline.run(f)
        assert not pipeline.run(f)  # second run: nothing left to do

    def test_records_timings(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.run(f)
        assert len(pipeline.timings) == 1
        timing = pipeline.timings[0]
        assert timing.name == "fold"
        assert timing.seconds >= 0
        assert timing.changed
        assert pipeline.total_seconds >= timing.seconds

    def test_run_to_fixpoint(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.add("dce", eliminate_dead_code)
        assert pipeline.run_to_fixpoint(f)
        # Fixpoint reached: constants folded, dead mul gone.
        assert len(f.entry) == 3  # gep, store, ret

    def test_timings_scoped_per_run(self):
        # Regression: timings used to accumulate across run() calls, so
        # total_seconds conflated every function ever run through the
        # same pipeline object (skewing Table II's breakdown).
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.run(f)
        pipeline.run(make_function())
        assert len(pipeline.timings) == 1  # only the latest invocation
        assert len(pipeline.cumulative_timings) == 2
        assert pipeline.cumulative_seconds >= pipeline.total_seconds

    def test_fixpoint_timings_cover_whole_invocation(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.add("dce", eliminate_dead_code)
        pipeline.run_to_fixpoint(f)
        # More than one iteration ran, all within a single timing scope.
        assert len(pipeline.timings) > 2
        assert len(pipeline.timings) % 2 == 0
        assert pipeline.timings == pipeline.cumulative_timings

    def test_collect_ir_stats(self):
        f = make_function()
        pipeline = PassPipeline(collect_ir_stats=True)
        pipeline.add("fold", fold_constants)
        pipeline.add("dce", eliminate_dead_code)
        pipeline.run(f)
        fold, dce = pipeline.timings
        assert fold.blocks_before == fold.blocks_after == 1
        assert fold.instructions_after < fold.instructions_before
        event = fold.as_dict()
        assert event["pass"] == "fold" and event["changed"]
        assert event["instructions_before"] > event["instructions_after"]

    def test_ir_stats_off_by_default(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("fold", fold_constants)
        pipeline.run(f)
        timing = pipeline.timings[0]
        assert timing.blocks_before is None
        assert "blocks_before" not in timing.as_dict()

    def test_fixpoint_divergence_detected(self):
        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("always-changes", lambda fn: True)
        with pytest.raises(RuntimeError, match="fixpoint"):
            pipeline.run_to_fixpoint(f, max_iterations=4)

    def test_fixpoint_error_names_unstable_passes(self):
        from repro.transforms import FixpointError

        f = make_function()
        pipeline = PassPipeline()
        pipeline.add("stable", lambda fn: False)
        pipeline.add("oscillator", lambda fn: True)
        with pytest.raises(FixpointError) as excinfo:
            pipeline.run_to_fixpoint(f, max_iterations=3)
        assert excinfo.value.unstable_passes == ["oscillator"]
        assert "oscillator" in str(excinfo.value)
        assert "stable" not in str(excinfo.value).split("passes still")[1]

    def test_verify_mode_catches_broken_pass(self):
        f = make_function()

        def breaker(fn):
            # Remove the terminator: structurally invalid.
            term = fn.entry.terminator
            fn.entry._instructions.remove(term)
            return True

        pipeline = PassPipeline(verify=True)
        pipeline.add("breaker", breaker)
        with pytest.raises(RuntimeError, match="verification failed after"):
            pipeline.run(f)
