"""Tests for the SimplifyCFG cleanup bundle."""

import pytest

from repro.ir import Branch, IRBuilder, Phi, I32, const_bool, verify_function
from repro.transforms import (
    fold_redundant_branches,
    merge_straightline_blocks,
    remove_forwarding_blocks,
    remove_trivial_phis,
    remove_unreachable_blocks,
    simplify_cfg,
)

from tests.support import parse, straightline_function


class TestUnreachable:
    def test_removes_dead_block(self):
        f = parse("""
define void @k() {
entry:
  ret void
dead:
  %x = add i32 1, 2
  ret void
}
""")
        assert remove_unreachable_blocks(f)
        assert [b.name for b in f.blocks] == ["entry"]
        verify_function(f)

    def test_removes_dead_loop_with_phi_cycle(self):
        f = parse("""
define void @k() {
entry:
  ret void
deadh:
  %i = phi i32 [ %ni, %deadl ]
  br label %deadl
deadl:
  %ni = add i32 %i, 1
  br label %deadh
}
""")
        assert remove_unreachable_blocks(f)
        assert len(f.blocks) == 1
        verify_function(f)

    def test_fixes_phis_referencing_dead_preds(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br label %m
dead:
  br label %m
m:
  %p = phi i32 [ 1, %entry ], [ 2, %dead ]
  ret void
}
""")
        remove_unreachable_blocks(f)
        phi = f.block_by_name("m").phis[0]
        assert len(phi.incoming) == 1
        verify_function(f)

    def test_noop_when_all_reachable(self):
        f = straightline_function(3)
        assert not remove_unreachable_blocks(f)


class TestFoldBranches:
    def test_identical_successors_folded(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %next, label %next
next:
  ret void
}
""")
        assert fold_redundant_branches(f)
        assert not f.entry.terminator.is_conditional
        verify_function(f)


class TestTrivialPhis:
    def test_same_value_phi_removed(self):
        f = parse("""
define void @k(i1 %c, i32 %v) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ %v, %a ], [ %v, %b ]
  %use = add i32 %p, 1
  ret void
}
""")
        assert remove_trivial_phis(f)
        m = f.block_by_name("m")
        assert not m.phis
        assert m.instructions[0].operand(0) is f.args[1]
        verify_function(f)

    def test_self_referencing_phi_folded(self):
        f = parse("""
define void @k(i32 %v) {
entry:
  br label %h
h:
  %p = phi i32 [ %v, %entry ], [ %p, %h ]
  %c = icmp slt i32 %p, 10
  br i1 %c, label %h, label %x
x:
  ret void
}
""")
        assert remove_trivial_phis(f)
        verify_function(f)

    def test_real_phi_kept(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret void
}
""")
        assert not remove_trivial_phis(f)


class TestMergeBlocks:
    def test_straightline_collapses_to_one_block(self):
        f = straightline_function(4)
        simplify_cfg(f)
        assert len(f.blocks) == 1
        verify_function(f)

    def test_merge_preserves_order_and_edges(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  %x = add i32 1, 2
  br label %mid
mid:
  %y = add i32 %x, 3
  br i1 %c, label %a, label %b
a:
  ret void
b:
  ret void
}
""")
        assert merge_straightline_blocks(f)
        verify_function(f)
        entry = f.entry
        assert [i.opcode for i in entry] == ["add", "add", "br"]
        assert len(entry.succs) == 2

    def test_merge_updates_downstream_phis(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %x, label %m
x:
  br label %mid
mid:
  %v = add i32 1, 2
  br label %m
m:
  %p = phi i32 [ 0, %entry ], [ %v, %mid ]
  ret void
}
""")
        assert merge_straightline_blocks(f)
        verify_function(f)

    def test_no_merge_when_multiple_preds(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %a, label %m
a:
  br label %m
m:
  ret void
}
""")
        assert not merge_straightline_blocks(f)


class TestForwardingBlocks:
    def test_forwarder_removed(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %fwd, label %m
fwd:
  br label %m
m:
  ret void
}
""")
        assert remove_forwarding_blocks(f)
        verify_function(f)
        assert len(f.blocks) == 2

    def test_forwarder_with_phi_value_moved(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %fwd, label %m
fwd:
  br label %m
m:
  %p = phi i32 [ 1, %fwd ], [ 2, %entry ]
  ret void
}
""")
        # Removing %fwd creates a duplicate-edge conditional from entry;
        # the phi values differ (1 via fwd, 2 direct), so removal must be
        # refused.
        assert not remove_forwarding_blocks(f)
        verify_function(f)

    def test_forwarder_with_equal_phi_values_removed(self):
        f = parse("""
define void @k(i1 %c, i32 %v) {
entry:
  br i1 %c, label %fwd, label %m
fwd:
  br label %m
m:
  %p = phi i32 [ %v, %fwd ], [ %v, %entry ]
  ret void
}
""")
        assert remove_forwarding_blocks(f)
        verify_function(f)


class TestFixpoint:
    def test_diamond_with_constant_condition_collapses(self):
        f = parse("""
define void @k() {
entry:
  br i1 1, label %a, label %b
a:
  %x = add i32 1, 2
  br label %m
b:
  %y = add i32 3, 4
  br label %m
m:
  %p = phi i32 [ %x, %a ], [ %y, %b ]
  ret void
}
""")
        from repro.transforms import fold_constants

        fold_constants(f)
        simplify_cfg(f)
        verify_function(f)
        assert len(f.blocks) == 1
