"""Tests for trip-count computation and full loop unrolling."""

import pytest

from repro.analysis import compute_loop_info
from repro.ir import verify_function
from repro.transforms import (
    UnrollLimits,
    compute_trip_count,
    optimize,
    unroll_loop,
    unroll_loops,
)

from tests.support import parse


def simple_loop(bound: int, step: int = 1) -> str:
    return f"""
define void @k(i32 addrspace(1)* %p) {{
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %c = icmp slt i32 %i, {bound}
  br i1 %c, label %body, label %exit
body:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %i
  store i32 %i, i32 addrspace(1)* %g
  %ni = add i32 %i, {step}
  br label %h
exit:
  ret void
}}
"""


class TestTripCount:
    def test_counted_loop(self):
        f = parse(simple_loop(5))
        loop = compute_loop_info(f).loops[0]
        assert compute_trip_count(loop) == 5

    def test_strided_loop(self):
        f = parse(simple_loop(10, step=3))
        loop = compute_loop_info(f).loops[0]
        assert compute_trip_count(loop) == 4  # 0,3,6,9

    def test_zero_trip_loop(self):
        f = parse(simple_loop(0))
        loop = compute_loop_info(f).loops[0]
        assert compute_trip_count(loop) == 0

    def test_shift_update_loop(self):
        # The bitonic pattern: j = 8; while (j > 0) j >>= 1  -> 4 trips
        f = parse("""
define void @k() {
entry:
  br label %h
h:
  %j = phi i32 [ 8, %entry ], [ %nj, %body ]
  %c = icmp ugt i32 %j, 0
  br i1 %c, label %body, label %exit
body:
  %nj = lshr i32 %j, 1
  br label %h
exit:
  ret void
}
""")
        loop = compute_loop_info(f).loops[0]
        assert compute_trip_count(loop) == 4

    def test_runtime_bound_not_counted(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
""")
        loop = compute_loop_info(f).loops[0]
        assert compute_trip_count(loop) is None

    def test_runtime_init_not_counted(self):
        f = parse("""
define void @k(i32 %start) {
entry:
  br label %h
h:
  %i = phi i32 [ %start, %entry ], [ %ni, %body ]
  %c = icmp slt i32 %i, 5
  br i1 %c, label %body, label %exit
body:
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
""")
        loop = compute_loop_info(f).loops[0]
        assert compute_trip_count(loop) is None

    def test_infinite_loop_hits_bound(self):
        f = parse("""
define void @k() {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i, %body ]
  %c = icmp slt i32 %i, 5
  br i1 %c, label %body, label %exit
body:
  br label %h
exit:
  ret void
}
""")
        loop = compute_loop_info(f).loops[0]
        assert compute_trip_count(loop) is None


class TestUnrollLoop:
    def test_full_unroll_removes_loop(self):
        f = parse(simple_loop(4))
        loop = compute_loop_info(f).loops[0]
        assert unroll_loop(f, loop)
        verify_function(f)
        assert not compute_loop_info(f).loops
        from repro.transforms import fold_constants

        fold_constants(f)
        stores = [i for i in f.instructions() if i.opcode == "store"]
        assert len(stores) == 4
        # Stored values fold to the constant IV values.
        assert sorted(s.value.value for s in stores) == [0, 1, 2, 3]

    def test_zero_trip_unroll(self):
        f = parse(simple_loop(0))
        loop = compute_loop_info(f).loops[0]
        assert unroll_loop(f, loop)
        verify_function(f)
        assert not any(i.opcode == "store" for i in f.instructions())

    def test_respects_trip_limit(self):
        f = parse(simple_loop(50))
        loop = compute_loop_info(f).loops[0]
        assert not unroll_loop(f, loop, UnrollLimits(max_trip_count=10))

    def test_live_out_value(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %acc = phi i32 [ 0, %entry ], [ %nacc, %body ]
  %c = icmp slt i32 %i, 3
  br i1 %c, label %body, label %exit
body:
  %nacc = add i32 %acc, %i
  %ni = add i32 %i, 1
  br label %h
exit:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %acc, i32 addrspace(1)* %g
  ret void
}
""")
        loop = compute_loop_info(f).loops[0]
        assert unroll_loop(f, loop)
        verify_function(f)
        from repro.transforms import fold_constants

        fold_constants(f)
        store = [i for i in f.instructions() if i.opcode == "store"][0]
        assert store.value.value == 0 + 1 + 2  # sum of 0..2


class TestUnrollLoops:
    def test_nested_loops_unroll_inside_out(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  br label %oh
oh:
  %i = phi i32 [ 0, %entry ], [ %ni, %olatch ]
  %oc = icmp slt i32 %i, 2
  br i1 %oc, label %ih, label %exit
ih:
  %j = phi i32 [ 0, %oh ], [ %nj, %ibody ]
  %ic = icmp slt i32 %j, 2
  br i1 %ic, label %ibody, label %olatch
ibody:
  %idx = add i32 %i, %j
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %idx
  store i32 %idx, i32 addrspace(1)* %g
  %nj = add i32 %j, 1
  br label %ih
olatch:
  %ni = add i32 %i, 1
  br label %oh
exit:
  ret void
}
""")
        assert unroll_loops(f)
        verify_function(f)
        assert not compute_loop_info(f).loops
        stores = [i for i in f.instructions() if i.opcode == "store"]
        assert len(stores) == 4

    def test_o3_executes_same_as_rolled(self):
        # Differential: simulate before and after unrolling.
        from repro.simt import run_kernel
        from repro.ir import Module

        text = simple_loop(6)
        rolled = parse(text)
        unrolled = parse(text)
        optimize(unrolled)
        verify_function(unrolled)

        m1, m2 = Module("m1"), Module("m2")
        m1.add_function(rolled)
        m2.add_function(unrolled)
        out1, _ = run_kernel(m1, "k", 1, 4, buffers={"p": [0] * 8})
        out2, _ = run_kernel(m2, "k", 1, 4, buffers={"p": [0] * 8})
        assert out1 == out2
