"""Tests for loop-invariant code motion."""

import pytest

from repro.ir import Module, verify_function
from repro.simt import run_kernel
from repro.transforms import hoist_loop_invariants

from tests.support import parse

LOOP = """
define void @k(i32 addrspace(1)* %p, i32 %n, i32 %scale) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %inv = mul i32 %scale, 3
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v = load i32, i32 addrspace(1)* %g
  %s = add i32 %v, %inv
  store i32 %s, i32 addrspace(1)* %g
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
"""


class TestHoisting:
    def test_invariant_mul_and_gep_hoisted(self):
        f = parse(LOOP)
        assert hoist_loop_invariants(f)
        verify_function(f)
        entry = f.entry
        opcodes = [i.opcode for i in entry]
        assert "mul" in opcodes
        assert "getelementptr" in opcodes
        body = f.block_by_name("body")
        assert "mul" not in [i.opcode for i in body]

    def test_loads_stay_in_loop(self):
        f = parse(LOOP)
        hoist_loop_invariants(f)
        body = f.block_by_name("body")
        assert any(i.opcode == "load" for i in body)

    def test_variant_computation_stays(self):
        f = parse(LOOP)
        hoist_loop_invariants(f)
        body = f.block_by_name("body")
        # %s depends on the loaded value; %ni depends on the φ.
        assert sum(1 for i in body if i.opcode == "add") == 2

    def test_chained_invariants_hoist_together(self):
        f = parse("""
define void @k(i32 %x, i32 %n, i32 addrspace(1)* %p) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %a = add i32 %x, 1
  %b = mul i32 %a, 5
  %d = xor i32 %b, 3
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %i
  store i32 %d, i32 addrspace(1)* %g
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
""")
        assert hoist_loop_invariants(f)
        verify_function(f)
        body = f.block_by_name("body")
        body_ops = [i.opcode for i in body]
        assert "mul" not in body_ops and "xor" not in body_ops
        # The gep uses the induction variable: must stay.
        assert "getelementptr" in body_ops

    def test_no_preheader_no_hoist(self):
        f = parse("""
define void @k(i1 %c, i32 %x, i32 %n) {
entry:
  br i1 %c, label %pre1, label %pre2
pre1:
  br label %h
pre2:
  br label %h
h:
  %i = phi i32 [ 0, %pre1 ], [ 0, %pre2 ], [ %ni, %h ]
  %inv = mul i32 %x, 3
  %ni = add i32 %i, %inv
  %cc = icmp slt i32 %ni, %n
  br i1 %cc, label %h, label %exit
exit:
  ret void
}
""")
        # Two out-of-loop predecessors: no unique preheader to hoist into.
        assert not hoist_loop_invariants(f)

    def test_division_never_hoisted(self):
        f = parse("""
define void @k(i32 %x, i32 %y, i32 %n, i32 addrspace(1)* %p) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %q = sdiv i32 %x, %y
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %i
  store i32 %q, i32 addrspace(1)* %g
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
""")
        hoist_loop_invariants(f)
        # The sdiv may trap (y == 0) and the loop may run zero times:
        # hoisting it would introduce the trap.
        body = f.block_by_name("body")
        assert any(i.opcode == "sdiv" for i in body)

    def test_semantics_preserved(self):
        base = parse(LOOP)
        hoisted = parse(LOOP)
        hoist_loop_invariants(hoisted)
        verify_function(hoisted)
        args = dict(scalars={"n": 5, "scale": 7})
        out1, m1 = run_kernel(base.module, "k", 1, 4,
                              buffers={"p": [1, 2, 3, 4]}, **args)
        out2, m2 = run_kernel(hoisted.module, "k", 1, 4,
                              buffers={"p": [1, 2, 3, 4]}, **args)
        assert out1 == out2
        assert m2.cycles < m1.cycles  # per-iteration work went down

    def test_nested_loop_hoists_through_levels(self):
        f = parse("""
define void @k(i32 %x, i32 %n, i32 addrspace(1)* %p) {
entry:
  br label %oh
oh:
  %i = phi i32 [ 0, %entry ], [ %ni, %olatch ]
  %oc = icmp slt i32 %i, %n
  br i1 %oc, label %ipre, label %exit
ipre:
  br label %ih
ih:
  %j = phi i32 [ 0, %ipre ], [ %nj, %ibody ]
  %ic = icmp slt i32 %j, %n
  br i1 %ic, label %ibody, label %olatch
ibody:
  %inv = mul i32 %x, 9
  %idx = add i32 %i, %j
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %idx
  store i32 %inv, i32 addrspace(1)* %g
  %nj = add i32 %j, 1
  br label %ih
olatch:
  %ni = add i32 %i, 1
  br label %oh
exit:
  ret void
}
""")
        assert hoist_loop_invariants(f)
        verify_function(f)
        # %inv is invariant w.r.t. both loops; after innermost-first LICM
        # it must reach a block outside the outer loop.
        inv = [i for i in f.instructions() if i.opcode == "mul"][0]
        from repro.analysis import compute_loop_info

        li = compute_loop_info(f)
        assert li.loop_for(inv.parent) is None
