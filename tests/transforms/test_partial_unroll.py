"""Tests for runtime (partial) loop unrolling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import compute_loop_info
from repro.ir import Module, verify_function
from repro.simt import run_kernel
from repro.transforms import UnrollLimits, unroll_partial

from tests.support import parse

ACCUMULATOR_LOOP = """
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %body ]
  %acc = phi i32 [ 0, %entry ], [ %nacc, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %i
  %v = load i32, i32 addrspace(1)* %g
  %nacc = add i32 %acc, %v
  %ni = add i32 %i, 1
  br label %h
exit:
  %eg = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %acc, i32 addrspace(1)* %eg
  ret void
}
"""


def unrolled(factor):
    f = parse(ACCUMULATOR_LOOP)
    loop = compute_loop_info(f).loops[0]
    assert unroll_partial(f, loop, factor)
    verify_function(f)
    return f


def run(f, n, data):
    out, metrics = run_kernel(f.module, "k", 1, 1,
                              buffers={"p": list(data)}, scalars={"n": n})
    return out["p"][0], metrics


class TestBasics:
    def test_factor_one_is_rejected(self):
        f = parse(ACCUMULATOR_LOOP)
        loop = compute_loop_info(f).loops[0]
        assert not unroll_partial(f, loop, 1)

    def test_respects_size_limit(self):
        f = parse(ACCUMULATOR_LOOP)
        loop = compute_loop_info(f).loops[0]
        assert not unroll_partial(f, loop, 4,
                                  UnrollLimits(max_unrolled_instructions=4))

    def test_loop_still_exists_with_fewer_header_visits(self):
        f = unrolled(4)
        loops = compute_loop_info(f).loops
        assert len(loops) == 1  # still a loop, just a longer body

    def test_execution_cost_unchanged(self):
        # The kept-exit-check variant trades one (header-cond, latch)
        # branch pair per iteration for a (check-cond, latch) pair: our
        # issue-cycle model sees the same dynamic cost, and the transform
        # must certainly not make things worse.
        base = parse(ACCUMULATOR_LOOP)
        fast = unrolled(4)
        data = list(range(16))
        _, metrics_base = run_kernel(base.module, "k", 1, 1,
                                     buffers={"p": list(data)},
                                     scalars={"n": 16})
        _, metrics_fast = run_kernel(fast.module, "k", 1, 1,
                                     buffers={"p": list(data)},
                                     scalars={"n": 16})
        assert metrics_fast.cycles <= metrics_base.cycles * 1.02


@given(factor=st.integers(2, 5), n=st.integers(0, 12))
@settings(max_examples=40, deadline=None)
def test_partial_unroll_differential(factor, n):
    base = parse(ACCUMULATOR_LOOP)
    fast = unrolled(factor)
    data = [3 * i + 1 for i in range(16)]
    expected, _ = run(base, n, data)
    actual, _ = run(fast, n, data)
    assert expected == actual


def test_partial_unroll_with_internal_control_flow():
    src = """
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %i
  %v = load i32, i32 addrspace(1)* %g
  %odd = and i32 %v, 1
  %isodd = icmp eq i32 %odd, 1
  br i1 %isodd, label %bump, label %latch
bump:
  %b = add i32 %v, 100
  store i32 %b, i32 addrspace(1)* %g
  br label %latch
latch:
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
"""
    base = parse(src)
    fast = parse(src)
    loop = compute_loop_info(fast).loops[0]
    assert unroll_partial(fast, loop, 3)
    verify_function(fast)
    data = list(range(12))
    out1, _ = run_kernel(base.module, "k", 1, 1,
                         buffers={"p": list(data)}, scalars={"n": 10})
    out2, _ = run_kernel(fast.module, "k", 1, 1,
                         buffers={"p": list(data)}, scalars={"n": 10})
    assert out1 == out2
