"""The unified Pass API: Pass objects, PassResult, and the verify hook."""

import pytest

from repro import (
    BranchFusionPass,
    CFMPass,
    TailMergingPass,
    run_cfm,
)
from repro.transforms import (
    CallablePass,
    Pass,
    PassPipeline,
    PassResult,
    as_pass,
    eliminate_dead_code,
    fold_constants,
)

from tests.support import build_diamond, parse


def make_function():
    return parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %a = add i32 2, 3
  %dead = mul i32 %a, 7
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %a, i32 addrspace(1)* %g
  ret void
}
""")


class TestPassObjects:
    def test_pass_result_is_truthy_on_change(self):
        assert PassResult(changed=True)
        assert not PassResult(changed=False)

    def test_callable_pass_wraps_function(self):
        p = CallablePass("dce", eliminate_dead_code)
        assert p.name == "dce"
        result = p.run(make_function())
        assert isinstance(result, PassResult) and result.changed

    def test_as_pass_passthrough_and_wrap(self):
        p = CallablePass("x", lambda f: False)
        assert as_pass(p) is p
        wrapped = as_pass(lambda f: False, name="y")
        assert isinstance(wrapped, Pass) and wrapped.name == "y"

    def test_base_pass_requires_run(self):
        with pytest.raises(NotImplementedError):
            Pass().run(make_function())

    def test_pass_object_call_protocol(self):
        # __call__ keeps Pass objects usable anywhere a bool-returning
        # transform function is expected.
        assert CallablePass("fold", fold_constants)(make_function()) is True


class TestPipelineHosting:
    def test_accepts_mixed_pass_forms(self):
        pipeline = PassPipeline([("fold", fold_constants),
                                 CallablePass("dce", eliminate_dead_code)])
        assert [p.name for p in pipeline.passes] == ["fold", "dce"]
        assert pipeline.run(make_function())

    def test_hosts_cfm_and_baselines_uniformly(self):
        for reducer in (CFMPass(), TailMergingPass(), BranchFusionPass()):
            function = build_diamond(identical=True)
            pipeline = PassPipeline([reducer])
            result = pipeline.run(function)
            assert isinstance(result, bool)

    def test_cfm_pass_exposes_stats(self):
        function = build_diamond(identical=True)
        p = CFMPass()
        result = p.run(function)
        assert result.changed
        assert p.stats is result.stats
        assert len(result.stats.melds) == 1

    def test_run_cfm_alias_matches_pass(self):
        via_alias = run_cfm(build_diamond(identical=True))
        via_pass = CFMPass().run(build_diamond(identical=True)).stats
        assert len(via_alias.melds) == len(via_pass.melds) == 1


class TestVerifyAfterEach:
    def test_hook_sees_every_pass_in_order(self):
        seen = []
        pipeline = PassPipeline(
            [("fold", fold_constants), ("dce", eliminate_dead_code)],
            verify_after_each=lambda name, fn: seen.append(name))
        pipeline.run(make_function())
        assert seen == ["fold", "dce"]

    def test_hook_failure_propagates(self):
        class Boom(Exception):
            pass

        def hook(name, fn):
            raise Boom(name)

        pipeline = PassPipeline([("fold", fold_constants)],
                                verify_after_each=hook)
        with pytest.raises(Boom):
            pipeline.run(make_function())

    def test_hook_runs_even_when_pass_reports_no_change(self):
        seen = []
        pipeline = PassPipeline([("noop", lambda f: False)],
                                verify_after_each=lambda n, f: seen.append(n))
        pipeline.run(make_function())
        assert seen == ["noop"]


class TestLintAfterEach:
    def test_hook_symmetric_with_verify(self):
        verified, linted = [], []
        pipeline = PassPipeline(
            [("fold", fold_constants), ("dce", eliminate_dead_code)],
            verify_after_each=lambda name, fn: verified.append(name),
            lint_after_each=lambda name, fn: linted.append(name))
        pipeline.run(make_function())
        assert linted == verified == ["fold", "dce"]

    def test_lint_hook_failure_propagates(self):
        class LintBoom(Exception):
            pass

        def hook(name, fn):
            raise LintBoom(name)

        pipeline = PassPipeline([("fold", fold_constants)],
                                lint_after_each=hook)
        with pytest.raises(LintBoom):
            pipeline.run(make_function())

    def test_default_is_none(self):
        assert PassPipeline([]).lint_after_each is None

    def test_changed_pass_invalidates_divergence_memo(self):
        from repro.analysis import cached_divergence

        function = make_function()
        before = cached_divergence(function)
        observed = []
        pipeline = PassPipeline(
            [("fold", fold_constants)],
            lint_after_each=lambda n, f: observed.append(cached_divergence(f)))
        assert pipeline.run(function)  # fold changes the IR
        # The hook saw a FRESH analysis, not the stale pre-pass memo.
        assert observed[0] is not before
