"""Tests for dominator-scoped common-subexpression elimination."""

import pytest

from repro.ir import GetElementPtr, verify_function
from repro.transforms import eliminate_common_subexpressions

from tests.support import parse


class TestBasic:
    def test_duplicate_gep_removed(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p, i32 %i) {
entry:
  %g1 = getelementptr i32, i32 addrspace(1)* %p, i32 %i
  %v = load i32, i32 addrspace(1)* %g1
  %g2 = getelementptr i32, i32 addrspace(1)* %p, i32 %i
  store i32 %v, i32 addrspace(1)* %g2
  ret void
}
""")
        assert eliminate_common_subexpressions(f)
        verify_function(f)
        geps = [i for i in f.instructions() if isinstance(i, GetElementPtr)]
        assert len(geps) == 1
        store = [i for i in f.instructions() if i.opcode == "store"][0]
        assert store.pointer is geps[0]

    def test_constant_operands_compared_by_value(self):
        f = parse("""
define void @k(i32 %x, i32 addrspace(1)* %p) {
entry:
  %a = add i32 %x, 5
  %b = add i32 %x, 5
  %c = add i32 %x, 6
  %s = add i32 %b, %c
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %s
  store i32 %a, i32 addrspace(1)* %g
  ret void
}
""")
        assert eliminate_common_subexpressions(f)
        adds = [i for i in f.instructions() if i.opcode == "add"]
        assert len(adds) == 3  # a==b merged; c and s stay

    def test_loads_not_merged(self):
        # No alias analysis: two loads of the same address may see
        # different values if a store intervenes.
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  %v1 = load i32, i32 addrspace(1)* %g
  store i32 99, i32 addrspace(1)* %g
  %v2 = load i32, i32 addrspace(1)* %g
  %s = add i32 %v1, %v2
  store i32 %s, i32 addrspace(1)* %g
  ret void
}
""")
        before = sum(1 for i in f.instructions() if i.opcode == "load")
        eliminate_common_subexpressions(f)
        after = sum(1 for i in f.instructions() if i.opcode == "load")
        assert before == after == 2

    def test_division_not_merged(self):
        # sdiv is not speculatable; EarlyCSE-style merging of the pure
        # value would be fine, but we keep the conservative rule simple.
        f = parse("""
define void @k(i32 %x, i32 %y, i32 addrspace(1)* %p) {
entry:
  %a = sdiv i32 %x, %y
  %b = sdiv i32 %x, %y
  %s = add i32 %a, %b
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %s, i32 addrspace(1)* %g
  ret void
}
""")
        assert not eliminate_common_subexpressions(f)


class TestScoping:
    def test_dominating_expression_reused_in_children(self):
        f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  %a = add i32 %x, 1
  br i1 %c, label %l, label %r
l:
  %al = add i32 %x, 1
  %gl = getelementptr i32, i32 addrspace(1)* %p, i32 %al
  store i32 0, i32 addrspace(1)* %gl
  br label %m
r:
  %ar = add i32 %x, 1
  %gr = getelementptr i32, i32 addrspace(1)* %p, i32 %ar
  store i32 1, i32 addrspace(1)* %gr
  br label %m
m:
  ret void
}
""")
        assert eliminate_common_subexpressions(f)
        verify_function(f)
        adds = [i for i in f.instructions() if i.opcode == "add"]
        assert len(adds) == 1  # both arms reuse %a from the dominator

    def test_sibling_expressions_not_shared(self):
        # %al in %l does NOT dominate %r: the same expression in %r must
        # stay (merging would break dominance).
        f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  br i1 %c, label %l, label %r
l:
  %al = add i32 %x, 1
  %gl = getelementptr i32, i32 addrspace(1)* %p, i32 %al
  store i32 0, i32 addrspace(1)* %gl
  br label %m
r:
  %ar = add i32 %x, 1
  %gr = getelementptr i32, i32 addrspace(1)* %p, i32 %ar
  store i32 1, i32 addrspace(1)* %gr
  br label %m
m:
  ret void
}
""")
        eliminate_common_subexpressions(f)
        verify_function(f)
        adds = [i for i in f.instructions() if i.opcode == "add"]
        assert len(adds) == 2

    def test_melded_code_gets_cleaned(self):
        # The motivating case: CFM leaves duplicate geps behind.
        from repro.core import run_cfm
        from tests.support import build_diamond

        f = build_diamond(identical=True)
        run_cfm(f)
        before = sum(1 for i in f.instructions()
                     if isinstance(i, GetElementPtr))
        eliminate_common_subexpressions(f)
        after = sum(1 for i in f.instructions()
                    if isinstance(i, GetElementPtr))
        assert after <= before

    def test_semantics_preserved(self):
        from repro.simt import run_kernel

        src = """
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %g1 = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v = load i32, i32 addrspace(1)* %g1
  %a1 = add i32 %v, 3
  %a2 = add i32 %v, 3
  %s = mul i32 %a1, %a2
  %g2 = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %s, i32 addrspace(1)* %g2
  ret void
}
"""
        base = parse(src)
        optimized = parse(src)
        eliminate_common_subexpressions(optimized)
        verify_function(optimized)
        out1, _ = run_kernel(base.module, "k", 1, 4, buffers={"p": [1, 2, 3, 4]})
        out2, _ = run_kernel(optimized.module, "k", 1, 4,
                             buffers={"p": [1, 2, 3, 4]})
        assert out1 == out2
