"""Tests for if-conversion (speculation) and SSA dominance repair."""

import pytest

from repro.ir import Select, Undef, VerificationError, verify_function
from repro.transforms import repair_ssa, speculate_hammocks

from tests.support import parse


class TestSpeculate:
    def test_pure_diamond_flattens_to_select(self):
        f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  br i1 %c, label %a, label %b
a:
  %t = add i32 %x, 1
  br label %m
b:
  %e = mul i32 %x, 2
  br label %m
m:
  %r = phi i32 [ %t, %a ], [ %e, %b ]
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %r, i32 addrspace(1)* %g
  ret void
}
""")
        assert speculate_hammocks(f)
        verify_function(f)
        # The arms are gone; merging entry with m is SimplifyCFG's job.
        assert len(f.blocks) == 2
        assert any(isinstance(i, Select) for i in f.entry)
        from repro.transforms import simplify_cfg

        simplify_cfg(f)
        assert len(f.blocks) == 1

    def test_triangle_flattens(self):
        f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  br i1 %c, label %a, label %m
a:
  %t = add i32 %x, 1
  br label %m
m:
  %r = phi i32 [ %t, %a ], [ %x, %entry ]
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %r, i32 addrspace(1)* %g
  ret void
}
""")
        assert speculate_hammocks(f)
        verify_function(f)
        assert any(isinstance(i, Select) for i in f.entry)

    def test_arm_with_store_not_speculated(self):
        f = parse("""
define void @k(i1 %c, i32 addrspace(1)* %p) {
entry:
  br i1 %c, label %a, label %b
a:
  store i32 1, i32 addrspace(1)* %p
  br label %m
b:
  br label %m
m:
  ret void
}
""")
        assert not speculate_hammocks(f)

    def test_arm_with_division_not_speculated(self):
        f = parse("""
define void @k(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %a, label %m
a:
  %d = sdiv i32 %x, %y
  br label %m
m:
  %r = phi i32 [ %d, %a ], [ 0, %entry ]
  ret void
}
""")
        assert not speculate_hammocks(f)

    def test_large_arm_not_speculated(self):
        lines = "\n".join(f"  %v{i} = add i32 %x, {i}" for i in range(20))
        f = parse(f"""
define void @k(i1 %c, i32 %x) {{
entry:
  br i1 %c, label %a, label %m
a:
{lines}
  br label %m
m:
  %r = phi i32 [ %v19, %a ], [ 0, %entry ]
  ret void
}}
""")
        assert not speculate_hammocks(f)

    def test_merge_with_extra_pred_keeps_phi(self):
        f = parse("""
define void @k(i1 %c, i1 %d, i32 %x) {
entry:
  br i1 %d, label %head, label %m
head:
  br i1 %c, label %a, label %b
a:
  %t = add i32 %x, 1
  br label %m
b:
  %e = mul i32 %x, 2
  br label %m
m:
  %r = phi i32 [ %t, %a ], [ %e, %b ], [ 0, %entry ]
  %u = add i32 %r, 1
  ret void
}
""")
        assert speculate_hammocks(f)
        verify_function(f)
        # First the inner diamond flattens (phi keeps entry + head edges);
        # then the remaining pure triangle flattens too, chaining selects.
        m = f.block_by_name("m")
        assert not m.phis
        selects = [i for i in f.instructions() if isinstance(i, Select)]
        assert len(selects) == 2


class TestSSARepair:
    def make_broken(self):
        """A def in %a used in %m, but control can bypass %a — the melding
        situation of the paper's Figure 4."""
        f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  br i1 %c, label %a, label %m
a:
  %v = add i32 %x, 1
  br label %m
m:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %x, i32 addrspace(1)* %g
  ret void
}
""")
        # Break SSA: make the store use %v.
        a = f.block_by_name("a")
        v = a.instructions[0]
        store = [i for i in f.block_by_name("m") if i.opcode == "store"][0]
        store.set_operand(0, v)
        return f, v, store

    def test_detects_and_fixes_violation(self):
        f, v, store = self.make_broken()
        with pytest.raises(VerificationError):
            verify_function(f)
        assert repair_ssa(f)
        verify_function(f)

    def test_inserts_phi_with_undef_bypass(self):
        f, v, store = self.make_broken()
        repair_ssa(f)
        m = f.block_by_name("m")
        phi = m.phis[0]
        assert phi.incoming_for(f.block_by_name("a")) is v
        bypass = phi.incoming_for(f.entry)
        assert isinstance(bypass, Undef)
        assert store.value is phi

    def test_noop_on_valid_ssa(self):
        f = parse("""
define void @k(i32 %x) {
entry:
  %v = add i32 %x, 1
  %w = add i32 %v, 2
  ret void
}
""")
        assert not repair_ssa(f)

    def test_repair_through_loop(self):
        f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  br i1 %c, label %a, label %h
a:
  %v = add i32 %x, 1
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ], [ 0, %a ]
  %ni = add i32 %i, 1
  %cc = icmp slt i32 %ni, 3
  br i1 %cc, label %h, label %m
m:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %x, i32 addrspace(1)* %g
  ret void
}
""")
        a = f.block_by_name("a")
        v = a.instructions[0]
        store = [i for i in f.block_by_name("m") if i.opcode == "store"][0]
        store.set_operand(0, v)
        repair_ssa(f)
        verify_function(f)
