"""Unit tests for the pluggable reconvergence policies.

The corpus-wide differential (``test_executor_diff``) holds both
executors bit-identical under every policy; this file pins down the
scheduler mechanics themselves — min-PC path fusion, divergent loop
exits, barriers under a partial mask — plus the policy registry and the
:class:`~repro.simt.MachineConfig` resolution rules the redesigned
machine API is built on.
"""

from __future__ import annotations

import pytest

from repro import GLOBAL_I32_PTR, ICmpPredicate, KernelBuilder, run_kernel
from repro.ir import I32
from repro.simt import (
    RECONVERGENCE_POLICIES,
    IPDOMPolicy,
    MachineConfig,
    MinPCPolicy,
    ReconvergencePolicy,
    get_policy,
    resolve_machine,
)

from tests.support import parse

EXECUTORS = ("reference", "fast")


def _run_all(module, kernel, buffers, scalars=None, grid=2, block=8):
    """Run every executor × policy combination; assert executor parity
    per policy and memory identity across policies; return per-policy
    ``(outputs, metrics_dict)`` from the fast executor."""
    per_policy = {}
    for policy in RECONVERGENCE_POLICIES:
        results = {}
        for executor in EXECUTORS:
            machine = MachineConfig(executor=executor, reconvergence=policy)
            outputs, metrics = run_kernel(
                module, kernel, grid, block,
                buffers={k: list(v) for k, v in buffers.items()},
                scalars=scalars, machine=machine)
            results[executor] = (outputs, metrics.as_dict())
        assert results["fast"] == results["reference"], \
            f"executors disagree under {policy}"
        per_policy[policy] = results["fast"]
    memories = {policy: result[0] for policy, result in per_policy.items()}
    baseline = memories[RECONVERGENCE_POLICIES[0]]
    for policy, memory in memories.items():
        assert memory == baseline, \
            f"device memory differs between policies ({policy})"
    return per_policy


# ---- scheduler mechanics, driven directly ---------------------------------


class TestMinPCScheduler:
    def test_path_fusion_at_colliding_pc(self):
        # Diamond: entry(0) -> {1, 2} -> join(3).  Both sides advance to
        # the join; the collision fuses them into one full-mask path
        # with exactly one merge notification.
        s = MinPCPolicy().scheduler(0, (0, 1, 2, 3))
        pc, mask, merges = s.next()
        assert (pc, mask, merges) == (0, (0, 1, 2, 3), None)
        s.diverge(1, 2, (0, 1), (2, 3), 3)

        pc, mask, merges = s.next()
        assert (pc, mask, merges) == (1, (0, 1), None)
        s.advance(3)

        pc, mask, merges = s.next()
        assert (pc, mask, merges) == (2, (2, 3), None)
        s.advance(3)

        pc, mask, merges = s.next()
        assert (pc, mask) == (3, (0, 1, 2, 3))
        assert merges == [(3, 4)]
        s.retire()
        assert s.next() == (None, (), None)

    def test_minimum_pc_path_runs_first(self):
        # After divergence the lower-PC side always steps next, no
        # matter which side was "taken".
        s = MinPCPolicy().scheduler(0, (0, 1))
        s.next()
        s.diverge(5, 2, (0,), (1,), -1)  # true side has the higher PC
        pc, mask, _ = s.next()
        assert (pc, mask) == (2, (1,))
        s.retire()
        pc, mask, _ = s.next()
        assert (pc, mask) == (5, (0,))
        s.retire()
        assert s.next()[0] is None

    def test_fused_mask_is_lane_ordered(self):
        # Fusion merges masks in lane order regardless of path order.
        s = MinPCPolicy().scheduler(0, (0, 1, 2, 3))
        s.next()
        s.diverge(1, 2, (1, 3), (0, 2), 3)
        s.next()           # path (1, 3) at pc 1
        s.advance(3)
        s.next()           # path (0, 2) at pc 2
        s.advance(3)
        pc, mask, merges = s.next()
        assert (pc, mask) == (3, (0, 1, 2, 3))
        assert merges == [(3, 4)]

    def test_ignores_rpc(self):
        # Stack-less: the post-dominator hint changes nothing.
        for rpc in (-1, 7):
            s = MinPCPolicy().scheduler(0, (0, 1))
            s.next()
            s.diverge(1, 2, (0,), (1,), rpc)
            assert s.next()[0] == 1


class TestIPDOMScheduler:
    def test_reconverges_at_rpc(self):
        # Diamond under the stack: true side runs first, each side pops
        # at the rpc, and the holder resumes with the full mask.
        s = IPDOMPolicy().scheduler(0, (0, 1, 2, 3))
        s.next()
        s.diverge(1, 2, (0, 1), (2, 3), 3)

        pc, mask, merges = s.next()
        assert (pc, mask, merges) == (1, (0, 1), None)
        s.advance(3)

        pc, mask, merges = s.next()
        assert (pc, mask) == (2, (2, 3))
        assert merges == [(3, 2)]  # true side popped into the false side
        s.advance(3)

        pc, mask, merges = s.next()
        assert (pc, mask) == (3, (0, 1, 2, 3))
        assert merges == [(3, 4)]  # false side popped into the holder
        s.retire()
        assert s.next() == (None, (), None)

    def test_no_rpc_runs_sides_to_retirement(self):
        # rpc == -1 (both sides ret): no holder, sides never merge.
        s = IPDOMPolicy().scheduler(0, (0, 1))
        s.next()
        s.diverge(1, 2, (0,), (1,), -1)
        pc, mask, _ = s.next()
        assert (pc, mask) == (1, (0,))
        s.retire()
        pc, mask, merges = s.next()
        assert (pc, mask, merges) == (2, (1,), None)
        s.retire()
        assert s.next()[0] is None


# ---- policy registry ------------------------------------------------------


def test_policy_registry():
    assert RECONVERGENCE_POLICIES == ("ipdom", "min-pc")
    for name in RECONVERGENCE_POLICIES:
        policy = get_policy(name)
        assert isinstance(policy, ReconvergencePolicy)
        assert policy.name == name
        assert get_policy(name) is policy  # stateless singleton
        assert name in repr(policy)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="sdc"):
        get_policy("sdc")
    with pytest.raises(ValueError, match="reconvergence"):
        MachineConfig(reconvergence="sdc")


def test_base_policy_is_abstract():
    with pytest.raises(NotImplementedError):
        ReconvergencePolicy().scheduler(0, (0,))


# ---- MachineConfig identity & resolution ----------------------------------


def test_machine_config_hash_and_tokens():
    a = MachineConfig()
    b = MachineConfig()
    assert a == b and hash(a) == hash(b)
    minpc = MachineConfig(reconvergence="min-pc")
    assert a != minpc
    assert a.token() != minpc.token()
    assert a.program_token() != minpc.program_token()
    # The executor is an observable field but not a lowering input:
    # both executors share one program entry per (latency, policy).
    reference = MachineConfig(executor="reference")
    assert a.token() != reference.token()
    assert a.program_token() == reference.program_token()


def test_resolve_machine_rejects_duplicated_fields():
    machine = MachineConfig()
    with pytest.raises(ValueError, match="machine= config wins"):
        resolve_machine(machine, executor="fast", where="launch")
    with pytest.raises(ValueError, match="machine= only"):
        resolve_machine(machine, config=machine, where="launch")


def test_resolve_machine_legacy_spellings_warn():
    custom = MachineConfig(executor="reference")
    with pytest.warns(DeprecationWarning, match="config=.*deprecated"):
        assert resolve_machine(config=custom, stacklevel=2) is custom
    with pytest.warns(DeprecationWarning, match="executor=.*deprecated"):
        resolved = resolve_machine(executor="reference", stacklevel=2)
    assert resolved.executor == "reference"
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_machine(executor="warp-speed", stacklevel=2)


# ---- min-PC end-to-end corners --------------------------------------------


DIVERGENT_LOOP = """
define void @divloop(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %latch ]
  %cont = icmp slt i32 %i, %tid
  br i1 %cont, label %latch, label %exit
latch:
  %acc2 = add i32 %acc, %i
  %next = add i32 %i, 1
  br label %header
exit:
  %bid = call i32 @llvm.gpu.ctaid.x()
  %bdim = call i32 @llvm.gpu.ntid.x()
  %base = mul i32 %bid, %bdim
  %gtid = add i32 %base, %tid
  %ptr = getelementptr i32, i32 addrspace(1)* %p, i32 %gtid
  store i32 %acc, i32 addrspace(1)* %ptr
  ret void
}
"""


def test_divergent_loop_exit():
    # Lane ``tid`` iterates ``tid`` times, so one lane leaves the loop
    # per iteration.  Under min-PC the leavers park at the exit block
    # (higher PC than the header) and fuse pairwise as each new lane
    # arrives; the loop keeps priority until every lane is out.
    f = parse(DIVERGENT_LOOP)
    per_policy = _run_all(f.module, "divloop", {"p": [-1] * 16})
    expected = [tid * (tid - 1) // 2 for tid in range(8)] * 2
    assert per_policy["min-pc"][0]["p"] == expected
    # Path fusion must not lose or duplicate lanes: every lane retires
    # exactly once and the loop's trip counts stay per-lane exact.
    assert per_policy["ipdom"][1]["cycles"] == \
        per_policy["min-pc"][1]["cycles"]


def test_barrier_under_partial_mask():
    # Only odd lanes reach the barrier inside the branch: under min-PC
    # the warp must still yield exactly once there and resume with the
    # partial mask intact (same contract test_lowering pins for ipdom).
    k = KernelBuilder("part_barrier", params=[("data", GLOBAL_I32_PTR)])
    tile = k.shared_array("tile", I32, 8)
    tid = k.thread_id()
    gtid = k.global_thread_id()
    odd = k.icmp(ICmpPredicate.NE, k.and_(tid, k.const(1)), k.const(0))

    def then_side():
        k.store_at(tile, tid, k.mul(tid, k.const(5)))
        k.barrier()

    k.if_(odd, then_side)
    k.store_at(k.param("data"), gtid, k.load_at(tile, tid))
    k.finish()
    per_policy = _run_all(k.module, "part_barrier", {"data": [0] * 16})
    assert per_policy["min-pc"][0]["data"] == [0, 5, 0, 15, 0, 25, 0, 35] * 2
    assert per_policy["min-pc"][1]["barriers"] == \
        per_policy["ipdom"][1]["barriers"]


UNSTRUCTURED_TAIL = """
define void @tail(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c1 = icmp slt i32 %tid, 4
  br i1 %c1, label %a, label %b
a:
  %c2 = icmp eq i32 %tid, 0
  br i1 %c2, label %d, label %c
b:
  br label %c
c:
  %v = mul i32 %tid, 7
  %bid = call i32 @llvm.gpu.ctaid.x()
  %bdim = call i32 @llvm.gpu.ntid.x()
  %base = mul i32 %bid, %bdim
  %gtid = add i32 %base, %tid
  %ptr = getelementptr i32, i32 addrspace(1)* %p, i32 %gtid
  store i32 %v, i32 addrspace(1)* %ptr
  br label %d
d:
  ret void
}
"""


def test_min_pc_fuses_shared_tail_ipdom_cannot():
    # Unstructured shape: block c is a shared tail of both outer sides
    # but NOT the post-dominator of the entry branch (lane 0 skips it).
    # The IPDOM stack serializes the outer sides, so c executes twice;
    # min-PC fuses the a->c and b->c paths at c's PC and executes it
    # once with the combined mask — strictly fewer cycles.  This is the
    # kernel behind the per-policy goldens (test_policy_goldens).
    f = parse(UNSTRUCTURED_TAIL)
    per_policy = _run_all(f.module, "tail", {"p": [-1] * 16})
    expected = [-1 if tid % 8 == 0 else (tid % 8) * 7 for tid in range(16)]
    assert per_policy["min-pc"][0]["p"] == expected
    assert per_policy["min-pc"][1]["cycles"] < \
        per_policy["ipdom"][1]["cycles"]
