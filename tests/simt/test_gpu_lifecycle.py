"""GPU device-state lifecycle: reset() and context-manager use."""

import repro
from repro import GPU, I32
from repro.difftest import build_kernel, generate_spec, make_inputs
from tests.support import parse


def make_module():
    return parse("""
define void @incr(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v = load i32, i32 addrspace(1)* %g
  %v2 = add i32 %v, 1
  store i32 %v2, i32 addrspace(1)* %g
  ret void
}
""").module


class TestReset:
    def test_reset_reclaims_device_memory(self):
        gpu = GPU(make_module())
        first_base = gpu.alloc("p", I32, [0] * 4).address
        gpu.alloc("q", I32, [0] * 1024)
        gpu.reset()
        # A fresh allocation lands where the very first one did: the old
        # address space is gone, not merely shadowed.
        assert gpu.alloc("p", I32, [0] * 4).address == first_base

    def test_launches_work_after_reset(self):
        gpu = GPU(make_module())
        stale = gpu.alloc("p", I32, [0] * 4)
        gpu.launch("incr", 1, 4, {"p": stale})
        gpu.reset()
        buffer = gpu.alloc("p", I32, [10, 20, 30, 40])
        gpu.launch("incr", 1, 4, {"p": buffer})
        assert buffer.data == [11, 21, 31, 41]

    def test_launch_count_survives_reset(self):
        gpu = GPU(make_module())
        buffer = gpu.alloc("p", I32, [0] * 4)
        gpu.launch("incr", 1, 4, {"p": buffer})
        assert gpu.launch_count == 1
        gpu.reset()
        buffer = gpu.alloc("p", I32, [0] * 4)
        gpu.launch("incr", 1, 4, {"p": buffer})
        assert gpu.launch_count == 2

    def test_repeat_launches_after_reset_are_independent(self):
        spec = generate_spec(5)
        builder = build_kernel(spec)
        args = make_inputs(spec, 0)

        gpu = GPU(builder.module)
        first = repro.launch(builder.module, spec.grid_dim, spec.block_dim,
                             dict(args), gpu=gpu).outputs
        gpu.reset()
        second = repro.launch(builder.module, spec.grid_dim, spec.block_dim,
                              dict(args), gpu=gpu).outputs
        assert first == second


class TestContextManager:
    def test_with_block_yields_gpu_and_resets_on_exit(self):
        with GPU(make_module()) as gpu:
            memory_inside = gpu.memory
            buffer = gpu.alloc("p", I32, [5] * 4)
            gpu.launch("incr", 1, 4, {"p": buffer})
            assert buffer.data == [6] * 4
        assert gpu.memory is not memory_inside  # state dropped on exit

    def test_exception_still_resets(self):
        gpu_ref = None
        try:
            with GPU(make_module()) as gpu:
                gpu_ref = gpu
                memory_inside = gpu.memory
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert gpu_ref.memory is not memory_inside
