"""Regression tests for Metrics.merge across mismatched warp widths.

``alu_utilization`` divides pooled active lanes by one ``warp_size``, so
silently merging two widths skews it.  A fresh accumulator (no ALU work
yet) adopts the other side's width; two sides that have both counted
work must refuse to merge.
"""

import pytest

from repro.simt import Metrics


def busy(warp_size, issues=2):
    metrics = Metrics(warp_size=warp_size)
    for _ in range(issues):
        metrics.record_alu(active_lanes=warp_size, latency=4)
    return metrics


class TestWarpSizeMismatch:
    def test_fresh_accumulator_adopts_other_width(self):
        accumulator = Metrics(warp_size=32)
        accumulator.merge(busy(16))
        assert accumulator.warp_size == 16
        assert accumulator.alu_utilization == 1.0

    def test_empty_other_side_keeps_own_width(self):
        metrics = busy(16)
        metrics.merge(Metrics(warp_size=32))
        assert metrics.warp_size == 16
        assert metrics.alu_utilization == 1.0

    def test_both_counted_raises(self):
        metrics = busy(32)
        with pytest.raises(ValueError, match="warp_size"):
            metrics.merge(busy(16))

    def test_matching_widths_accumulate(self):
        metrics = busy(16)
        metrics.merge(busy(16))
        assert metrics.alu_issues == 4
        assert metrics.alu_utilization == 1.0
