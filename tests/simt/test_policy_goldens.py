"""Per-policy cycle/divergence goldens.

Device memory is policy-invariant (held corpus-wide by
``test_executor_diff``), but cycles, branch executions and divergence
counters are *per-policy observables*: the IPDOM stack serializes the
two sides of every divergent branch until the post-dominator, while the
min-PC path list fuses opportunistically on PC collision.  These
goldens pin each policy's numbers on two fixed kernels:

* ``UNSTRUCTURED_TAIL`` — a shared tail block that is **not** the
  post-dominator of the outer branch.  IPDOM cannot merge there (the
  stack reconverges at the post-dominator only), so the tail executes
  once per outer side; min-PC fuses the colliding paths and executes it
  once with the combined mask.  The policies *must* disagree here — if
  the numbers converge, the min-PC scheduler has stopped fusing.

* ``SB1`` (the paper's Figure-7 kernel) at -O3 — fully structured
  control flow, where min-PC's fusion points coincide with the IPDOM
  reconvergence points and the goldens are identical by design.

Both executors must reproduce each golden exactly (the scheduler is
shared code, so a skew here means an executor bypassed it).
"""

from __future__ import annotations

import pytest

from repro.evaluation.runner import compile_baseline, execute
from repro.kernels import ALL_BUILDERS
from repro.simt import MachineConfig, run_kernel

from tests.support import parse

from tests.simt.test_reconvergence import UNSTRUCTURED_TAIL

EXECUTORS = ("reference", "fast")

#: (cycles, branch executions, divergent branch executions) per policy
#: for UNSTRUCTURED_TAIL at grid 2 x block 8
TAIL_GOLDENS = {
    "ipdom": (1512, 10, 4),
    "min-pc": (816, 8, 4),
}

#: same triple for SB1 at block 8, -O3 — identical across policies
SB1_GOLDEN = (7848, 24, 8)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("policy", sorted(TAIL_GOLDENS))
def test_unstructured_tail_golden(policy, executor):
    f = parse(UNSTRUCTURED_TAIL)
    machine = MachineConfig(executor=executor, reconvergence=policy)
    _, metrics = run_kernel(f.module, "tail", 2, 8,
                            buffers={"p": [-1] * 16}, machine=machine)
    assert (metrics.cycles, metrics.branches,
            metrics.divergent_branches) == TAIL_GOLDENS[policy]


def test_policies_disagree_on_unstructured_tail():
    # The whole point of the sweep axis: min-PC merges earlier than the
    # post-dominator and saves real cycles on unstructured flow.
    assert TAIL_GOLDENS["min-pc"][0] < TAIL_GOLDENS["ipdom"][0]
    assert TAIL_GOLDENS["min-pc"][1] < TAIL_GOLDENS["ipdom"][1]


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("policy", sorted(TAIL_GOLDENS))
def test_sb1_structured_golden(policy, executor):
    case = ALL_BUILDERS["SB1"](block_size=8)
    compile_baseline(case)
    machine = MachineConfig(executor=executor, reconvergence=policy)
    result = execute(case, machine=machine)
    metrics = result.metrics
    assert (metrics.cycles, metrics.branches,
            metrics.divergent_branches) == SB1_GOLDEN
