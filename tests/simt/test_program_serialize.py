"""LoweredProgram serialization: symbolic form ↔ runnable program.

The persistent compile cache stores the symbolic (pure-data) lowering
next to the optimized IR so a warm process never re-lowers.  That is
only sound if, for every kernel shape the pipelines can produce:

* the symbolic form survives JSON exactly (it is the wire format);
* a fresh lowering of the re-parsed IR is **bit-identical** (as pure
  data) to the symbolic program that was cached — i.e. print/parse plus
  materialize loses nothing;
* a materialized-from-JSON program, seeded into the launch memo,
  executes observably identically to the reference interpreter.

The difftest generator corpus (every oracle arm of every seed — melded,
unpredicated and speculated control flow included) is the coverage
vehicle, same as ``tests/simt/test_executor_diff.py``.
"""

from __future__ import annotations

import json
import os

import pytest

import repro
from repro.analysis.latency import LatencyModel
from repro.difftest.generator import generate_spec, make_inputs
from repro.difftest.oracle import ALL_ARMS, _compile_arm
from repro.ir import print_module
from repro.ir.parser import parse_module
from repro.simt import (
    GPU,
    PROGRAM_SCHEMA,
    MachineConfig,
    ProgramDecodeError,
    lower_symbolic,
    materialize_program,
    seed_program,
)

SEED_COUNT = int(os.environ.get("REPRO_PROGRAM_SERIALIZE_SEEDS", "4"))


def _arm_functions(seed):
    """Yield (arm, compiled builder) for every arm that compiles."""
    spec = generate_spec(seed)
    for arm in ALL_ARMS:
        report = _compile_arm(arm, spec, None)
        if report.failure is not None or report.builder is None:
            continue
        yield arm, spec, report.builder


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_symbolic_program_round_trips_bit_identical(seed):
    latency = LatencyModel()
    for arm, spec, builder in _arm_functions(seed):
        function = builder.function
        symbolic = lower_symbolic(function, latency)
        assert symbolic["schema"] == PROGRAM_SCHEMA

        # The wire format is JSON-native: a dumps/loads round trip is
        # the identity, not merely equivalent.
        wire = json.loads(json.dumps(symbolic))
        assert wire == symbolic, f"seed {seed} arm {arm}: JSON round trip"

        # Cross-process replay: re-parse the printed module (what the
        # cache stores) and lower it fresh — the symbolic form must be
        # bit-identical to the one serialized from the live module.
        reparsed = parse_module(print_module(builder.module))
        replayed_fn = reparsed.functions[function.name]
        assert lower_symbolic(replayed_fn, latency) == symbolic, \
            f"seed {seed} arm {arm}: fresh lowering of re-parsed IR differs"

        # And the deserialized program materializes against the re-parsed
        # function (names resolve, closures rebuild).
        program = materialize_program(wire, replayed_fn)
        assert program.function_name == function.name
        assert program.num_slots == symbolic["num_slots"]


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_materialized_program_executes_identically(seed):
    """A seeded warm program must be observably identical to the
    reference interpreter (device memory + metrics), arm by arm."""
    machine = MachineConfig()
    for arm, spec, builder in _arm_functions(seed):
        function = builder.function
        wire = json.loads(json.dumps(lower_symbolic(function,
                                                    machine.latency)))
        reparsed = parse_module(print_module(builder.module))
        replayed_fn = reparsed.functions[function.name]
        program = materialize_program(wire, replayed_fn)
        seed_program(replayed_fn, machine, program)

        args = make_inputs(spec, 0)
        try:
            with GPU(reparsed, executor="reference") as gpu:
                ref = repro.launch(reparsed, spec.grid_dim, spec.block_dim,
                                   dict(args), gpu=gpu)
        except Exception:
            continue  # runtime-trap arms are test_executor_diff's concern
        with GPU(reparsed, executor="fast") as gpu:
            fast = repro.launch(reparsed, spec.grid_dim, spec.block_dim,
                                dict(args), gpu=gpu)
        assert fast.outputs == ref.outputs, \
            f"seed {seed} arm {arm}: device memory differs"
        assert fast.metrics.as_dict() == ref.metrics.as_dict(), \
            f"seed {seed} arm {arm}: metrics differ"


class TestDecodeErrors:
    def _symbolic(self):
        builder = repro.KernelBuilder(
            "k", params=[("data", repro.GLOBAL_I32_PTR)])
        tid = builder.thread_id()
        builder.store_at(builder.param("data"), tid,
                         builder.load_at(builder.param("data"), tid))
        builder.ret()
        return builder, lower_symbolic(builder.function, LatencyModel())

    def test_schema_mismatch_rejected(self):
        builder, symbolic = self._symbolic()
        bad = dict(symbolic, schema="repro.simt.lowered-program/0")
        with pytest.raises(ProgramDecodeError, match="schema"):
            materialize_program(bad, builder.function)

    def test_unknown_descriptor_rejected(self):
        builder, symbolic = self._symbolic()
        bad = json.loads(json.dumps(symbolic))
        for block in bad["blocks"]:
            for op in block["ops"]:
                for i, part in enumerate(op):
                    if isinstance(part, list) and part and \
                            isinstance(part[0], str):
                        op[i] = ["warp-vote-all"]  # no such maker
        with pytest.raises(ProgramDecodeError):
            materialize_program(bad, builder.function)

    def test_unresolvable_argument_rejected(self):
        builder, symbolic = self._symbolic()
        bad = json.loads(json.dumps(symbolic))
        bad["arg_slots"] = [[slot, name + "_renamed"]
                            for slot, name in bad["arg_slots"]]
        with pytest.raises(ProgramDecodeError, match="argument"):
            materialize_program(bad, builder.function)

    def test_malformed_payload_rejected(self):
        builder, _ = self._symbolic()
        with pytest.raises(ProgramDecodeError):
            materialize_program({"schema": PROGRAM_SCHEMA}, builder.function)
