"""Tests for the host-side GPU/Buffer API."""

import pytest

from repro.ir import I32, Module
from repro.simt import GPU, SimulationError

from tests.support import parse


def make_gpu():
    f = parse("""
define void @copy(i32 addrspace(1)* %src, i32 addrspace(1)* %dst) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %sg = getelementptr i32, i32 addrspace(1)* %src, i32 %tid
  %v = load i32, i32 addrspace(1)* %sg
  %dg = getelementptr i32, i32 addrspace(1)* %dst, i32 %tid
  store i32 %v, i32 addrspace(1)* %dg
  ret void
}
""")
    return GPU(f.module), f


class TestBuffer:
    def test_alloc_with_size(self):
        gpu, _ = make_gpu()
        buf = gpu.alloc("b", I32, 8)
        assert len(buf) == 8
        assert buf.data == [0] * 8

    def test_alloc_with_initial_data(self):
        gpu, _ = make_gpu()
        buf = gpu.alloc("b", I32, [5, 6, 7])
        assert buf.data == [5, 6, 7]

    def test_write_and_readback(self):
        gpu, _ = make_gpu()
        buf = gpu.alloc("b", I32, 4)
        buf.write([9, 8, 7, 6])
        assert buf.data == [9, 8, 7, 6]

    def test_write_overflow_rejected(self):
        gpu, _ = make_gpu()
        buf = gpu.alloc("b", I32, 2)
        with pytest.raises(ValueError):
            buf.write([1, 2, 3])

    def test_data_is_a_copy(self):
        gpu, _ = make_gpu()
        buf = gpu.alloc("b", I32, 2)
        snapshot = buf.data
        snapshot[0] = 42
        assert buf.data[0] == 0


class TestLaunch:
    def test_explicit_buffer_launch(self):
        gpu, f = make_gpu()
        src = gpu.alloc("src", I32, [10, 20, 30, 40])
        dst = gpu.alloc("dst", I32, 4)
        metrics = gpu.launch("copy", grid_dim=1, block_dim=4,
                             args={"src": src, "dst": dst})
        assert dst.data == [10, 20, 30, 40]
        assert metrics.cycles > 0

    def test_launch_by_function_object(self):
        gpu, f = make_gpu()
        src = gpu.alloc("src", I32, [1, 2])
        dst = gpu.alloc("dst", I32, 2)
        gpu.launch(f, grid_dim=1, block_dim=2,
                   args={"src": src, "dst": dst})
        assert dst.data == [1, 2]

    def test_buffer_for_scalar_param_rejected(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  ret void
}
""")
        gpu = GPU(f.module)
        buf = gpu.alloc("b", I32, 2)
        with pytest.raises(TypeError):
            gpu.launch("k", 1, 1, args={"n": buf})

    def test_assert_no_undef_clean_buffer(self):
        gpu, _ = make_gpu()
        buf = gpu.alloc("b", I32, 2)
        buf.assert_no_undef()

    def test_assert_no_undef_detects_leak(self):
        from repro.simt import UNDEF

        gpu, _ = make_gpu()
        buf = gpu.alloc("b", I32, 2)
        buf._segment.data[1] = UNDEF
        with pytest.raises(SimulationError, match="undef leaked"):
            buf.assert_no_undef()
