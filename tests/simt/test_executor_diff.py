"""Executor × reconvergence-policy differential over the difftest corpus.

Two contracts are held here, across the difftest generator corpus —
every oracle arm (noopt, -O3, CFM, tail merging, branch fusion) of every
seed, so melded, unpredicated and speculated control flow all pass
through every configuration:

* **Executor parity** (bit-identical observables): for any kernel the
  reference interpreter can run under a given
  :class:`~repro.simt.MachineConfig`, both executors must produce the
  same device memory, the same :class:`~repro.simt.Metrics` counters,
  the same WarpTrace event stream (same events, same order, same
  simulated-cycle timestamps), and therefore the same divergence
  heatmap.  This is checked per reconvergence policy.

* **Policy invariance of memory**: device memory must be bit-identical
  across reconvergence policies ("ipdom" vs "min-pc") — the policy may
  reorder *when* divergent paths execute but never *what* each lane
  computes.  Cycle counts and divergence observables are per-policy and
  deliberately excluded from this comparison.

``REPRO_EXECUTOR_DIFF_SEEDS`` selects corpus width: tier-1 runs the
default 10 seeds; the CI perf job sweeps 100.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro import GPU
from repro.difftest.generator import generate_spec, make_inputs
from repro.difftest.oracle import ALL_ARMS, _compile_arm
from repro.obs import Tracer, use
from repro.obs.report import divergence_summary, render_report
from repro.simt import RECONVERGENCE_POLICIES, MachineConfig

SEED_COUNT = int(os.environ.get("REPRO_EXECUTOR_DIFF_SEEDS", "10"))
INPUT_SEEDS = (0, 1)

#: wall-clock trace fields; everything else must match bit for bit
WALL_CLOCK_KEYS = ("ts", "dur")


def _normalize(event):
    out = {k: v for k, v in event.items() if k not in WALL_CLOCK_KEYS}
    if event.get("cat") == "sim" or event.get("ph") == "C":
        out["ts"] = event["ts"]  # simulated cycles: deterministic, keep
    return out


def _run_arm_observed(builder, spec, machine):
    """Launch one compiled arm on one machine; return all observables."""
    tracer = Tracer()
    with use(tracer):
        with GPU(builder.module, machine) as gpu:
            runs = []
            for input_seed in INPUT_SEEDS:
                args = make_inputs(spec, input_seed)
                result = repro.launch(builder.module, spec.grid_dim,
                                      spec.block_dim, args, gpu=gpu,
                                      trace_label=f"diff:{input_seed}")
                runs.append((result.outputs, result.metrics.as_dict()))
                gpu.reset()
    events = [_normalize(e) for e in tracer.events]
    summaries = divergence_summary(tracer.events)
    heatmap = [(s.label, s.divergent_branch_executions, s.branch_executions)
               for s in summaries]
    return {
        "runs": runs,
        "events": events,
        "heatmap": heatmap,
        "report": render_report(tracer.events),
    }


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_executors_and_policies_agree_on_generated_kernel(seed):
    spec = generate_spec(seed)
    for arm in ALL_ARMS:
        report = _compile_arm(arm, spec, None)
        if report.failure is not None or report.builder is None:
            continue  # compile-side failure: not this suite's concern
        per_policy = {}
        for policy in RECONVERGENCE_POLICIES:
            ref_machine = MachineConfig(executor="reference",
                                        reconvergence=policy)
            fast_machine = MachineConfig(executor="fast",
                                         reconvergence=policy)
            try:
                reference = _run_arm_observed(report.builder, spec,
                                              ref_machine)
            except Exception as exc:
                # The reference arm rejects this kernel (e.g. a runtime
                # trap); the fast path must reject it identically under
                # the same policy.
                with pytest.raises(type(exc)) as excinfo:
                    _run_arm_observed(report.builder, spec, fast_machine)
                assert str(excinfo.value) == str(exc), \
                    (f"seed {seed} arm {arm} policy {policy}: "
                     f"executors trap differently")
                per_policy[policy] = None  # trapped
                continue
            fast = _run_arm_observed(report.builder, spec, fast_machine)
            for index, (ref_run, fast_run) in enumerate(
                    zip(reference["runs"], fast["runs"])):
                assert fast_run[0] == ref_run[0], \
                    (f"seed {seed} arm {arm} policy {policy} input {index}: "
                     f"device memory differs")
                assert fast_run[1] == ref_run[1], \
                    (f"seed {seed} arm {arm} policy {policy} input {index}: "
                     f"metrics differ")
            assert fast["events"] == reference["events"], \
                f"seed {seed} arm {arm} policy {policy}: trace streams differ"
            assert fast["heatmap"] == reference["heatmap"], \
                f"seed {seed} arm {arm} policy {policy}: heatmaps differ"
            assert fast["report"] == reference["report"]
            per_policy[policy] = [run[0] for run in reference["runs"]]

        # Cross-policy contract: every policy traps, or none does — a
        # lane's instruction stream is policy-invariant, so the first
        # faulting lane faults under every schedule (possibly with a
        # different message when several lanes fault).
        trapped = {p for p, memory in per_policy.items() if memory is None}
        assert trapped in (set(), set(per_policy)), \
            f"seed {seed} arm {arm}: only {sorted(trapped)} trapped"
        if trapped:
            continue
        baseline_policy = RECONVERGENCE_POLICIES[0]
        for policy, memory in per_policy.items():
            assert memory == per_policy[baseline_policy], \
                (f"seed {seed} arm {arm}: device memory differs between "
                 f"{baseline_policy} and {policy}")


def test_seed_width_is_env_tunable():
    assert SEED_COUNT >= 1
