"""Fast-vs-reference executor differential over the difftest corpus.

The fast-path executor's contract is *bit-identical observables*: for
any kernel the reference interpreter can run, both executors must
produce the same device memory, the same :class:`~repro.simt.Metrics`
counters, the same WarpTrace event stream (same events, same order,
same simulated-cycle timestamps), and therefore the same divergence
heatmap.  This suite holds them to it across the difftest generator
corpus — every oracle arm (noopt, -O3, CFM, tail merging, branch
fusion) of every seed, so melded, unpredicated and speculated control
flow all pass through both executors.

``REPRO_EXECUTOR_DIFF_SEEDS`` selects corpus width: tier-1 runs the
default 10 seeds; the CI perf job sweeps 100.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro import GPU
from repro.difftest.generator import generate_spec, make_inputs
from repro.difftest.oracle import ALL_ARMS, _compile_arm
from repro.obs import Tracer, use
from repro.obs.report import divergence_summary, render_report

SEED_COUNT = int(os.environ.get("REPRO_EXECUTOR_DIFF_SEEDS", "10"))
INPUT_SEEDS = (0, 1)

#: wall-clock trace fields; everything else must match bit for bit
WALL_CLOCK_KEYS = ("ts", "dur")


def _normalize(event):
    out = {k: v for k, v in event.items() if k not in WALL_CLOCK_KEYS}
    if event.get("cat") == "sim" or event.get("ph") == "C":
        out["ts"] = event["ts"]  # simulated cycles: deterministic, keep
    return out


def _run_arm_observed(builder, spec, executor):
    """Launch one compiled arm on one executor; return all observables."""
    tracer = Tracer()
    with use(tracer):
        with GPU(builder.module, executor=executor) as gpu:
            runs = []
            for input_seed in INPUT_SEEDS:
                args = make_inputs(spec, input_seed)
                result = repro.launch(builder.module, spec.grid_dim,
                                      spec.block_dim, args, gpu=gpu,
                                      trace_label=f"diff:{input_seed}")
                runs.append((result.outputs, result.metrics.as_dict()))
                gpu.reset()
    events = [_normalize(e) for e in tracer.events]
    summaries = divergence_summary(tracer.events)
    heatmap = [(s.label, s.divergent_branch_executions, s.branch_executions)
               for s in summaries]
    return {
        "runs": runs,
        "events": events,
        "heatmap": heatmap,
        "report": render_report(tracer.events),
    }


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_executors_agree_on_generated_kernel(seed):
    spec = generate_spec(seed)
    for arm in ALL_ARMS:
        report = _compile_arm(arm, spec, None)
        if report.failure is not None or report.builder is None:
            continue  # compile-side failure: not this suite's concern
        try:
            reference = _run_arm_observed(report.builder, spec, "reference")
        except Exception as exc:
            # The reference arm rejects this kernel (e.g. a runtime
            # trap); the fast path must reject it identically.
            with pytest.raises(type(exc)) as excinfo:
                _run_arm_observed(report.builder, spec, "fast")
            assert str(excinfo.value) == str(exc), \
                f"seed {seed} arm {arm}: executors trap differently"
            continue
        fast = _run_arm_observed(report.builder, spec, "fast")
        for index, (ref_run, fast_run) in enumerate(
                zip(reference["runs"], fast["runs"])):
            assert fast_run[0] == ref_run[0], \
                f"seed {seed} arm {arm} input {index}: device memory differs"
            assert fast_run[1] == ref_run[1], \
                f"seed {seed} arm {arm} input {index}: metrics differ"
        assert fast["events"] == reference["events"], \
            f"seed {seed} arm {arm}: trace event streams differ"
        assert fast["heatmap"] == reference["heatmap"], \
            f"seed {seed} arm {arm}: divergence heatmaps differ"
        assert fast["report"] == reference["report"]


def test_seed_width_is_env_tunable():
    assert SEED_COUNT >= 1
