"""Unit tests for the µop lowering layer behind the fast-path executor.

Covers the corners the corpus-wide differential (test_executor_diff)
only hits probabilistically: φs that reference themselves or carry
``undef`` (the shapes :func:`repro.transforms.repair_ssa` produces),
select-on-undef propagation (the generator seed 130 regression),
barriers reached under a partial mask, and the program cache's keying —
identity on re-launch, invalidation on IR mutation, separation by
latency model and reconvergence policy.
"""

from __future__ import annotations

import pytest

import repro
from repro import GPU, GLOBAL_I32_PTR, ICmpPredicate, KernelBuilder, run_kernel
from repro.analysis.latency import LatencyModel
from repro.difftest.generator import generate_spec, make_inputs
from repro.difftest.oracle import ALL_ARMS, _compile_arm
from repro.ir import Constant, I32, Opcode, verify_function
from repro.simt import (
    MachineConfig,
    SimulationError,
    get_program,
    invalidate_lowering,
    lower_function,
)
from repro.transforms import repair_ssa

from tests.support import parse

EXECUTORS = ("reference", "fast")


def _both(module, kernel, buffers, scalars=None, grid=2, block=8):
    """Run on both executors; assert parity; return the fast result."""
    results = {}
    for executor in EXECUTORS:
        outputs, metrics = run_kernel(
            module, kernel, grid, block,
            buffers={k: list(v) for k, v in buffers.items()},
            scalars=scalars, executor=executor)
        results[executor] = (outputs, metrics.as_dict())
    assert results["fast"] == results["reference"]
    return results["fast"]


# ---- φ shapes -------------------------------------------------------------


SELF_PHI = """
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %header
header:
  %x = phi i32 [ %tid, %entry ], [ %x, %latch ]
  %i = phi i32 [ 0, %entry ], [ %next, %latch ]
  %cont = icmp slt i32 %i, 4
  br i1 %cont, label %latch, label %exit
latch:
  %next = add i32 %i, 1
  br label %header
exit:
  %ptr = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %x, i32 addrspace(1)* %ptr
  ret void
}
"""


def test_self_referential_phi_executes_identically():
    f = parse(SELF_PHI)
    outputs, _ = _both(f.module, "k", {"p": [0] * 16})
    # Both blocks write p[tid]: the loop-invariant self-φ keeps %x = tid.
    assert outputs["p"] == list(range(8)) + [0] * 8


def test_repaired_ssa_phi_with_undef_incoming():
    # A definition inside one branch arm used past the merge: invalid
    # SSA that repair_ssa fixes by inserting a φ whose bypass edge
    # carries undef.  The repaired kernel must lower (undef φ operands
    # share the constant undef slot) and run identically on both
    # executors — the undef only flows into lanes whose select never
    # observes it.
    f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, 4
  br i1 %c, label %a, label %m
a:
  %v = mul i32 %tid, 3
  br label %m
m:
  %sel = icmp slt i32 %tid, 4
  %safe = select i1 %sel, i32 %v, i32 7
  %ptr = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %safe, i32 addrspace(1)* %ptr
  ret void
}
""")
    assert repair_ssa(f)
    verify_function(f)
    outputs, _ = _both(f.module, "k", {"p": [0] * 16})
    assert outputs["p"][:8] == [0, 3, 6, 9, 7, 7, 7, 7]
    assert outputs["p"][8:] == [0] * 8


# ---- undef semantics ------------------------------------------------------


def test_select_on_undef_propagates_then_branch_traps():
    # Generator seed 130 regression shape: `select undef, a, b` must
    # yield undef (not trap); the trap fires only when the undef value
    # reaches a branch condition — with the reference's exact message.
    f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %x = select i1 undef, i32 1, i32 2
  %c = icmp eq i32 %x, 1
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  ret void
}
""")
    messages = {}
    for executor in EXECUTORS:
        with pytest.raises(SimulationError) as excinfo:
            run_kernel(f.module, "k", 1, 8, buffers={"p": [0] * 8},
                       executor=executor)
        messages[executor] = str(excinfo.value)
        assert "branch on undef condition" in messages[executor]
    assert messages["fast"] == messages["reference"]


def test_generator_seed_130_all_arms_agree():
    spec = generate_spec(130)
    ran = 0
    for arm in ALL_ARMS:
        report = _compile_arm(arm, spec, None)
        if report.failure is not None or report.builder is None:
            continue
        per_executor = {}
        for executor in EXECUTORS:
            with GPU(report.builder.module, executor=executor) as gpu:
                result = repro.launch(report.builder.module, spec.grid_dim,
                                      spec.block_dim, make_inputs(spec, 0),
                                      gpu=gpu)
            per_executor[executor] = (result.outputs,
                                      result.metrics.as_dict())
        assert per_executor["fast"] == per_executor["reference"], \
            f"arm {arm} diverges on seed 130"
        ran += 1
    assert ran > 0, "seed 130 compiled under no arm; regression test is dead"


# ---- barrier under a partial mask ----------------------------------------


def test_barrier_under_divergent_mask():
    k = KernelBuilder("part_barrier", params=[("data", GLOBAL_I32_PTR)])
    tile = k.shared_array("tile", I32, 8)
    tid = k.thread_id()
    gtid = k.global_thread_id()
    odd = k.icmp(ICmpPredicate.NE, k.and_(tid, k.const(1)), k.const(0))

    def then_side():
        # Only the odd lanes reach this barrier: the warp must still
        # yield exactly once and resume with the partial mask intact.
        k.store_at(tile, tid, k.mul(tid, k.const(5)))
        k.barrier()

    k.if_(odd, then_side)
    k.store_at(k.param("data"), gtid, k.load_at(tile, tid))
    k.finish()
    outputs, _ = _both(k.module, "part_barrier", {"data": [0] * 16})
    # Odd lanes stored tid*5 into the shared tile; even lanes read the
    # zero-initialized slots.  Both blocks see a fresh tile window.
    assert outputs["data"] == [0, 5, 0, 15, 0, 25, 0, 35] * 2


# ---- program cache --------------------------------------------------------


def _simple_function():
    return parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %ptr = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v = load i32, i32 addrspace(1)* %ptr
  %w = add i32 %v, 1
  store i32 %w, i32 addrspace(1)* %ptr
  ret void
}
""")


def test_program_cache_returns_identical_object():
    f = _simple_function()
    machine = MachineConfig()
    assert get_program(f, machine) is get_program(f, machine)


def test_program_cache_detects_in_place_rewrites():
    f = _simple_function()
    machine = MachineConfig()
    before = get_program(f, machine)
    # In-place operand rewrite, no invalidation call: the fingerprint
    # must catch it on the next lookup.
    add = next(i for b in f.blocks for i in b.instructions
               if i.opcode == Opcode.ADD)
    add.set_operand(1, Constant(I32, 2))
    after = get_program(f, machine)
    assert after is not before


def test_invalidate_lowering_forces_relower():
    f = _simple_function()
    machine = MachineConfig()
    before = get_program(f, machine)
    invalidate_lowering(f)
    assert get_program(f, machine) is not before


def test_program_cache_keyed_by_latency_model():
    f = _simple_function()
    default = MachineConfig()
    custom_latency = LatencyModel()
    custom_latency.opcode_latency = dict(custom_latency.opcode_latency)
    custom_latency.opcode_latency[Opcode.ADD] = 6
    custom = MachineConfig(latency=custom_latency)
    program_default = get_program(f, default)
    program_custom = get_program(f, custom)
    # Latencies are baked into µops, so the models cannot share programs
    # — and neither entry may evict the other.
    assert program_default is not program_custom
    assert get_program(f, default) is program_default
    assert get_program(f, custom) is program_custom


def test_program_cache_keyed_by_reconvergence_policy():
    # Satellite fix: per-policy lowering state can never alias — two
    # machines identical but for the policy get separate memo entries
    # (defensive keying; the programs themselves are policy-independent).
    f = _simple_function()
    ipdom = MachineConfig(reconvergence="ipdom")
    minpc = MachineConfig(reconvergence="min-pc")
    assert ipdom.program_token() != minpc.program_token()
    program_ipdom = get_program(f, ipdom)
    program_minpc = get_program(f, minpc)
    assert program_ipdom is not program_minpc
    assert get_program(f, ipdom) is program_ipdom
    assert get_program(f, minpc) is program_minpc


def test_latency_model_changes_simulated_cycles():
    f = _simple_function()
    _, default_metrics = run_kernel(f.module, "k", 1, 8,
                                    buffers={"p": [0] * 8}, executor="fast")
    expensive = MachineConfig()
    expensive.latency = LatencyModel()
    expensive.latency.opcode_latency = dict(expensive.latency.opcode_latency)
    expensive.latency.opcode_latency[Opcode.ADD] = 400
    f2 = _simple_function()
    _, slow_metrics = run_kernel(f2.module, "k", 1, 8,
                                 buffers={"p": [0] * 8}, config=expensive,
                                 executor="fast")
    assert slow_metrics.cycles > default_metrics.cycles


def test_lowering_records_const_and_arg_slots():
    f = _simple_function()
    program = lower_function(f, MachineConfig().latency)
    assert program.function_name == "k"
    assert program.num_slots >= 4
    assert any(value == 1 for _, value in program.const_slots)
    arg_names = [arg.name for _, arg in program.arg_slots]
    assert arg_names == ["p"]
