"""Round-trip tests for Metrics serialization (used by the sweep trace)."""

import json

from repro.evaluation import execute
from repro.ir.types import AddressSpace
from repro.kernels import build_sb1
from repro.simt import Metrics


def test_round_trip_synthetic_counters():
    metrics = Metrics(warp_size=16)
    metrics.record_alu(active_lanes=12, latency=4)
    metrics.record_memory(space=AddressSpace.SHARED, latency=20, transactions=2)
    metrics.record_memory(space=AddressSpace.GLOBAL, latency=100, transactions=4)
    metrics.record_branch(latency=2, divergent=True, block_name="if.then",
                          profile=True)
    metrics.record_barrier(latency=8)

    data = json.loads(json.dumps(metrics.as_dict()))  # through real JSON
    restored = Metrics.from_dict(data)

    assert restored == metrics
    assert restored.alu_utilization == metrics.alu_utilization
    assert restored.shared_memory_issues == 1
    assert restored.divergence_rate("if.then") == 1.0


def test_round_trip_real_run():
    run = execute(build_sb1(block_size=16, grid_dim=1), seed=3)
    restored = Metrics.from_dict(run.metrics.as_dict())
    assert restored == run.metrics
    assert restored.as_dict() == run.metrics.as_dict()


def test_from_dict_tolerates_missing_optional_fields():
    restored = Metrics.from_dict({"cycles": 10})
    assert restored.cycles == 10
    assert restored.warp_size == 32
    assert restored.memory_issues == {}
    assert restored.alu_utilization == 0.0
