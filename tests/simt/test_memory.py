"""Tests for the simulated device memory."""

import pytest

from repro.ir import AddressSpace, GlobalVariable, I32, I64, F32, Module, pointer
from repro.simt.memory import (
    AddressSpaceMemory,
    DeviceMemory,
    GLOBAL_BASE,
    MemoryError_,
    SHARED_BASE,
    sizeof,
)


class TestSizeof:
    def test_int_sizes(self):
        assert sizeof(I32) == 4
        assert sizeof(I64) == 8
        from repro.ir import I1, I8

        assert sizeof(I8) == 1
        assert sizeof(I1) == 1

    def test_float_and_pointer(self):
        assert sizeof(F32) == 4
        assert sizeof(pointer(I32)) == 8


class TestSegments:
    def test_load_store_roundtrip(self):
        mem = AddressSpaceMemory(GLOBAL_BASE)
        seg = mem.allocate("buf", I32, 16)
        mem.store(seg.base + 8, 42)
        assert mem.load(seg.base + 8) == 42

    def test_out_of_bounds_traps(self):
        mem = AddressSpaceMemory(GLOBAL_BASE)
        seg = mem.allocate("buf", I32, 4)
        with pytest.raises(MemoryError_):
            mem.load(seg.base + 4 * 4)

    def test_misaligned_traps(self):
        mem = AddressSpaceMemory(GLOBAL_BASE)
        seg = mem.allocate("buf", I32, 4)
        with pytest.raises(MemoryError_):
            mem.load(seg.base + 2)

    def test_wild_address_traps(self):
        mem = AddressSpaceMemory(GLOBAL_BASE)
        mem.allocate("buf", I32, 4)
        with pytest.raises(MemoryError_):
            mem.load(0xDEAD)

    def test_segments_do_not_overlap(self):
        mem = AddressSpaceMemory(GLOBAL_BASE)
        a = mem.allocate("a", I32, 100)
        b = mem.allocate("b", I32, 100)
        assert a.end <= b.base


class TestDeviceMemory:
    def make_module(self):
        module = Module("m")
        module.add_global(GlobalVariable(
            "sh", pointer(I32, AddressSpace.SHARED), 32))
        module.add_global(GlobalVariable(
            "gl", pointer(I32, AddressSpace.GLOBAL), 32))
        return module

    def test_shared_is_per_block(self):
        device = DeviceMemory(self.make_module())
        view0 = device.shared_for_block(0)
        view1 = device.shared_for_block(1)
        sh = device.module.globals["sh"]
        addr0 = view0.var_address(sh)
        addr1 = view1.var_address(sh)
        assert addr0 == addr1  # same virtual address...
        view0.store(addr0, 111)
        view1.store(addr1, 222)
        assert view0.load(addr0) == 111  # ...different backing stores
        assert view1.load(addr1) == 222

    def test_global_shared_across_blocks(self):
        device = DeviceMemory(self.make_module())
        view0 = device.shared_for_block(0)
        view1 = device.shared_for_block(1)
        gl = device.module.globals["gl"]
        addr = view0.var_address(gl)
        view0.store(addr, 7)
        assert view1.load(addr) == 7

    def test_flat_address_resolution(self):
        device = DeviceMemory(self.make_module())
        view = device.shared_for_block(0)
        sh_addr = view.var_address(device.module.globals["sh"])
        gl_addr = view.var_address(device.module.globals["gl"])
        assert view.resolve_space(sh_addr) == AddressSpace.SHARED
        assert view.resolve_space(gl_addr) == AddressSpace.GLOBAL
        assert sh_addr >= SHARED_BASE
        assert gl_addr < SHARED_BASE
