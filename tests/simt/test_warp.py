"""Tests for the lockstep warp interpreter: arithmetic semantics,
divergence serialization, reconvergence, φ handling, and traps."""

import pytest

from repro.ir import Module
from repro.simt import GPU, MachineConfig, SimulationError, run_kernel

from tests.support import parse


def run(text, buffers, block_dim=4, scalars=None, grid_dim=1, config=None):
    f = parse(text)
    # Keep the parse module: it owns any shared-array globals.
    return run_kernel(f.module, f.name, grid_dim, block_dim, buffers=buffers,
                      scalars=scalars, config=config)


class TestArithmetic:
    def test_wrapping_add(self):
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %big = add i32 2147483647, 1
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %big, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0] * 4})
        assert out["p"][0] == -(2**31)

    def test_c_style_division(self):
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %q = sdiv i32 -7, 2
  %r = srem i32 -7, 2
  %g0 = getelementptr i32, i32 addrspace(1)* %p, i32 0
  %g1 = getelementptr i32, i32 addrspace(1)* %p, i32 1
  store i32 %q, i32 addrspace(1)* %g0
  store i32 %r, i32 addrspace(1)* %g1
  ret void
}
""", {"p": [0, 0]}, block_dim=1)
        assert out["p"] == [-3, -1]  # truncation toward zero

    def test_division_by_zero_traps(self):
        with pytest.raises(SimulationError, match="division by zero"):
            run("""
define void @k(i32 addrspace(1)* %p, i32 %z) {
entry:
  %q = sdiv i32 7, %z
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %q, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0]}, scalars={"z": 0}, block_dim=1)

    def test_unsigned_compare(self):
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %c = icmp ugt i32 -1, 1
  %z = zext i1 %c to i32
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %z, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0]}, block_dim=1)
        assert out["p"][0] == 1  # -1 is UINT_MAX


class TestDivergence:
    DIVERGENT = """
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  %pa = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 111, i32 addrspace(1)* %pa
  br label %m
b:
  %pb = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 222, i32 addrspace(1)* %pb
  br label %m
m:
  ret void
}
"""

    def test_both_sides_execute_masked(self):
        out, metrics = run(self.DIVERGENT, {"p": [0] * 8}, block_dim=8,
                           scalars={"n": 3})
        assert out["p"] == [111] * 3 + [222] * 5
        assert metrics.divergent_branches == 1

    def test_uniform_branch_not_counted_divergent(self):
        _, metrics = run(self.DIVERGENT, {"p": [0] * 8}, block_dim=8,
                         scalars={"n": 100})
        assert metrics.divergent_branches == 0

    def test_divergence_costs_double_issue(self):
        _, divergent = run(self.DIVERGENT, {"p": [0] * 8}, block_dim=8,
                           scalars={"n": 4})
        _, uniform = run(self.DIVERGENT, {"p": [0] * 8}, block_dim=8,
                         scalars={"n": 100})
        # Divergent execution issues both sides serially.
        assert divergent.instructions_issued > uniform.instructions_issued
        assert divergent.cycles > uniform.cycles
        assert divergent.alu_utilization < uniform.alu_utilization

    def test_phi_resolved_per_lane_at_join(self):
        out, _ = run("""
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %v = phi i32 [ 100, %a ], [ 200, %b ]
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %v, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0] * 6}, block_dim=6, scalars={"n": 2})
        assert out["p"] == [100, 100, 200, 200, 200, 200]

    def test_nested_divergence_reconverges(self):
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %bit0 = and i32 %tid, 1
  %c0 = icmp eq i32 %bit0, 0
  br i1 %c0, label %even, label %odd
even:
  %bit1 = and i32 %tid, 2
  %c1 = icmp eq i32 %bit1, 0
  br i1 %c1, label %e0, label %e2
e0:
  br label %ej
e2:
  br label %ej
ej:
  %ev = phi i32 [ 10, %e0 ], [ 20, %e2 ]
  br label %m
odd:
  br label %m
m:
  %v = phi i32 [ %ev, %ej ], [ 99, %odd ]
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %v, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0] * 8}, block_dim=8)
        assert out["p"] == [10, 99, 20, 99, 10, 99, 20, 99]

    def test_divergent_loop_trip_counts(self):
        # Each lane loops tid times; lanes retire at different iterations.
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %tid
  br i1 %c, label %h, label %x
x:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %ni, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0] * 6}, block_dim=6)
        assert out["p"] == [1, 1, 2, 3, 4, 5]


class TestUndefTraps:
    def test_branch_on_undef_traps(self):
        with pytest.raises(SimulationError, match="undef"):
            run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  br i1 undef, label %a, label %b
a:
  ret void
b:
  ret void
}
""", {"p": [0]}, block_dim=1)

    def test_load_through_undef_traps(self):
        with pytest.raises(SimulationError, match="undef"):
            run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %v = load i32, i32 addrspace(1)* undef
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %v, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0]}, block_dim=1)

    def test_unselected_undef_is_harmless(self):
        # select picks the defined arm: the undef is never observed.
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %s = select i1 1, i32 7, i32 undef
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %s, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0]}, block_dim=1)
        assert out["p"][0] == 7

    def test_select_on_undef_condition_propagates(self):
        # Not an observation point (LLVM: either operand, never UB): legal
        # speculation can hoist a CFM select above its guard, executing it
        # on lanes that discard the result.  Found by repro.difftest
        # (generator seed 130).
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %s = select i1 undef, i32 7, i32 9
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 5, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0]}, block_dim=1)
        assert out["p"][0] == 5

    def test_select_on_undef_condition_is_not_a_defined_value(self):
        # ...but the undef it yields is still visible wherever it lands:
        # a stored result reads back as the undef sentinel, so the
        # differential harness flags it as a mismatch against a clean arm.
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %s = select i1 undef, i32 7, i32 9
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %s, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0]}, block_dim=1)
        assert repr(out["p"][0]) == "<undef>"


class TestMetricsAccounting:
    def test_memory_instruction_classification(self):
        _, metrics = run("""
@sh = shared [16 x i32]

define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %gg = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v = load i32, i32 addrspace(1)* %gg
  %sg = getelementptr i32, i32 addrspace(3)* @sh, i32 %tid
  store i32 %v, i32 addrspace(3)* %sg
  ret void
}
""", {"p": [0] * 4}, block_dim=4)
        assert metrics.vector_memory_issues == 1
        assert metrics.shared_memory_issues == 1
        assert metrics.flat_memory_issues == 0

    def test_coalescing_charges_transactions(self):
        coalesced_src = """
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v = load i32, i32 addrspace(1)* %g
  ret void
}
"""
        strided_src = """
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %idx = mul i32 %tid, 64
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %idx
  %v = load i32, i32 addrspace(1)* %g
  ret void
}
"""
        _, coalesced = run(coalesced_src, {"p": [0] * 2048}, block_dim=8)
        _, strided = run(strided_src, {"p": [0] * 2048}, block_dim=8)
        assert strided.memory_transactions > coalesced.memory_transactions
        assert strided.cycles > coalesced.cycles

    def test_alu_utilization_full_when_uniform(self):
        _, metrics = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %x = add i32 %tid, 1
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %x, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0] * 32}, block_dim=32)
        assert metrics.alu_utilization == 1.0


class TestBarriers:
    def test_barrier_orders_cross_warp_communication(self):
        # 64 threads = 2 warps; each thread writes then reads neighbour's
        # slot across the warp boundary.
        out, _ = run("""
@sh = shared [64 x i32]

define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %sg = getelementptr i32, i32 addrspace(3)* @sh, i32 %tid
  store i32 %tid, i32 addrspace(3)* %sg
  call void @llvm.gpu.barrier()
  %other = xor i32 %tid, 63
  %og = getelementptr i32, i32 addrspace(3)* @sh, i32 %other
  %v = load i32, i32 addrspace(3)* %og
  %gg = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 %v, i32 addrspace(1)* %gg
  ret void
}
""", {"p": [0] * 64}, block_dim=64)
        assert out["p"] == [63 - i for i in range(64)]

    def test_nonuniform_barrier_detected(self):
        with pytest.raises(SimulationError, match="non-uniform barrier"):
            run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, 32
  br i1 %c, label %sync, label %out
sync:
  call void @llvm.gpu.barrier()
  br label %out
out:
  ret void
}
""", {"p": [0]}, block_dim=64)


class TestGrid:
    def test_block_ids_and_grid(self):
        out, _ = run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %bid = call i32 @llvm.gpu.ctaid.x()
  %dim = call i32 @llvm.gpu.ntid.x()
  %base = mul i32 %bid, %dim
  %gid = add i32 %base, %tid
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %gid
  store i32 %bid, i32 addrspace(1)* %g
  ret void
}
""", {"p": [0] * 12}, block_dim=4, grid_dim=3)
        assert out["p"] == [0] * 4 + [1] * 4 + [2] * 4

    def test_missing_argument_rejected(self):
        with pytest.raises(ValueError, match="missing kernel arguments"):
            run("""
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  ret void
}
""", {"p": [0]}, block_dim=1)

    def test_runaway_kernel_detected(self):
        with pytest.raises(SimulationError, match="non-termination"):
            run("""
define void @k(i32 addrspace(1)* %p) {
entry:
  br label %h
h:
  br label %h
}
""", {"p": [0]}, block_dim=1,
                config=MachineConfig(max_warp_steps=1000))
