"""Tests for the per-branch divergence profile."""

from repro.simt import MachineConfig, Metrics, run_kernel

from tests.support import parse


DIVERGENT = """
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  ret void
}
"""


def run(n, profile=True):
    f = parse(DIVERGENT)
    config = MachineConfig(profile_branches=profile)
    _, metrics = run_kernel(f.module, "k", 1, 8, buffers={"p": [0] * 8},
                            scalars={"n": n}, config=config)
    return metrics


class TestBranchProfile:
    def test_divergent_branch_recorded(self):
        metrics = run(n=3)
        assert metrics.branch_profile["entry"] == [1, 1]
        assert metrics.divergence_rate("entry") == 1.0

    def test_uniform_branch_recorded(self):
        metrics = run(n=100)
        assert metrics.branch_profile["entry"] == [1, 0]
        assert metrics.divergence_rate("entry") == 0.0

    def test_disabled_by_default(self):
        metrics = run(n=3, profile=False)
        assert metrics.branch_profile == {}

    def test_unknown_block_rate_zero(self):
        metrics = run(n=3)
        assert metrics.divergence_rate("nonexistent") == 0.0

    def test_profiles_merge_across_warps(self):
        f = parse(DIVERGENT)
        config = MachineConfig(profile_branches=True)
        _, metrics = run_kernel(f.module, "k", 2, 64,
                                buffers={"p": [0] * 128},
                                scalars={"n": 16}, config=config)
        # 2 blocks x 2 warps = 4 warp executions of %entry; only the warp
        # containing lanes 0..31 of each block diverges at n=16.
        execs, divs = metrics.branch_profile["entry"]
        assert execs == 4
        assert divs == 2

    def test_merge_accumulates_profile(self):
        a = run(n=3)
        b = run(n=3)
        a.merge(b)
        assert a.branch_profile["entry"] == [2, 2]


class TestMetricsAsDict:
    def test_round_trips_through_json(self):
        import json

        metrics = run(n=3)
        payload = json.loads(json.dumps(metrics.as_dict()))
        assert payload["divergent_branches"] == 1
        assert payload["branch_profile"]["entry"] == [1, 1]
        assert 0.0 <= payload["alu_utilization"] <= 1.0
