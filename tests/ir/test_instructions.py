"""Tests for the instruction classes: typing rules, CFG edge ownership,
cloning, and the melding-relevant classification flags."""

import pytest

from repro.ir import (
    AddressSpace,
    BasicBlock,
    BinaryOp,
    Branch,
    Call,
    Cast,
    F32,
    FCmp,
    Function,
    GetElementPtr,
    I1,
    I32,
    I64,
    ICmp,
    ICmpPredicate,
    IntrinsicName,
    IRBuilder,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    const_bool,
    const_int,
    pointer,
)


def c(v, t=I32):
    return const_int(v, t)


class TestTypingRules:
    def test_binop_requires_matching_types(self):
        with pytest.raises(TypeError):
            BinaryOp(Opcode.ADD, c(1, I32), c(1, I64))

    def test_binop_rejects_non_binary_opcode(self):
        with pytest.raises(ValueError):
            BinaryOp(Opcode.ICMP, c(1), c(2))

    def test_icmp_produces_i1(self):
        cmp = ICmp(ICmpPredicate.SLT, c(1), c(2))
        assert cmp.type is I1

    def test_icmp_rejects_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmp("weird", c(1), c(2))

    def test_fcmp_rejects_int_predicate(self):
        from repro.ir import Constant

        with pytest.raises(ValueError):
            FCmp("slt", Constant(F32, 1.0), Constant(F32, 2.0))

    def test_select_requires_i1_condition(self):
        with pytest.raises(TypeError):
            Select(c(1, I32), c(1), c(2))

    def test_select_requires_matching_arms(self):
        with pytest.raises(TypeError):
            Select(const_bool(True), c(1, I32), c(1, I64))

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(c(1))

    def test_store_requires_matching_pointee(self):
        from repro.ir import Undef

        ptr = Undef(pointer(I32, AddressSpace.GLOBAL))
        with pytest.raises(TypeError):
            Store(c(1, I64), ptr)

    def test_gep_result_type_matches_base(self):
        from repro.ir import Undef

        ptr = Undef(pointer(I32, AddressSpace.SHARED))
        gep = GetElementPtr(ptr, c(4))
        assert gep.type is pointer(I32, AddressSpace.SHARED)

    def test_casts_validate_widths(self):
        Cast(Opcode.ZEXT, c(1, I32), I64)
        with pytest.raises(TypeError):
            Cast(Opcode.ZEXT, c(1, I64), I32)
        with pytest.raises(TypeError):
            Cast(Opcode.TRUNC, c(1, I32), I64)


class TestClassification:
    def test_store_has_side_effects(self):
        from repro.ir import Undef

        ptr = Undef(pointer(I32, AddressSpace.GLOBAL))
        assert Store(c(1), ptr).has_side_effects
        assert not Store(c(1), ptr).is_speculatable

    def test_load_reads_memory_not_speculatable(self):
        from repro.ir import Undef

        ptr = Undef(pointer(I32, AddressSpace.GLOBAL))
        load = Load(ptr)
        assert load.may_read_memory
        assert not load.has_side_effects
        assert not load.is_speculatable

    def test_division_not_speculatable(self):
        assert not BinaryOp(Opcode.SDIV, c(1), c(2)).is_speculatable
        assert not BinaryOp(Opcode.UREM, c(1), c(2)).is_speculatable

    def test_alu_is_speculatable(self):
        assert BinaryOp(Opcode.ADD, c(1), c(2)).is_speculatable
        assert ICmp(ICmpPredicate.EQ, c(1), c(2)).is_speculatable
        assert Select(const_bool(True), c(1), c(2)).is_speculatable

    def test_barrier_has_side_effects(self):
        from repro.ir import VOID

        barrier = Call(IntrinsicName.BARRIER, [], VOID)
        assert barrier.is_barrier
        assert barrier.has_side_effects
        assert not barrier.is_pure_intrinsic

    def test_tid_is_pure(self):
        tid = Call(IntrinsicName.TID_X, [], I32)
        assert tid.is_pure_intrinsic
        assert tid.is_speculatable


class TestOperandSignatures:
    """Signatures gate CFM's `match` criteria: only same-shaped
    instructions may meld."""

    def test_same_opcode_same_signature(self):
        a = BinaryOp(Opcode.ADD, c(1), c(2))
        b = BinaryOp(Opcode.ADD, c(3), c(4))
        assert a.operand_signature() == b.operand_signature()

    def test_predicate_distinguishes_compares(self):
        lt = ICmp(ICmpPredicate.SLT, c(1), c(2))
        gt = ICmp(ICmpPredicate.SGT, c(1), c(2))
        assert lt.operand_signature() != gt.operand_signature()

    def test_address_space_distinguishes_loads(self):
        from repro.ir import Undef

        g = Load(Undef(pointer(I32, AddressSpace.GLOBAL)))
        s = Load(Undef(pointer(I32, AddressSpace.SHARED)))
        assert g.operand_signature() != s.operand_signature()

    def test_load_never_matches_store(self):
        from repro.ir import Undef

        ptr = Undef(pointer(I32, AddressSpace.GLOBAL))
        assert Load(ptr).operand_signature() != Store(c(1), ptr).operand_signature()


class TestBranchEdges:
    def make_blocks(self):
        f = Function("f", [], [])
        return f, f.add_block("a"), f.add_block("b"), f.add_block("c")

    def test_append_links_preds(self):
        f, a, b, _ = self.make_blocks()
        a.append(Branch([b]))
        assert a in b.preds

    def test_cond_branch_links_both(self):
        f, a, b, cblk = self.make_blocks()
        a.append(Branch([b, cblk], const_bool(True)))
        assert a in b.preds and a in cblk.preds

    def test_erase_unlinks(self):
        f, a, b, _ = self.make_blocks()
        br = a.append(Branch([b]))
        br.erase_from_parent()
        assert a not in b.preds
        assert a.terminator is None

    def test_set_successor_relinks(self):
        f, a, b, cblk = self.make_blocks()
        br = a.append(Branch([b]))
        br.set_successor(0, cblk)
        assert a not in b.preds
        assert a in cblk.preds

    def test_replace_successor_both_edges(self):
        f, a, b, cblk = self.make_blocks()
        br = a.append(Branch([b, b], const_bool(True)))
        br.replace_successor(b, cblk)
        assert br.successors == [cblk, cblk]
        assert a not in b.preds and a in cblk.preds

    def test_unconditional_takes_one_successor(self):
        _, a, b, cblk = self.make_blocks()
        with pytest.raises(ValueError):
            Branch([b, cblk])

    def test_conditional_requires_i1(self):
        _, a, b, cblk = self.make_blocks()
        with pytest.raises(TypeError):
            Branch([b, cblk], c(1))


class TestPhi:
    def test_add_and_query_incoming(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        phi = Phi(I32)
        phi.add_incoming(c(1), a)
        phi.add_incoming(c(2), b)
        assert phi.incoming_for(a).value == 1
        assert phi.incoming_for(b).value == 2

    def test_remove_incoming_shifts_uses(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        v1, v2 = BinaryOp(Opcode.ADD, c(1), c(2)), BinaryOp(Opcode.ADD, c(3), c(4))
        phi = Phi(I32)
        phi.add_incoming(v1, a)
        phi.add_incoming(v2, b)
        phi.remove_incoming(a)
        assert phi.incoming == [(v2, b)]
        assert (phi, 0) in v2.uses
        assert v1.num_uses == 0

    def test_set_incoming_for(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        phi = Phi(I32)
        phi.add_incoming(c(1), a)
        phi.set_incoming_for(a, c(9))
        assert phi.incoming_for(a).value == 9

    def test_type_mismatch_rejected(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        phi = Phi(I32)
        with pytest.raises(TypeError):
            phi.add_incoming(c(1, I64), a)

    def test_replace_incoming_block(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        phi = Phi(I32)
        phi.add_incoming(c(1), a)
        phi.replace_incoming_block(a, b)
        assert phi.incoming_blocks == [b]


class TestCloning:
    def test_clone_shares_operands_not_identity(self):
        a = BinaryOp(Opcode.ADD, c(1), c(2), "x")
        copy = a.clone()
        assert copy is not a
        assert copy.opcode == a.opcode
        assert copy.operand(0) is a.operand(0)

    def test_clone_registers_uses(self):
        lhs = BinaryOp(Opcode.ADD, c(1), c(2))
        a = BinaryOp(Opcode.MUL, lhs, c(3))
        copy = a.clone()
        assert (copy, 0) in lhs.uses

    def test_clone_phi(self):
        f = Function("f", [], [])
        blk = f.add_block("a")
        phi = Phi(I32, "p")
        phi.add_incoming(c(1), blk)
        copy = phi.clone()
        assert copy.incoming == [(phi.incoming_values[0], blk)]

    def test_clone_branch(self):
        f = Function("f", [], [])
        a, b, d = f.add_block("a"), f.add_block("b"), f.add_block("d")
        br = Branch([b, d], const_bool(True))
        copy = br.clone()
        assert copy.successors == [b, d]
        assert copy.is_conditional


class TestErase:
    def test_erase_with_uses_raises(self):
        f = Function("f", [], [])
        blk = f.add_block("a")
        builder = IRBuilder(blk)
        v = builder.add(c(1), c(2))
        builder.add(v, c(3))
        with pytest.raises(RuntimeError):
            v.erase_from_parent()

    def test_erase_removes_from_block(self):
        f = Function("f", [], [])
        blk = f.add_block("a")
        builder = IRBuilder(blk)
        v = builder.add(c(1), c(2))
        v.erase_from_parent()
        assert len(blk) == 0
        assert v.parent is None
