"""Tests for the `python -m repro.ir` command-line tool."""

import pytest

from repro.ir.__main__ import main

KERNEL = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %parity = and i32 %tid, 1
  %c = icmp eq i32 %parity, 0
  br i1 %c, label %t, label %f
t:
  %tp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %tv = load i32, i32 addrspace(1)* %tp
  store i32 %tv, i32 addrspace(1)* %tp
  br label %m
f:
  %fp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %fv = load i32, i32 addrspace(1)* %fp
  store i32 %fv, i32 addrspace(1)* %fp
  br label %m
m:
  ret void
}
"""

BROKEN = """
define void @bad() {
entry:
  %x = add i32 %ghost, 1
  ret void
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "k.ll"
    path.write_text(KERNEL)
    return str(path)


class TestCLI:
    def test_parse_and_print(self, kernel_file, capsys):
        assert main([kernel_file]) == 0
        out = capsys.readouterr().out
        assert "define void @k" in out
        assert "br i1 %c" in out

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.ll"
        path.write_text(BROKEN)
        assert main([str(path)]) == 1
        assert "parse error" in capsys.readouterr().err

    def test_cfm_melds(self, kernel_file, capsys):
        assert main([kernel_file, "--cfm", "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "1 melds" in err

    def test_divergence_report(self, kernel_file, capsys):
        assert main([kernel_file, "--divergence", "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "divergent branches: entry" in err

    def test_dot_export(self, kernel_file, tmp_path, capsys):
        dot_path = tmp_path / "cfg.dot"
        assert main([kernel_file, "--dot", str(dot_path), "--quiet"]) == 0
        content = dot_path.read_text()
        assert content.startswith("digraph")
        assert '"entry"' in content

    def test_optimize_pipeline(self, kernel_file, capsys):
        assert main([kernel_file, "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "define void @k" in out

    def test_verification_failure_detected(self, tmp_path, capsys):
        # Structurally parseable but SSA-invalid: use before def across
        # non-dominating blocks.
        path = tmp_path / "invalid.ll"
        path.write_text("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i32 1, 2
  br label %m
b:
  br label %m
m:
  %y = add i32 %x, 3
  ret void
}
""")
        assert main([str(path)]) == 2
        assert "verification failed" in capsys.readouterr().err
