"""Property tests for the Value/User use-list machinery.

The melder's correctness rests entirely on use lists staying consistent
under arbitrary sequences of `set_operand` / `replace_all_uses_with` —
these tests drive random mutation sequences and then re-derive the use
lists from the operand lists, asserting they match exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.ir import BinaryOp, Constant, I32, Opcode, Select, const_bool, const_int


def check_use_lists(values):
    """Recompute expected uses from operands; compare with the actual."""
    expected = {id(v): [] for v in values}
    for value in values:
        if not hasattr(value, "operands"):
            continue
        for index, operand in enumerate(value.operands):
            if id(operand) in expected:
                expected[id(operand)].append((value, index))
    for value in values:
        actual = sorted(value.uses, key=lambda u: (id(u[0]), u[1]))
        exp = sorted(expected[id(value)], key=lambda u: (id(u[0]), u[1]))
        assert actual == exp, f"use list diverged for {value!r}"


@st.composite
def mutation_scripts(draw):
    """A DAG of binary ops plus a list of mutations to apply."""
    n_values = draw(st.integers(3, 10))
    builders = []
    for i in range(n_values):
        # Each op reads two earlier values (or constants).
        lhs = draw(st.integers(-2, i - 1))
        rhs = draw(st.integers(-2, i - 1))
        builders.append((lhs, rhs))
    mutations = draw(st.lists(
        st.tuples(
            st.sampled_from(["set", "rauw"]),
            st.integers(0, n_values - 1),   # target value
            st.integers(0, 1),              # operand slot (for set)
            st.integers(-2, n_values - 1),  # replacement source
        ),
        max_size=12))
    return builders, mutations


def materialize(builders):
    values = []
    for lhs_idx, rhs_idx in builders:
        def pick(idx):
            if idx < 0:
                return const_int(idx, I32)
            return values[idx]
        values.append(BinaryOp(Opcode.ADD, pick(lhs_idx), pick(rhs_idx)))
    return values


@given(mutation_scripts())
@settings(max_examples=120, deadline=None)
def test_use_lists_consistent_under_mutation(script):
    builders, mutations = script
    values = materialize(builders)
    check_use_lists(values)
    for kind, target, slot, source in mutations:
        replacement = (const_int(source, I32) if source < 0
                       else values[source])
        if kind == "set":
            values[target].set_operand(slot, replacement)
        else:
            if replacement is not values[target]:
                values[target].replace_all_uses_with(replacement)
        check_use_lists(values)


@given(mutation_scripts())
@settings(max_examples=60, deadline=None)
def test_rauw_leaves_no_stale_uses(script):
    builders, _ = script
    values = materialize(builders)
    fresh = const_int(999, I32)
    for value in values:
        value.replace_all_uses_with(fresh)
        assert value.num_uses == 0 or all(
            user is value for user, _ in value.uses
        ), "self-uses are the only thing RAUW may leave behind"


def test_drop_all_operands_is_idempotent():
    a, b = const_int(1, I32), const_int(2, I32)
    op = BinaryOp(Opcode.ADD, a, b)
    op.drop_all_operands()
    op.drop_all_operands()
    assert a.num_uses == 0 and op.num_operands == 0


def test_select_three_slot_bookkeeping():
    cond = const_bool(True)
    a, b = const_int(1, I32), const_int(2, I32)
    sel = Select(cond, a, b)
    sel.set_operand(1, b)
    assert (sel, 1) in b.uses and (sel, 2) in b.uses
    assert a.num_uses == 0
    sel.set_operand(2, a)
    assert (sel, 2) in a.uses
    assert (sel, 1) in b.uses and (sel, 2) not in b.uses
