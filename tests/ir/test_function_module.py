"""Tests for Function/Module/GlobalVariable plumbing and name handling."""

import pytest

from repro.ir import (
    AddressSpace,
    Function,
    GlobalVariable,
    I32,
    IRBuilder,
    Module,
    pointer,
    print_module,
)
from repro.ir.parser import parse_module


class TestFunction:
    def test_entry_requires_blocks(self):
        f = Function("f", [], [])
        with pytest.raises(RuntimeError):
            f.entry

    def test_arg_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Function("f", [I32], ["a", "b"])

    def test_arg_by_name(self):
        f = Function("f", [I32, I32], ["x", "y"])
        assert f.arg_by_name("y").index == 1
        with pytest.raises(KeyError):
            f.arg_by_name("z")

    def test_instructions_iterates_all_blocks(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        builder = IRBuilder(a)
        builder.br(b)
        builder.position_at_end(b)
        builder.ret()
        assert [i.opcode for i in f.instructions()] == ["br", "ret"]

    def test_assign_names_deduplicates(self):
        f = Function("f", [I32], ["x"])
        a = f.add_block("a")
        builder = IRBuilder(a)
        v1 = builder.add(f.args[0], builder.const(1), "v")
        v2 = builder.add(f.args[0], builder.const(2), "v")
        builder.ret()
        f.assign_names()
        assert v1.name != v2.name
        assert {v1.name, v2.name} == {"v", "v.1"}

    def test_assign_names_avoids_argument_names(self):
        f = Function("f", [I32], ["x"])
        a = f.add_block("a")
        builder = IRBuilder(a)
        v = builder.add(f.args[0], builder.const(1), "x")
        builder.ret()
        f.assign_names()
        assert v.name != "x"


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module("m")
        m.add_function(Function("f", [], []))
        with pytest.raises(ValueError):
            m.add_function(Function("f", [], []))

    def test_duplicate_global_rejected(self):
        m = Module("m")
        m.add_global(GlobalVariable("g", pointer(I32, AddressSpace.GLOBAL), 4))
        with pytest.raises(ValueError):
            m.add_global(GlobalVariable("g", pointer(I32, AddressSpace.GLOBAL), 4))

    def test_global_must_be_pointer_typed(self):
        with pytest.raises(TypeError):
            GlobalVariable("g", I32, 4)

    def test_is_shared_flag(self):
        shared = GlobalVariable("s", pointer(I32, AddressSpace.SHARED), 4)
        global_ = GlobalVariable("g", pointer(I32, AddressSpace.GLOBAL), 4)
        assert shared.is_shared
        assert not global_.is_shared

    def test_multi_function_module_prints_and_parses(self):
        text = """
@buf = global [8 x i32]

define void @first(i32 %x) {
entry:
  ret void
}

define void @second(i32 addrspace(1)* %p) {
entry:
  %g = getelementptr i32, i32 addrspace(1)* @buf, i32 0
  %v = load i32, i32 addrspace(1)* %g
  ret void
}
"""
        m = parse_module(text)
        assert set(m.functions) == {"first", "second"}
        printed = print_module(m)
        m2 = parse_module(printed)
        assert print_module(m2) == printed


class TestScalars:
    def test_wrap_and_unsigned(self):
        from repro.ir.scalars import unsigned, wrap

        assert wrap(2**31, I32) == -(2**31)
        assert wrap(-1, I32) == -1
        assert unsigned(-1, I32) == 2**32 - 1

    def test_eval_binary_edge_cases(self):
        from repro.ir.scalars import EvalError, eval_binary

        assert eval_binary("ashr", -8, 1, I32) == -4
        assert eval_binary("lshr", -8, 1, I32) == 2**31 - 4
        with pytest.raises(EvalError):
            eval_binary("shl", 1, 40, I32)
        with pytest.raises(EvalError):
            eval_binary("udiv", 1, 0, I32)

    def test_float_division_special_cases(self):
        import math

        from repro.ir.scalars import eval_binary
        from repro.ir import F32

        assert eval_binary("fdiv", 1.0, 0.0, F32) == float("inf")
        assert eval_binary("fdiv", -1.0, 0.0, F32) == float("-inf")
        assert math.isnan(eval_binary("fdiv", 0.0, 0.0, F32))

    def test_eval_cast(self):
        from repro.ir.scalars import eval_cast
        from repro.ir import I8, F32

        assert eval_cast("zext", -1, I8, I32) == 255
        assert eval_cast("sext", -1, I8, I32) == -1
        assert eval_cast("trunc", 257, I32, I8) == 1
        assert eval_cast("fptosi", -2.7, F32, I32) == -2  # trunc toward 0
        assert eval_cast("sitofp", 5, I32, F32) == 5.0
