"""Property test: printed IR of arbitrary (fuzz-generated, optimized,
melded) kernels must re-parse to an equivalent, verifiable function, and
re-printing must reach a fixpoint."""

from hypothesis import given, settings, strategies as st

from repro.core import run_cfm
from repro.ir import Module, print_function, verify_function
from repro.ir.parser import parse_function
from repro.simt import run_kernel
from repro.transforms import optimize

import tests.integration.test_cfm_fuzzer as cfm_fuzz


@given(spec=cfm_fuzz.kernel_specs(),
       stage=st.sampled_from(["raw", "o3", "cfm"]))
@settings(max_examples=40, deadline=None)
def test_print_parse_fixpoint(spec, stage):
    built = cfm_fuzz.build_fuzz_kernel(spec)
    if stage in ("o3", "cfm"):
        optimize(built.function)
    if stage == "cfm":
        run_cfm(built.function)
    printed = print_function(built.function)
    reparsed = parse_function(printed)
    verify_function(reparsed)
    assert print_function(reparsed) == printed


@given(spec=cfm_fuzz.kernel_specs(), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_reparsed_kernel_executes_identically(spec, seed):
    values = [(seed * 2654435761 + i * 40503) % 199 - 99
              for i in range(2 * cfm_fuzz.BLOCK)]
    buffers = {"a": values[:cfm_fuzz.BLOCK], "b": values[cfm_fuzz.BLOCK:]}

    built = cfm_fuzz.build_fuzz_kernel(spec)
    optimize(built.function)
    out1, _ = run_kernel(built.module, "fuzz", 1, cfm_fuzz.BLOCK,
                         buffers={k: list(v) for k, v in buffers.items()})

    reparsed = parse_function(print_function(built.function))
    out2, _ = run_kernel(reparsed.module, reparsed.name, 1, cfm_fuzz.BLOCK,
                         buffers={k: list(v) for k, v in buffers.items()})
    assert out1 == out2
