"""Round-trip tests for the textual IR printer/parser pair."""

import pytest

from repro.ir import (
    AddressSpace,
    Branch,
    GlobalVariable,
    Load,
    Phi,
    Store,
    print_function,
    print_module,
    verify_function,
)
from repro.ir.parser import ParseError, parse_function, parse_module

from tests.support import build_diamond


KERNEL_TEXT = """
@buf = shared [128 x i32]

define void @k(i32 addrspace(1)* %data, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %body, label %exit
body:
  %p = getelementptr i32, i32 addrspace(3)* @buf, i32 %tid
  %v = load i32, i32 addrspace(3)* %p
  %d = add i32 %v, 7
  store i32 %d, i32 addrspace(3)* %p
  call void @llvm.gpu.barrier()
  br label %exit
exit:
  ret void
}
"""


class TestParse:
    def test_parse_globals(self):
        m = parse_module(KERNEL_TEXT)
        buf = m.globals["buf"]
        assert buf.is_shared
        assert buf.element_count == 128
        assert buf.type.space == AddressSpace.SHARED

    def test_parse_function_structure(self):
        f = parse_module(KERNEL_TEXT).function("k")
        assert [b.name for b in f.blocks] == ["entry", "body", "exit"]
        assert len(f.args) == 2
        verify_function(f)

    def test_parse_instruction_kinds(self):
        f = parse_module(KERNEL_TEXT).function("k")
        body = f.block_by_name("body")
        opcodes = [i.opcode for i in body]
        assert opcodes == ["getelementptr", "load", "add", "store", "call", "br"]

    def test_load_store_address_spaces(self):
        f = parse_module(KERNEL_TEXT).function("k")
        body = f.block_by_name("body")
        load = [i for i in body if isinstance(i, Load)][0]
        store = [i for i in body if isinstance(i, Store)][0]
        assert load.address_space == AddressSpace.SHARED
        assert store.address_space == AddressSpace.SHARED

    def test_forward_reference_phi(self):
        f = parse_function("""
define void @loop(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %header ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %header, label %done
done:
  ret void
}
""")
        verify_function(f)
        header = f.block_by_name("header")
        phi = header.phis[0]
        assert phi.incoming_for(header).name == "next"

    def test_undefined_value_raises(self):
        with pytest.raises((ParseError, ValueError)):
            parse_function("""
define void @bad() {
entry:
  %x = add i32 %ghost, 1
  ret void
}
""")

    def test_unknown_opcode_raises(self):
        with pytest.raises(ParseError):
            parse_function("""
define void @bad() {
entry:
  %x = frobnicate i32 1, 2
  ret void
}
""")

    def test_negative_and_float_constants(self):
        f = parse_function("""
define void @consts(float %x) {
entry:
  %a = add i32 -5, 3
  %b = fadd float %x, 2.5
  ret void
}
""")
        entry = f.entry
        assert entry.instructions[0].operand(0).value == -5
        assert entry.instructions[1].operand(1).value == 2.5


class TestRoundTrip:
    def test_module_round_trip_fixpoint(self):
        m1 = parse_module(KERNEL_TEXT)
        text1 = print_module(m1)
        m2 = parse_module(text1)
        assert print_module(m2) == text1

    def test_builder_output_round_trips(self):
        f = build_diamond()
        text = print_function(f)
        f2 = parse_function(text)
        verify_function(f2)
        assert print_function(f2) == text

    def test_round_trip_preserves_block_order(self):
        f = parse_function("""
define void @order() {
entry:
  br label %later
early:
  ret void
later:
  br label %early
}
""")
        assert [b.name for b in f.blocks] == ["entry", "early", "later"]

    def test_select_with_undef_round_trips(self):
        text = """
define void @sel(i1 %c, i32 %a) {
entry:
  %x = select i1 %c, i32 %a, i32 undef
  ret void
}
"""
        f = parse_function(text)
        printed = print_function(f)
        assert "i32 undef" in printed
        f2 = parse_function(printed)
        assert print_function(f2) == printed
