"""Tests for values, users, constants and use-list maintenance."""

import pytest

from repro.ir import (
    BinaryOp,
    Constant,
    I1,
    I32,
    Opcode,
    Select,
    Undef,
    const_bool,
    const_int,
)


def add(a, b):
    return BinaryOp(Opcode.ADD, a, b)


class TestConstants:
    def test_int_constant_value(self):
        c = const_int(42, I32)
        assert c.value == 42
        assert c.type is I32

    def test_int_constant_wraps_to_width(self):
        c = const_int(2**31, I32)  # wraps to INT32_MIN
        assert c.value == -(2**31)
        assert const_int(-1, I32).value == -1
        assert const_int(255, I32).value == 255

    def test_i1_constants(self):
        assert const_bool(True).value == 1
        assert const_bool(False).value == 0

    def test_constant_equality_by_type_and_value(self):
        assert const_int(5, I32) == const_int(5, I32)
        assert const_int(5, I32) != const_int(6, I32)
        assert hash(const_int(5, I32)) == hash(const_int(5, I32))

    def test_constant_rejects_bad_type(self):
        from repro.ir import pointer

        with pytest.raises(TypeError):
            Constant(pointer(I32), 0)


class TestUndef:
    def test_undef_equality(self):
        assert Undef(I32) == Undef(I32)
        assert Undef(I32) != Undef(I1)
        assert Undef(I32) != const_int(0, I32)

    def test_undef_ref(self):
        assert Undef(I32).ref() == "undef"


class TestUseLists:
    def test_use_registered_on_construction(self):
        a, b = const_int(1, I32), const_int(2, I32)
        instr = add(a, b)
        assert (instr, 0) in a.uses
        assert (instr, 1) in b.uses
        assert a.num_uses == 1

    def test_same_value_in_two_slots(self):
        a = const_int(1, I32)
        instr = add(a, a)
        assert a.num_uses == 2
        assert instr.operand(0) is a and instr.operand(1) is a

    def test_set_operand_moves_use(self):
        a, b, c = const_int(1, I32), const_int(2, I32), const_int(3, I32)
        instr = add(a, b)
        instr.set_operand(0, c)
        assert a.num_uses == 0
        assert (instr, 0) in c.uses

    def test_replace_all_uses_with(self):
        a, b, c = const_int(1, I32), const_int(2, I32), const_int(3, I32)
        i1 = add(a, b)
        i2 = add(a, a)
        a.replace_all_uses_with(c)
        assert a.num_uses == 0
        assert i1.operand(0) is c
        assert i2.operand(0) is c and i2.operand(1) is c

    def test_replace_all_uses_with_self_is_noop(self):
        a, b = const_int(1, I32), const_int(2, I32)
        instr = add(a, b)
        a.replace_all_uses_with(a)
        assert (instr, 0) in a.uses

    def test_drop_all_operands(self):
        a, b = const_int(1, I32), const_int(2, I32)
        instr = add(a, b)
        instr.drop_all_operands()
        assert a.num_uses == 0 and b.num_uses == 0
        assert instr.num_operands == 0

    def test_users_deduplicated(self):
        a = const_int(1, I32)
        instr = add(a, a)
        assert instr in a.users
        assert len(a.users) == 1

    def test_chained_rauw_through_select(self):
        cond = const_bool(True)
        a, b, c = const_int(1, I32), const_int(2, I32), const_int(3, I32)
        sel = Select(cond, a, b)
        a.replace_all_uses_with(c)
        assert sel.true_value is c
        assert sel.false_value is b
