"""Tests for the Graphviz DOT exporter."""

from repro.analysis import compute_divergence
from repro.ir.dot import function_to_dot, melding_stages_to_dot

from tests.support import build_diamond, parse


class TestDotExport:
    def test_contains_all_blocks_and_edges(self):
        f = build_diamond()
        dot = function_to_dot(f)
        for block in f.blocks:
            assert f'"{block.name}"' in dot
        assert '"entry" -> "then" [label="T"];' in dot
        assert '"entry" -> "else" [label="F"];' in dot
        assert '"then" -> "merge";' in dot

    def test_valid_digraph_structure(self):
        f = build_diamond()
        dot = function_to_dot(f)
        assert dot.startswith('digraph "diamond" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}") + dot.count("\\{") * 0

    def test_highlight_and_divergent_styles(self):
        f = build_diamond()
        then = f.block_by_name("then")
        dot = function_to_dot(f, highlight=[then], divergent=[f.entry])
        assert 'fillcolor="#c8e6c9"' in dot
        assert 'penwidth=2' in dot

    def test_instruction_truncation(self):
        lines = "\n".join(f"  %v{i} = add i32 %x, {i}" for i in range(30))
        f = parse(f"""
define void @big(i32 %x) {{
entry:
{lines}
  ret void
}}
""")
        dot = function_to_dot(f, max_instructions=5)
        assert "more)" in dot

    def test_special_characters_escaped(self):
        f = build_diamond()
        dot = function_to_dot(f)
        # Record labels must not contain raw < > { } from the IR text.
        for line in dot.splitlines():
            if "label=" in line and "shape=record" not in line:
                payload = line.split('label="', 1)[1]
                assert "<" not in payload.replace("\\<", "")

    def test_melding_stages_marks_divergence(self):
        f = build_diamond()
        info = compute_divergence(f)
        assert info.has_divergent_branch(f.entry)
        dot = melding_stages_to_dot(f)
        assert 'penwidth=2' in dot
