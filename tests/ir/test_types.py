"""Tests for the interned IR type system."""

import pytest

from repro.ir import (
    AddressSpace,
    F32,
    F64,
    FloatType,
    I1,
    I32,
    I64,
    IntType,
    LABEL,
    PointerType,
    VOID,
    pointer,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32
        assert IntType(32) is not IntType(64)

    def test_float_types_are_interned(self):
        assert FloatType(32) is F32
        assert FloatType(64) is F64

    def test_pointer_types_are_interned(self):
        assert pointer(I32, AddressSpace.GLOBAL) is pointer(I32, AddressSpace.GLOBAL)
        assert pointer(I32, AddressSpace.GLOBAL) is not pointer(I32, AddressSpace.SHARED)
        assert pointer(I32) is not pointer(I64)

    def test_void_and_label_singletons(self):
        from repro.ir import VoidType, LabelType

        assert VoidType() is VOID
        assert LabelType() is LABEL


class TestPredicates:
    def test_is_integer(self):
        assert I32.is_integer
        assert not F32.is_integer
        assert not pointer(I32).is_integer

    def test_is_bool(self):
        assert I1.is_bool
        assert not I32.is_bool

    def test_is_pointer(self):
        assert pointer(I32).is_pointer
        assert not I32.is_pointer

    def test_is_void(self):
        assert VOID.is_void
        assert not I32.is_void


class TestIntRanges:
    def test_i32_range(self):
        assert I32.min_value == -(2**31)
        assert I32.max_value == 2**31 - 1
        assert I32.unsigned_max == 2**32 - 1

    def test_i1_range(self):
        assert I1.min_value == 0
        assert I1.max_value == 1

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(-8)
        with pytest.raises(ValueError):
            FloatType(16)


class TestRepr:
    def test_int_repr(self):
        assert repr(I32) == "i32"
        assert repr(I1) == "i1"

    def test_float_repr(self):
        assert repr(F32) == "float"
        assert repr(F64) == "double"

    def test_pointer_repr(self):
        assert repr(pointer(I32, AddressSpace.GLOBAL)) == "i32 addrspace(1)*"
        assert repr(pointer(I32, AddressSpace.SHARED)) == "i32 addrspace(3)*"
        assert repr(pointer(I32, AddressSpace.FLAT)) == "i32*"

    def test_address_space_names(self):
        assert AddressSpace.name(AddressSpace.GLOBAL) == "global"
        assert AddressSpace.name(AddressSpace.SHARED) == "shared"
        assert AddressSpace.name(AddressSpace.FLAT) == "flat"
