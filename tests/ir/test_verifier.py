"""Tests for the IR verifier: each invariant violation must be caught."""

import pytest

from repro.ir import (
    BinaryOp,
    Branch,
    Function,
    I32,
    IRBuilder,
    Opcode,
    Phi,
    Ret,
    VerificationError,
    const_bool,
    const_int,
    is_well_formed,
    verify_function,
)

from tests.support import build_diamond, parse, straightline_function


def c(v):
    return const_int(v, I32)


class TestAccepts:
    def test_straightline(self):
        verify_function(straightline_function())

    def test_diamond(self):
        verify_function(build_diamond())

    def test_loop_with_phi(self):
        f = parse("""
define void @loop(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %next, %h ]
  %next = add i32 %i, 1
  %cmp = icmp slt i32 %next, %n
  br i1 %cmp, label %h, label %x
x:
  ret void
}
""")
        verify_function(f)
        assert is_well_formed(f)


class TestRejects:
    def test_missing_terminator(self):
        f = Function("f", [], [])
        blk = f.add_block("a")
        IRBuilder(blk).add(c(1), c(2))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_empty_block(self):
        f = Function("f", [], [])
        f.add_block("a")
        with pytest.raises(VerificationError, match="empty"):
            verify_function(f)

    def test_phi_after_non_phi(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        builder = IRBuilder(a)
        builder.br(b)
        builder.position_at_end(b)
        v = builder.add(c(1), c(2))
        phi = Phi(I32, "p")
        phi.parent = b
        b._instructions.append(phi)  # bypass insert_after_phis deliberately
        phi.add_incoming(c(0), a)
        builder.ret()
        with pytest.raises(VerificationError, match="phi after non-phi"):
            verify_function(f)

    def test_phi_incoming_mismatch(self):
        f = Function("f", [], [])
        a, b, m = f.add_block("a"), f.add_block("b"), f.add_block("m")
        builder = IRBuilder(a)
        builder.cond_br(const_bool(True), b, m)
        builder.position_at_end(b)
        builder.br(m)
        builder.position_at_end(m)
        phi = builder.phi(I32, "p")
        phi.add_incoming(c(1), a)  # missing entry for %b
        builder.ret()
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(f)

    def test_use_does_not_dominate(self):
        f = Function("f", [], [])
        a, b, m = f.add_block("a"), f.add_block("b"), f.add_block("m")
        builder = IRBuilder(a)
        builder.cond_br(const_bool(True), b, m)
        builder.position_at_end(b)
        v = builder.add(c(1), c(2), "v")
        builder.br(m)
        builder.position_at_end(m)
        builder.add(v, c(3))  # %v does not dominate %m
        builder.ret()
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(f)

    def test_use_before_def_same_block(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        builder = IRBuilder(a)
        v1 = builder.add(c(1), c(2), "v1")
        v2 = builder.add(c(3), c(4), "v2")
        builder.ret()
        # Swap so v1's definition comes after its use by reordering operand.
        v1.set_operand(0, v2)
        a._instructions.remove(v2)
        a._instructions.insert(1, v2)  # now order: v1, v2, ret; v1 uses v2
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(f)

    def test_phi_use_checked_at_incoming_edge(self):
        # A phi may use a value that only dominates the matching incoming
        # block, not the phi's own block — that must be accepted.
        f = parse("""
define void @ok(i1 %c) {
entry:
  br i1 %c, label %l, label %r
l:
  %x = add i32 1, 2
  br label %m
r:
  br label %m
m:
  %p = phi i32 [ %x, %l ], [ 0, %r ]
  ret void
}
""")
        verify_function(f)

    def test_entry_with_predecessor(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        builder = IRBuilder(a)
        builder.br(b)
        builder.position_at_end(b)
        builder.br(a)
        with pytest.raises(VerificationError, match="entry"):
            verify_function(f)

    def test_foreign_argument(self):
        other = Function("other", [I32], ["y"])
        f = Function("f", [], [])
        a = f.add_block("a")
        builder = IRBuilder(a)
        builder.add(other.args[0], c(1))
        builder.ret()
        with pytest.raises(VerificationError, match="argument"):
            verify_function(f)

    def test_barrier_with_uses(self):
        # BARRIER is void; giving its "result" a use must be rejected.
        f = Function("f", [], [])
        a = f.add_block("a")
        builder = IRBuilder(a)
        bar = builder.barrier()
        add = builder.add(c(1), c(2))
        builder.ret()
        add.set_operand(0, bar)  # bypass type discipline deliberately
        with pytest.raises(VerificationError, match="barrier.*void.*use"):
            verify_function(f)

    def test_barrier_without_uses_ok(self):
        f = Function("f", [], [])
        builder = IRBuilder(f.add_block("a"))
        builder.barrier()
        builder.ret()
        verify_function(f)

    def test_conditional_branch_on_non_i1(self):
        f = Function("f", [], [])
        a, b, m = f.add_block("a"), f.add_block("b"), f.add_block("m")
        builder = IRBuilder(a)
        cond = builder.add(c(1), c(2), "w")  # i32, not i1
        term = builder.cond_br(const_bool(True), b, m)
        for blk in (b, m):
            builder.position_at_end(blk)
            builder.ret()
        term.set_operand(0, cond)  # swap in the i32 behind the builder's back
        with pytest.raises(VerificationError, match="non-i1"):
            verify_function(f)

    def test_is_well_formed_false(self):
        f = Function("f", [], [])
        f.add_block("a")
        assert not is_well_formed(f)
