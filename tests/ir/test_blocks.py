"""Tests for BasicBlock structure and mutation."""

import pytest

from repro.ir import (
    Branch,
    Function,
    I32,
    IRBuilder,
    Phi,
    Ret,
    const_bool,
    const_int,
)

from tests.support import straightline_function


def c(v):
    return const_int(v, I32)


class TestStructure:
    def test_terminator_detection(self):
        f = straightline_function(2)
        assert isinstance(f.blocks[0].terminator, Branch)
        assert isinstance(f.blocks[1].terminator, Ret)

    def test_no_double_terminator(self):
        f = Function("f", [], [])
        blk = f.add_block("a")
        blk.append(Ret())
        with pytest.raises(RuntimeError):
            blk.append(Ret())

    def test_phis_property_only_leading_run(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        builder = IRBuilder(a)
        p1 = builder.phi(I32, "p1")
        p2 = builder.phi(I32, "p2")
        builder.add(c(1), c(2))
        assert a.phis == [p1, p2]
        assert a.first_non_phi().opcode == "add"
        assert len(a.non_phi_instructions) == 1  # just the add

    def test_insert_before_terminator(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        builder = IRBuilder(a)
        builder.ret()
        from repro.ir import BinaryOp, Opcode

        instr = BinaryOp(Opcode.ADD, c(1), c(2))
        a.insert_before_terminator(instr)
        assert a.instructions[-1].opcode == "ret"
        assert a.instructions[-2] is instr

    def test_insert_after_phis_empty_block(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        from repro.ir import BinaryOp, Opcode

        instr = BinaryOp(Opcode.ADD, c(1), c(2))
        a.insert_after_phis(instr)
        assert a.instructions == [instr]


class TestSuccsPreds:
    def test_single_succ_pred(self):
        f = straightline_function(3)
        b0, b1, b2 = f.blocks
        assert b0.single_succ is b1
        assert b1.single_pred is b0
        assert b2.single_succ is None

    def test_succs_deduplicated_for_same_target(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        a.append(Branch([b, b], const_bool(True)))
        assert a.succs == [b]
        assert b.preds == [a]

    def test_multiple_preds(self):
        f = Function("f", [], [])
        a, b, m = f.add_block("a"), f.add_block("b"), f.add_block("m")
        a.append(Branch([m]))
        b.append(Branch([m]))
        assert set(m.preds) == {a, b}


class TestReplaceTerminator:
    def test_replace_updates_edges(self):
        f = Function("f", [], [])
        a, b, d = f.add_block("a"), f.add_block("b"), f.add_block("d")
        a.append(Branch([b]))
        a.replace_terminator(Branch([d]))
        assert a not in b.preds
        assert a in d.preds


class TestEraseBlock:
    def test_erase_dead_block(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        builder = IRBuilder(a)
        v = builder.add(c(1), c(2))
        builder.add(v, c(3))
        builder.ret()
        a.erase()
        assert a.parent is None
        assert not f.blocks

    def test_erase_unlinks_branch_edges(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        a.append(Branch([b]))
        a.erase()
        assert b.preds == []

    def test_erase_refuses_with_external_uses(self):
        f = Function("f", [], [])
        a, b = f.add_block("a"), f.add_block("b")
        builder = IRBuilder(a)
        v = builder.add(c(1), c(2))
        builder.br(b)
        builder.position_at_end(b)
        builder.add(v, c(3))
        builder.ret()
        with pytest.raises(RuntimeError):
            a.erase()


class TestFunctionNames:
    def test_unique_block_names(self):
        f = Function("f", [], [])
        a1 = f.add_block("x")
        a2 = f.add_block("x")
        assert a1.name == "x"
        assert a2.name != "x"

    def test_add_block_after(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        b = f.add_block("b")
        mid = f.add_block("mid", after=a)
        assert f.blocks == [a, mid, b]

    def test_block_by_name(self):
        f = Function("f", [], [])
        a = f.add_block("a")
        assert f.block_by_name("a") is a
        with pytest.raises(KeyError):
            f.block_by_name("nope")
