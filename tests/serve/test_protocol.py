"""Wire-level tests for the ``repro.serve`` NDJSON protocol."""

import json

import pytest

from repro.serve import ERROR_CODES, PROTOCOL, ProtocolError
from repro.serve.protocol import (
    EVENTS,
    OPS,
    check_op,
    decode,
    encode,
    rejection,
)


class TestEncode:
    def test_deterministic_wire_bytes(self):
        a = encode({"b": 1, "a": {"z": 2, "y": 3}})
        b = encode({"a": {"y": 3, "z": 2}, "b": 1})
        assert a == b
        assert a.endswith(b"\n")
        assert b" " not in a, "compact separators"

    def test_round_trip(self):
        message = {"op": "submit", "id": "j1",
                   "job": {"kind": "sweep", "params": {"kernels": ["SB1"]}}}
        assert decode(encode(message)) == message

    def test_one_line_per_message(self):
        assert encode({"x": 1}).count(b"\n") == 1


class TestDecode:
    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as info:
            decode(b"{nope\n")
        assert info.value.code == "bad-request"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")

    def test_rejects_bad_encoding(self):
        with pytest.raises(ProtocolError):
            decode(b"\xff\xfe\n")


class TestCheckOp:
    def test_known_ops(self):
        for op in OPS:
            assert check_op({"op": op}) == op

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as info:
            check_op({"op": "fandango"})
        assert info.value.code == "bad-request"

    def test_missing_op(self):
        with pytest.raises(ProtocolError):
            check_op({"id": "j1"})


class TestShapes:
    def test_protocol_version_string(self):
        assert PROTOCOL == "repro.serve/1"

    def test_error_codes_closed_set(self):
        assert "quota-exceeded" in ERROR_CODES
        assert "queue-full" in ERROR_CODES
        assert "shutting-down" in ERROR_CODES
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)

    def test_rejection_shape(self):
        event = rejection("j9", "queue-full", "no room")
        assert event["event"] == "rejected"
        assert event["id"] == "j9"
        assert event["code"] == "queue-full"
        assert event["code"] in ERROR_CODES
        json.dumps(event)  # JSON-able

    def test_rejection_code_must_be_typed(self):
        with pytest.raises(AssertionError):
            rejection("j1", "not-a-code", "boom")

    def test_events_cover_lifecycle(self):
        for name in ("hello", "accepted", "task", "done", "rejected",
                     "error", "pong", "metrics", "bye"):
            assert name in EVENTS
