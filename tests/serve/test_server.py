"""End-to-end tests of the job server over real sockets.

Each test boots a :class:`~repro.serve.ServerThread` (a real asyncio
server with a real worker pool) and drives it with
:class:`~repro.serve.ServeClient`.  The headline contracts:

* a figure sweep served over the socket is **bit-identical** to a
  serial ``repro.evaluation`` run — rows and (deterministic) metrics —
  including when a worker is killed mid-run (chaos injection);
* admission is bounded and **typed**: quota and queue-full pressure
  reject with machine-readable codes (or block, per config), never
  stall silently;
* graceful shutdown drains in-flight jobs and folds retiring workers'
  metrics snapshots before the process exits.
"""

import json
import time
import urllib.request

import pytest

from repro.evaluation.parallel import ParallelRunner, SweepTask
from repro.kernels import ALL_BUILDERS
from repro.obs import MetricsRegistry, use_registry
from repro.scheduler import worker as scheduler_worker
from repro.serve import (
    JobRejected,
    ServeClient,
    ServerConfig,
    ServerThread,
)

#: metric-name fragments whose values depend on wall time (mirrors
#: tests/evaluation/test_metrics_aggregation.py)
TIME_DEPENDENT = ("seconds", "per_second", "utilization")

SWEEP_KERNELS = ["SB1", "SB2"]
SWEEP_SIZES = [8, 16]
SWEEP_PARAMS = {"kernels": SWEEP_KERNELS, "block_sizes": SWEEP_SIZES,
                "grid_dim": 1, "seed": 7}

_SERIAL = {}


def strip_time_dependent(snapshot):
    snapshot = json.loads(json.dumps(snapshot))
    for kind in ("counters", "gauges", "histograms"):
        snapshot[kind] = {
            name: data for name, data in snapshot[kind].items()
            if not any(fragment in name for fragment in TIME_DEPENDENT)}
    return snapshot


def serial_sweep():
    """Serial-run reference rows + metrics snapshot (memoized)."""
    if not _SERIAL:
        tasks = [SweepTask(kernel=name, builder=ALL_BUILDERS[name],
                           block_size=size, grid_dim=1, seed=7, metrics=True)
                 for name in SWEEP_KERNELS for size in SWEEP_SIZES]
        registry = MetricsRegistry()
        with use_registry(registry):
            results = ParallelRunner(workers=1).run(tasks)
        assert all(r.ok for r in results)
        _SERIAL["rows"] = [{
            "kernel": r.kernel, "block_size": r.block_size,
            "speedup": r.comparison.speedup,
            "baseline_cycles": r.comparison.baseline.cycles,
            "cfm_cycles": r.comparison.melded.cycles,
            "melds": r.comparison.melds,
        } for r in results]
        _SERIAL["metrics"] = registry.snapshot()
    return _SERIAL["rows"], _SERIAL["metrics"]


@pytest.fixture(autouse=True)
def _clean_chaos():
    scheduler_worker._TEST_WORKER_CHAOS.clear()
    yield
    scheduler_worker._TEST_WORKER_CHAOS.clear()


class TestLifecycle:
    def test_hello_announces_limits(self):
        config = ServerConfig(workers=1, queue_limit=9, client_quota=5,
                              when_full="block")
        with ServerThread(config) as address:
            with ServeClient(*address) as client:
                assert client.hello["protocol"] == "repro.serve/1"
                assert client.hello["workers"] == 1
                assert client.hello["queue_limit"] == 9
                assert client.hello["client_quota"] == 5
                assert client.hello["when_full"] == "block"

    def test_ping(self):
        with ServerThread(ServerConfig(workers=1)) as address:
            with ServeClient(*address) as client:
                assert client.ping()

    def test_bad_line_is_typed_error_event(self):
        with ServerThread(ServerConfig(workers=1)) as address:
            with ServeClient(*address) as client:
                client._sock.sendall(b"this is not json\n")
                event = client._pump()
                assert event["event"] == "error"
                assert event["code"] == "bad-request"
                # connection survives a bad line
                assert client.ping()

    def test_unknown_op_is_typed_error_event(self):
        with ServerThread(ServerConfig(workers=1)) as address:
            with ServeClient(*address) as client:
                client._write({"op": "fandango"})
                event = client._pump()
                assert event["event"] == "error"
                assert event["code"] == "bad-request"


class TestServedSweepIdentity:
    def test_rows_bit_identical_to_serial(self):
        serial_rows, _ = serial_sweep()
        with ServerThread(ServerConfig(workers=2)) as address:
            with ServeClient(*address) as client:
                done = client.run_job("sweep", SWEEP_PARAMS)
        assert done["ok"]
        assert done["rows"] == serial_rows
        assert done["errors"] == []

    def test_metrics_snapshot_identical_to_serial(self):
        _, serial_metrics = serial_sweep()
        with ServerThread(ServerConfig(workers=2)) as address:
            with ServeClient(*address) as client:
                done = client.run_job("sweep", SWEEP_PARAMS, metrics=True)
        assert strip_time_dependent(done["metrics"]) \
            == strip_time_dependent(serial_metrics)

    def test_identity_not_vacuous(self):
        _, serial_metrics = serial_sweep()
        stripped = strip_time_dependent(serial_metrics)
        assert stripped["counters"] and stripped["histograms"]

    def test_rows_identical_after_worker_killed_mid_run(self):
        """The acceptance-criteria chaos run: a worker dies after
        completing a task but before reporting; rows and deterministic
        metrics still match serial."""
        serial_rows, serial_metrics = serial_sweep()
        scheduler_worker._TEST_WORKER_CHAOS[1] = "exit-after"
        with ServerThread(ServerConfig(workers=2)) as address:
            with ServeClient(*address) as client:
                done = client.run_job("sweep", SWEEP_PARAMS, metrics=True)
        assert done["ok"]
        assert done["rows"] == serial_rows
        assert sum(done["attempts"]) == len(serial_rows) + 1
        served = strip_time_dependent(done["metrics"])
        serial = strip_time_dependent(serial_metrics)
        # the retry itself is (correctly) visible in exactly one place
        retried = served["counters"].pop("repro_eval_tasks_retried_total")
        assert sum(retried["samples"].values()) == 1
        serial["counters"].pop("repro_eval_tasks_retried_total")
        assert served == serial

    def test_streamed_tasks_cover_all_positions(self):
        with ServerThread(ServerConfig(workers=2)) as address:
            with ServeClient(*address) as client:
                events = []
                done = client.run_job("sweep", SWEEP_PARAMS, stream=True,
                                      on_task=events.append)
        positions = [e["position"] for e in events]
        assert sorted(positions) == list(range(len(done["rows"])))
        by_position = {e["position"]: e["row"] for e in events}
        assert [by_position[i] for i in range(len(done["rows"]))] \
            == done["rows"]


class TestAdmission:
    def test_unknown_job_rejected(self):
        with ServerThread(ServerConfig(workers=1)) as address:
            with ServeClient(*address) as client:
                with pytest.raises(JobRejected) as info:
                    client.run_job("bake-bread", {})
                assert info.value.code == "unknown-job"
                assert client.ping()  # connection unharmed

    def test_invalid_params_rejected(self):
        with ServerThread(ServerConfig(workers=1)) as address:
            with ServeClient(*address) as client:
                with pytest.raises(JobRejected) as info:
                    client.run_job("sweep", {"kernels": ["NOPE"]})
                assert info.value.code == "invalid-params"

    def test_quota_exceeded_is_typed_not_a_stall(self):
        config = ServerConfig(workers=1, client_quota=3)
        with ServerThread(config) as address:
            with ServeClient(*address) as client:
                start = time.monotonic()
                with pytest.raises(JobRejected) as info:
                    client.run_job("difftest", {"count": 4})
                assert info.value.code == "quota-exceeded"
                assert time.monotonic() - start < 5
                # within quota still flows
                done = client.run_job("difftest", {"count": 2})
                assert done["ok"]

    def test_queue_full_rejects_when_configured(self):
        config = ServerConfig(workers=1, queue_limit=3, when_full="reject")
        with ServerThread(config) as address:
            with ServeClient(*address) as client:
                with pytest.raises(JobRejected) as info:
                    client.run_job("difftest", {"count": 4})
                assert info.value.code == "queue-full"

    def test_queue_full_blocks_when_configured(self):
        """when_full=block parks the submit until capacity frees; both
        jobs complete, nothing is lost."""
        config = ServerConfig(workers=1, queue_limit=2, when_full="block")
        with ServerThread(config) as address:
            with ServeClient(*address) as client:
                first = client.submit("difftest", {"count": 2})
                second = client.submit("difftest", {"count": 2})
                done_first = client.wait(first)
                done_second = client.wait(second)
        assert done_first["ok"] and done_second["ok"]
        assert [r["seed"] for r in done_first["rows"]] == [0, 1]
        assert [r["seed"] for r in done_second["rows"]] == [0, 1]


class TestShutdown:
    def test_graceful_shutdown_drains_in_flight_jobs(self):
        with ServerThread(ServerConfig(workers=1)) as address:
            with ServeClient(*address) as client:
                job = client.submit("difftest", {"count": 4})
                client.shutdown("graceful")
                with pytest.raises(JobRejected) as info:
                    client.run_job("difftest", {"count": 1})
                assert info.value.code == "shutting-down"
                done = client.wait(job)
        assert done["ok"]
        assert [r["seed"] for r in done["rows"]] == [0, 1, 2, 3]

    def test_artifacts_written_at_shutdown(self, tmp_path):
        trace_file = str(tmp_path / "serve.trace.json")
        prom_file = str(tmp_path / "serve.prom")
        config = ServerConfig(workers=1, trace_file=trace_file,
                              prom_file=prom_file)
        server = ServerThread(config)
        address = server.start()
        try:
            with ServeClient(*address) as client:
                assert client.run_job("difftest", {"count": 2})["ok"]
        finally:
            server.stop()
        trace = json.load(open(trace_file))
        names = [e.get("name", "") for e in trace["traceEvents"]]
        assert any(name.startswith("job:") for name in names)
        prom = open(prom_file).read()
        assert "repro_serve_jobs_total" in prom
        assert "repro_sched_tasks_completed_total" in prom

    def test_recycled_workers_flush_into_server_metrics(self):
        config = ServerConfig(workers=1, recycle_tasks=1)
        with ServerThread(config) as address:
            with ServeClient(*address) as client:
                assert client.run_job("difftest", {"count": 3})["ok"]
                snapshot = client.metrics()["snapshot"]
        families = snapshot["counters"]
        flushed = families.get("repro_sched_worker_tasks_total", {})
        assert sum(flushed.get("samples", {}).values()) >= 2
        recycled = families.get("repro_sched_workers_recycled_total", {})
        assert sum(recycled.get("samples", {}).values()) >= 2


class TestObservability:
    def test_metrics_op_merges_all_layers(self):
        with ServerThread(ServerConfig(workers=1)) as address:
            with ServeClient(*address) as client:
                assert client.run_job("difftest", {"count": 2})["ok"]
                event = client.metrics()
        prom = event["prom"]
        assert "repro_serve_jobs_total" in prom
        assert "repro_serve_tasks_total" in prom
        assert "repro_sched_tasks_completed_total" in prom
        counters = event["snapshot"]["counters"]
        tasks = counters["repro_serve_tasks_total"]["samples"]
        assert sum(tasks.values()) == 2

    def test_prometheus_http_listener(self):
        server = ServerThread(ServerConfig(workers=1, prom_port=0))
        address = server.start()
        try:
            with ServeClient(*address) as client:
                assert client.run_job("difftest", {"count": 1})["ok"]
            host, port = server.server.prom_address
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10).read().decode()
        finally:
            server.stop()
        assert "repro_serve_jobs_total" in body
        assert body.startswith("# ") or "repro_" in body.splitlines()[0]
