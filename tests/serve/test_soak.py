"""Randomized job-mix soak through a live server (satellite: soak).

Seeded random mixes of compile + sweep + difftest + lint jobs, pipelined
from concurrent clients against a 2-4 worker server.  Properties:

* per-job result ordering is deterministic — every job's rows equal the
  rows the same job computes inline (position order, not completion
  order), however the pool interleaved the mix;
* no job and no task is lost or duplicated;
* quota pressure rejects with a typed code instead of stalling, and
  rejected clients can keep submitting;
* ``when_full="block"`` backpressure parks submits without losing work.

Marked ``slow``: the CI budget for this file is ~30s.
"""

import random
import threading

import pytest

from repro.scheduler import TaskContext
from repro.serve import (
    JobRejected,
    ServeClient,
    ServerConfig,
    ServerThread,
    make_job,
)

pytestmark = pytest.mark.slow

#: the job menu: cheap synthetic-kernel jobs only (SB* at block 8-16
#: simulate in milliseconds; the real figure kernels are minutes)
MENU = [
    ("sweep", {"kernels": ["SB1"], "block_sizes": [8], "grid_dim": 1,
               "seed": 7}),
    ("sweep", {"kernels": ["SB2"], "block_sizes": [8, 16], "grid_dim": 1,
               "seed": 7}),
    ("compile", {"kernels": ["SB1", "SB2"], "level": "o3-cfm",
                 "block_size": 16, "grid_dim": 1}),
    ("launch", {"kernels": ["SB1"], "block_size": 16, "grid_dim": 1}),
    ("difftest", {"count": 2}),
    ("difftest", {"seeds": [3, 1]}),
    ("lint", {"kernels": ["SB1"], "levels": ["o3-cfm"], "block_size": 16,
              "grid_dim": 1}),
]

_EXPECTED = {}


def expected_rows(menu_index):
    """What the job at MENU[menu_index] computes, run inline (memoized)."""
    if menu_index not in _EXPECTED:
        kind, params = MENU[menu_index]
        spec = make_job(kind, dict(params))
        rows = []
        for position, task in enumerate(spec.tasks()):
            ctx = TaskContext(index=position, attempt=1, worker=0)
            rows.append(spec.row(task.fn(task.payload, ctx)))
        _EXPECTED[menu_index] = rows
    return _EXPECTED[menu_index]


def _drive(address, rng, job_count, failures):
    """One client: pipeline a random mix, then wait for each in order."""
    try:
        with ServeClient(*address) as client:
            picks = [rng.randrange(len(MENU)) for _ in range(job_count)]
            job_ids = [client.submit(*MENU[pick]) for pick in picks]
            for pick, job_id in zip(picks, job_ids):
                done = client.wait(job_id)
                assert done["ok"], done
                assert done["rows"] == expected_rows(pick), \
                    f"job {MENU[pick]} rows diverged"
    except Exception as exc:  # pragma: no cover - surfaced by the test
        failures.append(exc)


@pytest.mark.parametrize("seed,workers", [(0xC0FFEE, 2), (2022, 3),
                                          (402, 4)])
def test_randomized_job_mix(seed, workers):
    rng = random.Random(seed)
    for index in range(len(MENU)):
        expected_rows(index)  # warm the inline reference before timing
    config = ServerConfig(workers=workers, queue_limit=64)
    failures = []
    with ServerThread(config) as address:
        threads = [
            threading.Thread(
                target=_drive,
                args=(address, random.Random(rng.random()), 6, failures))
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not any(t.is_alive() for t in threads), "client stalled"
        # and the server still answers after the storm
        with ServeClient(*address) as client:
            snapshot = client.metrics()["snapshot"]
    assert failures == []
    counters = snapshot["counters"]
    jobs = sum(counters["repro_serve_jobs_total"]["samples"].values())
    assert jobs == 12
    tasks = counters["repro_serve_tasks_total"]["samples"]
    assert tasks.get('outcome="error"', 0) == 0


def test_quota_hammer_rejects_without_stalling():
    """A client bursting past its quota gets typed rejections and can
    keep working; nothing it submitted is lost."""
    config = ServerConfig(workers=2, client_quota=4, queue_limit=64)
    with ServerThread(config) as address:
        with ServeClient(*address) as client:
            rejected = completed = 0
            for _ in range(8):
                try:
                    done = client.run_job("difftest", {"count": 3})
                except JobRejected as exc:
                    assert exc.code == "quota-exceeded"
                    rejected += 1
                else:
                    assert done["ok"]
                    assert [r["seed"] for r in done["rows"]] == [0, 1, 2]
                    completed += 1
            # run_job waits each job out, so the quota never trips here;
            # now pipeline two over-quota jobs at once and expect one
            # typed rejection, not a stall
            assert completed == 8 and rejected == 0
            first = client.submit("difftest", {"count": 3})
            second = client.submit("difftest", {"count": 3})
            outcomes = {"done": 0, "rejected": 0}
            for job_id in (first, second):
                try:
                    client.wait(job_id)
                    outcomes["done"] += 1
                except JobRejected as exc:
                    assert exc.code == "quota-exceeded"
                    outcomes["rejected"] += 1
            assert outcomes["done"] == 1 and outcomes["rejected"] == 1
            # quota frees once the surviving job settles
            assert client.run_job("difftest", {"count": 3})["ok"]


def test_backpressure_block_mode_under_mix():
    """Tiny queue + block mode: a pipelined burst completes in full,
    in submit order per client, with nothing dropped."""
    config = ServerConfig(workers=2, queue_limit=3, when_full="block",
                          client_quota=None)
    picks = [4, 5, 0, 4, 5]  # difftest/difftest/sweep/difftest/difftest
    for pick in picks:
        expected_rows(pick)
    with ServerThread(config) as address:
        with ServeClient(*address) as client:
            job_ids = [client.submit(*MENU[pick]) for pick in picks]
            for pick, job_id in zip(picks, job_ids):
                done = client.wait(job_id)
                assert done["ok"]
                assert done["rows"] == expected_rows(pick)
