"""Job-spec tests: param validation, task expansion, row shapes.

Task functions run inline here (no server, no pool) — the wire and
pool behavior lives in ``test_server.py``.
"""

import pytest

from repro.scheduler import TaskContext
from repro.serve import ProtocolError, make_job
from repro.serve.jobs import MAX_TASKS_PER_JOB, JobParamError


def _ctx(index=0, attempt=1):
    return TaskContext(index=index, attempt=attempt, worker=0)


class TestMakeJob:
    def test_unknown_kind(self):
        with pytest.raises(ProtocolError) as info:
            make_job("bake-bread", {})
        assert info.value.code == "unknown-job"

    def test_invalid_params_are_typed(self):
        with pytest.raises(ProtocolError) as info:
            make_job("sweep", {"kernels": ["NOPE"]})
        assert info.value.code == "invalid-params"

    def test_kernels_required(self):
        with pytest.raises(JobParamError):
            make_job("sweep", {})

    def test_param_type_checked(self):
        with pytest.raises(JobParamError):
            make_job("sweep", {"kernels": ["SB1"], "seed": "tuesday"})

    def test_job_size_cap(self):
        with pytest.raises(JobParamError) as info:
            make_job("difftest", {"count": MAX_TASKS_PER_JOB + 1})
        assert "cap" in str(info.value)

    def test_zero_tasks_rejected(self):
        with pytest.raises(JobParamError):
            make_job("difftest", {"seeds": []})


class TestSweepJob:
    def test_default_block_sizes_follow_figures(self):
        from repro.evaluation.experiments import REAL_BLOCK_SIZES
        job = make_job("sweep", {"kernels": ["LUD"]})
        assert job.pairs == [("LUD", s) for s in REAL_BLOCK_SIZES["LUD"]]

    def test_block_size_list_applies_to_all(self):
        job = make_job("sweep", {"kernels": ["SB1", "SB2"],
                                 "block_sizes": [8, 16]})
        assert job.pairs == [("SB1", 8), ("SB1", 16),
                             ("SB2", 8), ("SB2", 16)]

    def test_block_size_dict_must_cover_kernels(self):
        with pytest.raises(JobParamError):
            make_job("sweep", {"kernels": ["SB1", "SB2"],
                               "block_sizes": {"SB1": [8]}})

    def test_tasks_carry_job_relative_positions(self):
        job = make_job("sweep", {"kernels": ["SB1"], "block_sizes": [8, 16]})
        tasks = job.tasks()
        assert [t.payload["position"] for t in tasks] == [0, 1]

    def test_task_runs_and_row_matches_serial(self):
        from repro.evaluation import SweepTask, run_task
        from repro.kernels import build_sb1
        job = make_job("sweep", {"kernels": ["SB1"], "block_sizes": [16],
                                 "grid_dim": 1, "seed": 7})
        (task,) = job.tasks()
        result = task.fn(task.payload, _ctx())
        row = job.row(result)
        serial = run_task(SweepTask(kernel="SB1", builder=build_sb1,
                                    block_size=16, grid_dim=1, seed=7),
                          index=0)
        assert row == {
            "kernel": "SB1", "block_size": 16,
            "speedup": serial.comparison.speedup,
            "baseline_cycles": serial.comparison.baseline.cycles,
            "cfm_cycles": serial.comparison.melded.cycles,
            "melds": serial.comparison.melds,
        }


class TestCompileJob:
    def test_level_validated(self):
        with pytest.raises(JobParamError):
            make_job("compile", {"kernels": ["SB1"], "level": "o9"})

    def test_row_shape(self):
        job = make_job("compile", {"kernels": ["SB1"], "level": "o3-cfm",
                                   "block_size": 16, "grid_dim": 1})
        (task,) = job.tasks()
        row = job.row(task.fn(task.payload, _ctx()))
        assert row["kernel"] == "SB1" and row["level"] == "o3-cfm"
        assert row["blocks"] > 0 and row["instructions"] > 0
        assert row["melds"] >= 1  # SB1 is the canonical meldable kernel


class TestLaunchJob:
    def test_row_has_divergence_counters(self):
        job = make_job("launch", {"kernels": ["SB1"], "block_size": 16,
                                  "grid_dim": 1})
        (task,) = job.tasks()
        row = job.row(task.fn(task.payload, _ctx()))
        assert row["cycles"] > 0
        assert row["branches"] >= row["divergent_branches"] >= 0


class TestDifftestJob:
    def test_count_expands_to_seed_range(self):
        job = make_job("difftest", {"count": 3, "start": 5})
        assert [t.payload["seed"] for t in job.tasks()] == [5, 6, 7]

    def test_explicit_seeds(self):
        job = make_job("difftest", {"seeds": [9, 2, 4]})
        assert [t.payload["seed"] for t in job.tasks()] == [9, 2, 4]

    def test_oracle_row(self):
        job = make_job("difftest", {"seeds": [0]})
        (task,) = job.tasks()
        row = job.row(task.fn(task.payload, _ctx()))
        assert row == {"seed": 0, "ok": True, "failures": []}


class TestLintJob:
    def test_defaults_cover_all_levels(self):
        from repro.lint import LINT_LEVELS
        job = make_job("lint", {"kernels": ["SB1"]})
        assert [t.payload["level"] for t in job.tasks()] \
            == list(LINT_LEVELS)

    def test_row_shape(self):
        job = make_job("lint", {"kernels": ["SB1"], "levels": ["o3-cfm"],
                                "block_size": 16, "grid_dim": 1})
        (task,) = job.tasks()
        row = job.row(task.fn(task.payload, _ctx()))
        assert row["kernel"] == "SB1" and row["level"] == "o3-cfm"
        assert row["ok"] is True and row["diagnostics"] == []
