"""Tests for the FP_B / FP_S / FP_I profitability metrics (§IV-C)."""

from repro.analysis.latency import DEFAULT_LATENCY_MODEL, LatencyModel
from repro.core import (
    block_profitability,
    estimated_selects,
    instruction_profitability,
    instructions_match,
    meldable_instructions,
    subgraph_profitability,
)

from tests.support import parse


def blocks_of(text):
    f = parse(text)
    return f


class TestBlockProfitability:
    def test_identical_profile_scores_half(self):
        f = parse("""
define void @k(i32 %x, i32 %y) {
entry:
  br label %a
a:
  %a1 = add i32 %x, 1
  %a2 = mul i32 %a1, 2
  br label %b
b:
  %b1 = add i32 %y, 3
  %b2 = mul i32 %b1, 4
  br label %c
c:
  ret void
}
""")
        a, b = f.block_by_name("a"), f.block_by_name("b")
        # "two basic blocks with identical opcode frequency profile will
        # have a profitability value 0.5"
        assert block_profitability(a, b) == 0.5

    def test_disjoint_opcodes_score_zero(self):
        f = parse("""
define void @k(i32 %x, i32 %y) {
entry:
  br label %a
a:
  %a1 = add i32 %x, 1
  br label %b
b:
  %b1 = xor i32 %y, 3
  br label %c
c:
  ret void
}
""")
        a, b = f.block_by_name("a"), f.block_by_name("b")
        assert block_profitability(a, b) == 0.0

    def test_empty_blocks_score_zero(self):
        # Critical for Algorithm-1 termination: branch-only blocks must
        # never look profitable (the B_T'/B_F' fixpoint hazard).
        f = parse("""
define void @k() {
entry:
  br label %a
a:
  br label %b
b:
  br label %c
c:
  ret void
}
""")
        a, b = f.block_by_name("a"), f.block_by_name("b")
        assert block_profitability(a, b) == 0.0

    def test_memory_heavy_blocks_weighted_by_latency(self):
        f = parse("""
@sh = shared [64 x i32]

define void @k(i32 %x, i32 %y) {
entry:
  br label %a
a:
  %p1 = getelementptr i32, i32 addrspace(3)* @sh, i32 %x
  %v1 = load i32, i32 addrspace(3)* %p1
  %a1 = add i32 %v1, 1
  br label %b
b:
  %p2 = getelementptr i32, i32 addrspace(3)* @sh, i32 %y
  %v2 = load i32, i32 addrspace(3)* %p2
  %b1 = xor i32 %v2, 1
  br label %c
c:
  ret void
}
""")
        a, b = f.block_by_name("a"), f.block_by_name("b")
        # gep+load align, add/xor do not: profitability strictly between
        # 0 and 0.5, and dominated by the load latency.
        score = block_profitability(a, b)
        assert 0.3 < score < 0.5


class TestInstructionMatch:
    def test_same_opcode_matches(self):
        f = parse("""
define void @k(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %x, 2
  %m = mul i32 %x, 3
  ret void
}
""")
        a, b, m = f.entry.instructions[:3]
        assert instructions_match(a, b)
        assert not instructions_match(a, m)
        assert not instructions_match(a, a)  # self-match is meaningless

    def test_estimated_selects_counts_differing_operands(self):
        f = parse("""
define void @k(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %x, 2
  %c = add i32 %y, 1
  %d = add i32 %x, 1
  ret void
}
""")
        a, b, c, d = f.entry.instructions[:4]
        assert estimated_selects(a, b) == 1  # constants differ
        assert estimated_selects(a, c) == 1  # lhs differs
        assert estimated_selects(b, c) == 2
        assert estimated_selects(a, d) == 0  # equal constants, same value


class TestInstructionProfitability:
    def test_unmatched_scores_zero(self):
        f = parse("""
define void @k(i32 %x) {
entry:
  %a = add i32 %x, 1
  %m = mul i32 %x, 3
  ret void
}
""")
        a, m = f.entry.instructions[:2]
        assert instruction_profitability(a, m) == 0.0

    def test_match_scores_latency_minus_selects(self):
        f = parse("""
define void @k(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %y, 2
  ret void
}
""")
        a, b = f.entry.instructions[:2]
        lat = DEFAULT_LATENCY_MODEL
        expected = lat.latency(a) - 2 * lat.select_latency
        assert instruction_profitability(a, b) == expected

    def test_meldable_loads_score_high(self):
        f = parse("""
@sh = shared [64 x i32]

define void @k(i32 %x, i32 %y) {
entry:
  %p1 = getelementptr i32, i32 addrspace(3)* @sh, i32 %x
  %p2 = getelementptr i32, i32 addrspace(3)* @sh, i32 %y
  %v1 = load i32, i32 addrspace(3)* %p1
  %v2 = load i32, i32 addrspace(3)* %p2
  ret void
}
""")
        v1, v2 = f.entry.instructions[2:4]
        # §VI-D: melding LDS ops is the big win — one select vs 32 cycles.
        assert instruction_profitability(v1, v2) > \
            DEFAULT_LATENCY_MODEL.select_latency


class TestSubgraphProfitability:
    def test_weighted_average(self):
        f = parse("""
define void @k(i32 %x, i32 %y) {
entry:
  br label %a
a:
  %a1 = add i32 %x, 1
  br label %b
b:
  %b1 = add i32 %y, 3
  br label %c
c:
  %c1 = and i32 %x, 1
  br label %d
d:
  %d1 = xor i32 %y, 3
  br label %e
e:
  ret void
}
""")
        a, b = f.block_by_name("a"), f.block_by_name("b")
        c, d = f.block_by_name("c"), f.block_by_name("d")
        # (a,b) identical -> 0.5; (c,d) disjoint -> 0.0; equal latencies
        # -> mean 0.25.
        assert subgraph_profitability([(a, b), (c, d)]) == 0.25

    def test_empty_mapping(self):
        assert subgraph_profitability([]) == 0.0
