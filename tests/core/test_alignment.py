"""Tests for the generic alignment algorithms, including a brute-force
cross-check of Needleman–Wunsch optimality on small sequences."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.alignment import needleman_wunsch, smith_waterman


def eq_score(a, b):
    return 3.0 if a == b else float("-inf")


def sim_score(a, b):
    return 3.0 if a == b else -1.0


class TestNeedlemanWunsch:
    def test_identical_sequences_fully_match(self):
        result = needleman_wunsch("abcd", "abcd", eq_score, gap_open=1.0)
        assert result.matches == list(zip("abcd", "abcd"))
        assert result.num_gaps == 0
        assert result.score == 12.0

    def test_empty_sequences(self):
        result = needleman_wunsch([], [], eq_score, gap_open=1.0)
        assert result.pairs == []
        assert result.score == 0.0

    def test_one_empty_sequence_all_gaps(self):
        result = needleman_wunsch("ab", "", eq_score, gap_open=1.0, gap_extend=0.5)
        assert result.num_gaps == 2
        assert result.score == -1.5  # open once, extend once

    def test_gap_open_zero_extension_constant_cost(self):
        # Affine with extend=0: a long gap costs the same as a short one —
        # the paper's "two branches per gap, independent of length".
        short = needleman_wunsch("ax", "a", eq_score, gap_open=2.0, gap_extend=0.0)
        long_ = needleman_wunsch("axxxx", "a", eq_score, gap_open=2.0, gap_extend=0.0)
        assert short.score == 3.0 - 2.0
        assert long_.score == 3.0 - 2.0

    def test_forbidden_matches_never_aligned(self):
        result = needleman_wunsch("ab", "ba", eq_score, gap_open=0.1,
                                  min_match_score=0.0)
        for pair in result.pairs:
            if pair.is_match:
                assert pair.left == pair.right

    def test_order_preserved(self):
        result = needleman_wunsch([1, 5, 2, 6], [5, 6], sim_score, gap_open=1.0)
        matches = result.matches
        assert matches == [(5, 5), (6, 6)]

    def test_interleaved_alignment(self):
        result = needleman_wunsch("xaybz", "ab", eq_score, gap_open=0.5)
        assert ("a", "a") in result.matches
        assert ("b", "b") in result.matches


def _brute_force_best(seq_a, seq_b, score, gap_open):
    """Enumerate all order-preserving match sets; affine gaps with
    extend=0 ⇒ each maximal gap run costs gap_open once."""
    best = float("-inf")
    n, m = len(seq_a), len(seq_b)
    indices_a = list(range(n))
    for k in range(min(n, m) + 1):
        for picks_a in itertools.combinations(range(n), k):
            for picks_b in itertools.combinations(range(m), k):
                total = 0.0
                ok = True
                for ia, ib in zip(picks_a, picks_b):
                    s = score(seq_a[ia], seq_b[ib])
                    if s == float("-inf"):
                        ok = False
                        break
                    total += s
                if not ok:
                    continue
                total -= gap_open * _gap_runs(picks_a, picks_b, n, m)
                best = max(best, total)
    return best


def _gap_runs(picks_a, picks_b, n, m):
    """Number of maximal gap runs in the alignment implied by the picks.
    Runs in a and b between consecutive matches merge into a single
    alignment region but remain separate runs (a-side then b-side)."""
    runs = 0
    prev_a, prev_b = -1, -1
    for ia, ib in zip(picks_a, picks_b):
        if ia - prev_a > 1:
            runs += 1
        if ib - prev_b > 1:
            runs += 1
        prev_a, prev_b = ia, ib
    if n - 1 - prev_a > 0:
        runs += 1
    if m - 1 - prev_b > 0:
        runs += 1
    return runs


@given(st.lists(st.integers(0, 3), max_size=5), st.lists(st.integers(0, 3), max_size=5))
@settings(max_examples=60, deadline=None)
def test_nw_matches_brute_force(seq_a, seq_b):
    gap = 1.0
    result = needleman_wunsch(seq_a, seq_b, sim_score, gap_open=gap,
                              gap_extend=0.0, min_match_score=-1e18)
    brute = _brute_force_best(seq_a, seq_b, sim_score, gap)
    if not seq_a and not seq_b:
        assert result.score == 0.0
        return
    assert abs(result.score - brute) < 1e-9


@given(st.lists(st.integers(0, 3), max_size=6), st.lists(st.integers(0, 3), max_size=6))
@settings(max_examples=60, deadline=None)
def test_nw_traceback_consistent_with_score(seq_a, seq_b):
    """Recomputing the score from the traceback must reproduce it."""
    gap_open, gap_extend = 1.0, 0.25
    result = needleman_wunsch(seq_a, seq_b, sim_score, gap_open=gap_open,
                              gap_extend=gap_extend, min_match_score=-1e18)
    total = 0.0
    prev_gap_side = None
    for pair in result.pairs:
        if pair.is_match:
            total += sim_score(pair.left, pair.right)
            prev_gap_side = None
        else:
            side = "a" if pair.left is not None else "b"
            total += -(gap_extend if side == prev_gap_side else gap_open)
            prev_gap_side = side
    assert abs(total - result.score) < 1e-9


class TestSmithWaterman:
    def test_local_alignment_ignores_flanks(self):
        result = smith_waterman([9, 1, 2, 3, 8], [7, 1, 2, 3, 6], sim_score)
        assert result.matches == [(1, 1), (2, 2), (3, 3)]

    def test_no_similarity_empty_alignment(self):
        result = smith_waterman([1, 2], [3, 4], lambda a, b: -1.0)
        assert result.pairs == []
        assert result.score == 0.0
