"""Tests for the melding code generation (Algorithm 2) and unpredication,
including differential execution against the unmelded kernel."""

import pytest

from repro.core import CFMConfig, Side, run_cfm
from repro.ir import Branch, Module, Select, Store, print_function, verify_function
from repro.simt import run_kernel

from tests.support import build_diamond, parse


def run_on_sim(f, buffers, block_dim=8, module=None):
    module = module or Module("t")
    if f.name not in module.functions:
        module.add_function(f)
    out, metrics = run_kernel(module, f.name, 1, block_dim,
                              buffers={k: list(v) for k, v in buffers.items()})
    return out, metrics


class TestDiamondMeld:
    def test_identical_diamond_fully_melds(self):
        f = build_diamond(identical=True)
        stats = run_cfm(f)
        verify_function(f)
        assert len(stats.melds) == 1
        record = stats.melds[0]
        assert record.instructions_unaligned == 0
        # Only the pointer operand differs -> exactly one select.
        assert record.selects_inserted == 1
        # The divergent branch is gone.
        assert not any(
            b.terminator.is_conditional for b in f.blocks
            if isinstance(b.terminator, Branch))

    def test_distinct_diamond_melds_with_gaps(self):
        f = build_diamond(identical=False)
        stats = run_cfm(f)
        verify_function(f)
        assert len(stats.melds) == 1
        assert stats.melds[0].instructions_unaligned > 0

    def test_melded_diamond_computes_same(self):
        data_a = list(range(10, 18))
        data_b = list(range(50, 58))
        base = build_diamond(identical=False)
        out_base, _ = run_on_sim(base, {"a": data_a, "b": data_b})

        melded = build_diamond(identical=False)
        run_cfm(melded)
        out_melded, _ = run_on_sim(melded, {"a": data_a, "b": data_b})
        assert out_base == out_melded

    def test_meld_reduces_cycles_and_improves_alu(self):
        data = {"a": list(range(8)), "b": list(range(100, 108))}
        base = build_diamond(identical=True)
        _, metrics_base = run_on_sim(base, data)
        melded = build_diamond(identical=True)
        run_cfm(melded)
        _, metrics_melded = run_on_sim(melded, data)
        assert metrics_melded.cycles < metrics_base.cycles
        assert metrics_melded.alu_utilization > metrics_base.alu_utilization


class TestSelectPlacement:
    def test_equal_operands_share_without_select(self):
        f = parse("""
define void @k(i32 addrspace(1)* %data, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  %pa = getelementptr i32, i32 addrspace(1)* %data, i32 %tid
  %va = load i32, i32 addrspace(1)* %pa
  %ra = add i32 %va, 1
  store i32 %ra, i32 addrspace(1)* %pa
  br label %m
b:
  %pb = getelementptr i32, i32 addrspace(1)* %data, i32 %tid
  %vb = load i32, i32 addrspace(1)* %pb
  %rb = add i32 %vb, 1
  store i32 %rb, i32 addrspace(1)* %pb
  br label %m
m:
  ret void
}
""")
        stats = run_cfm(f)
        verify_function(f)
        assert len(stats.melds) == 1
        # Both sides compute on identical operands: no selects at all.
        assert stats.melds[0].selects_inserted == 0

    def test_condition_reused_for_selects(self):
        f = build_diamond(identical=True)
        cond = [i for i in f.entry if i.name == "cond"][0]
        run_cfm(f)
        selects = [i for i in f.instructions() if isinstance(i, Select)]
        assert selects
        for select in selects:
            assert select.condition is cond


class TestComplexMeld:
    COMPLEX = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t, label %f
t:
  %tp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %tv = load i32, i32 addrspace(1)* %tp
  %tc = icmp sgt i32 %tv, 100
  br i1 %tc, label %tt, label %te
tt:
  store i32 0, i32 addrspace(1)* %tp
  br label %te
te:
  br label %m
f:
  %fp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %fv = load i32, i32 addrspace(1)* %fp
  %fc = icmp sgt i32 %fv, 100
  br i1 %fc, label %ft, label %fe
ft:
  store i32 0, i32 addrspace(1)* %fp
  br label %fe
fe:
  br label %m
m:
  ret void
}
"""

    def test_if_then_regions_meld(self):
        f = parse(self.COMPLEX)
        stats = run_cfm(f)
        verify_function(f)
        assert len(stats.melds) == 1
        assert stats.melds[0].blocks_melded >= 3

    def test_complex_meld_preserves_semantics(self):
        data = {"a": [5, 200, 99, 150, 7, 101, 300, 100],
                "b": [150, 2, 250, 80, 120, 90, 40, 101]}
        base = parse(self.COMPLEX)
        melded = parse(self.COMPLEX)
        run_cfm(melded)
        verify_function(melded)

        m1, m2 = Module("m1"), Module("m2")
        m1.add_function(base)
        m2.add_function(melded)
        out1, _ = run_kernel(m1, "k", 1, 8, buffers=dict(
            a=list(data["a"]), b=list(data["b"])), scalars={"n": 4})
        out2, _ = run_kernel(m2, "k", 1, 8, buffers=dict(
            a=list(data["a"]), b=list(data["b"])), scalars={"n": 4})
        assert out1 == out2

    def test_threshold_blocks_melding(self):
        f = parse(self.COMPLEX)
        stats = run_cfm(f, CFMConfig(profitability_threshold=0.99))
        assert not stats.melds
        assert stats.pairs_rejected_unprofitable > 0


class TestAsymmetricPaths:
    """Melding when the pair sits at different positions on each path."""

    ASYM = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %pre, label %f
pre:
  %zp = getelementptr i32, i32 addrspace(1)* %a, i32 0
  %z = load i32, i32 addrspace(1)* %zp
  br label %t
t:
  %tp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %tv = load i32, i32 addrspace(1)* %tp
  %tr = add i32 %tv, 1
  store i32 %tr, i32 addrspace(1)* %tp
  br label %m
f:
  %fp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %fv = load i32, i32 addrspace(1)* %fp
  %fr = add i32 %fv, 1
  store i32 %fr, i32 addrspace(1)* %fp
  br label %m
m:
  ret void
}
"""

    def test_second_true_subgraph_melds_with_first_false(self):
        f = parse(self.ASYM)
        stats = run_cfm(f)
        verify_function(f)
        assert len(stats.melds) == 1
        assert stats.melds[0].true_entry == "t"
        assert stats.melds[0].false_entry == "f"

    def test_asymmetric_meld_preserves_semantics(self):
        base = parse(self.ASYM)
        melded = parse(self.ASYM)
        run_cfm(melded)

        m1, m2 = Module("m1"), Module("m2")
        m1.add_function(base)
        m2.add_function(melded)
        buffers = {"a": list(range(8)), "b": list(range(20, 28))}
        out1, _ = run_kernel(m1, "k", 1, 8,
                             buffers={k: list(v) for k, v in buffers.items()},
                             scalars={"n": 5})
        out2, _ = run_kernel(m2, "k", 1, 8,
                             buffers={k: list(v) for k, v in buffers.items()},
                             scalars={"n": 5})
        assert out1 == out2


class TestUnpredication:
    GAPPY = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t, label %f
t:
  %tp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %tv = load i32, i32 addrspace(1)* %tp
  %tr = add i32 %tv, 1
  store i32 %tr, i32 addrspace(1)* %tp
  br label %m
f:
  %fp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %fv = load i32, i32 addrspace(1)* %fp
  %f1 = mul i32 %fv, 3
  %f2 = xor i32 %f1, 5
  %fr = sub i32 %f2, 1
  store i32 %fr, i32 addrspace(1)* %fp
  br label %m
m:
  ret void
}
"""

    def test_gap_instructions_guarded(self):
        f = parse(self.GAPPY)
        stats = run_cfm(f)
        verify_function(f)
        assert stats.melds
        assert stats.melds[0].instructions_unaligned > 0
        # Unpredication reintroduces conditional flow for the gap runs.
        conditionals = [b for b in f.blocks
                        if isinstance(b.terminator, Branch)
                        and b.terminator.is_conditional]
        assert conditionals

    def test_gappy_meld_preserves_semantics(self):
        base = parse(self.GAPPY)
        melded = parse(self.GAPPY)
        run_cfm(melded)
        m1, m2 = Module("m1"), Module("m2")
        m1.add_function(base)
        m2.add_function(melded)
        buffers = {"a": list(range(8)), "b": list(range(40, 48))}
        out1, _ = run_kernel(m1, "k", 1, 8,
                             buffers={k: list(v) for k, v in buffers.items()},
                             scalars={"n": 3})
        out2, _ = run_kernel(m2, "k", 1, 8,
                             buffers={k: list(v) for k, v in buffers.items()},
                             scalars={"n": 3})
        assert out1 == out2

    def test_unpredication_disabled_still_correct_for_pure_gaps(self):
        # With unpredication restricted to side-effecting runs, pure ALU
        # gaps execute for everyone; results must be unchanged.
        base = parse(self.GAPPY)
        melded = parse(self.GAPPY)
        run_cfm(melded, CFMConfig(split_pure_runs=False))
        verify_function(melded)
        m1, m2 = Module("m1"), Module("m2")
        m1.add_function(base)
        m2.add_function(melded)
        buffers = {"a": list(range(8)), "b": list(range(40, 48))}
        out1, _ = run_kernel(m1, "k", 1, 8,
                             buffers={k: list(v) for k, v in buffers.items()},
                             scalars={"n": 3})
        out2, _ = run_kernel(m2, "k", 1, 8,
                             buffers={k: list(v) for k, v in buffers.items()},
                             scalars={"n": 3})
        assert out1 == out2


class TestStatsSurfaces:
    def test_cfm_stats_aggregates(self):
        from repro.core import run_cfm

        f = build_diamond(identical=True)
        stats = run_cfm(f)
        assert stats.changed
        assert stats.iterations >= 2  # one meld + one fixpoint check
        assert stats.total_selects == sum(m.selects_inserted for m in stats.melds)
        assert stats.total_melded_instructions > 0
        assert stats.seconds > 0

    def test_max_iterations_bounds_work(self):
        from repro.core import CFMConfig, run_cfm
        from tests.support import parse as parse_ir

        # Bitonic-style kernel would meld many times; cap at 1 iteration.
        from repro.kernels import build_bitonic
        from repro.transforms import optimize

        case = build_bitonic(block_size=16, grid_dim=1)
        optimize(case.function)
        stats = run_cfm(case.function, CFMConfig(max_iterations=1))
        assert stats.iterations == 1
        assert len(stats.melds) <= 1
