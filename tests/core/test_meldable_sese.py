"""Tests for meldable-region detection, SESE decomposition and the
ordered isomorphism check (Definitions 5–6)."""

from repro.analysis import compute_divergence, compute_postdominator_tree
from repro.core import (
    contains_barrier,
    find_meldable_region,
    path_subgraphs,
    simplify_path_subgraphs,
    subgraph_isomorphism,
    subgraphs_meldable,
)

from tests.support import build_diamond, parse


DIVERGENT_DIAMOND = """
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  %x = add i32 %tid, 1
  br label %m
b:
  %y = add i32 %tid, 2
  br label %m
m:
  ret void
}
"""


def region_of(f, block_name):
    divergence = compute_divergence(f)
    pdt = compute_postdominator_tree(f)
    return find_meldable_region(f.block_by_name(block_name), divergence, pdt), pdt


class TestMeldableRegion:
    def test_divergent_diamond_detected(self):
        f = parse(DIVERGENT_DIAMOND)
        region, _ = region_of(f, "entry")
        assert region is not None
        assert region.entry.name == "entry"
        assert region.exit.name == "m"
        assert region.true_first.name == "a"
        assert region.false_first.name == "b"

    def test_uniform_branch_rejected(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %c = icmp slt i32 %n, 5
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  ret void
}
""")
        region, _ = region_of(f, "entry")
        assert region is None  # not divergent

    def test_triangle_rejected(self):
        # if-without-else: the false successor post-dominates the true one.
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %m
a:
  br label %m
m:
  ret void
}
""")
        region, _ = region_of(f, "entry")
        assert region is None

    def test_non_branch_block_rejected(self):
        f = parse(DIVERGENT_DIAMOND)
        region, _ = region_of(f, "m")
        assert region is None


class TestPathSubgraphs:
    def test_single_block_paths(self):
        f = parse(DIVERGENT_DIAMOND)
        region, pdt = region_of(f, "entry")
        subs = path_subgraphs(region.true_first, region.exit, pdt)
        assert len(subs) == 1
        assert subs[0].is_single_block
        assert subs[0].entry.name == "a"
        assert subs[0].target.name == "m"

    def test_sequence_of_subgraphs(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t1, label %f1
t1:
  %c2 = icmp slt i32 %tid, 3
  br i1 %c2, label %t1a, label %t1b
t1a:
  br label %t2
t1b:
  br label %t2
t2:
  br label %m
f1:
  br label %m
m:
  ret void
}
""")
        region, pdt = region_of(f, "entry")
        subs = path_subgraphs(region.true_first, region.exit, pdt)
        # true path: region (t1 .. t2), then single block t2.
        assert len(subs) == 2
        assert not subs[0].is_single_block
        assert subs[0].entry.name == "t1"
        assert subs[1].is_single_block
        assert subs[1].entry.name == "t2"
        false_subs = path_subgraphs(region.false_first, region.exit, pdt)
        assert len(false_subs) == 1

    def test_empty_path(self):
        f = parse(DIVERGENT_DIAMOND)
        _, pdt = region_of(f, "entry")
        assert path_subgraphs(f.block_by_name("m"), f.block_by_name("m"), pdt) == []


class TestSimplify:
    def test_multi_exit_subgraph_gets_collector(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t1, label %f1
t1:
  %c2 = icmp slt i32 %tid, 3
  br i1 %c2, label %t1a, label %t1b
t1a:
  br label %m
t1b:
  br label %m
f1:
  br label %m
m:
  ret void
}
""")
        region, pdt = region_of(f, "entry")
        subs = path_subgraphs(region.true_first, region.exit, pdt)
        assert len(subs) == 1
        assert subs[0].exit is None  # two exit edges t1a->m, t1b->m
        assert simplify_path_subgraphs(f, subs)
        from repro.ir import verify_function

        verify_function(f)
        assert subs[0].exit is not None
        assert subs[0].exit.single_succ is f.block_by_name("m")

    def test_simple_subgraph_untouched(self):
        f = parse(DIVERGENT_DIAMOND)
        region, pdt = region_of(f, "entry")
        subs = path_subgraphs(region.true_first, region.exit, pdt)
        blocks_before = len(f.blocks)
        assert not simplify_path_subgraphs(f, subs)
        assert len(f.blocks) == blocks_before

    def test_collector_merges_phi_values(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t1, label %f1
t1:
  %c2 = icmp slt i32 %tid, 3
  br i1 %c2, label %t1a, label %t1b
t1a:
  %x = add i32 %tid, 1
  br label %m
t1b:
  %y = add i32 %tid, 2
  br label %m
f1:
  br label %m
m:
  %p = phi i32 [ %x, %t1a ], [ %y, %t1b ], [ 0, %f1 ]
  ret void
}
""")
        region, pdt = region_of(f, "entry")
        subs = path_subgraphs(region.true_first, region.exit, pdt)
        simplify_path_subgraphs(f, subs)
        from repro.ir import verify_function

        verify_function(f)
        m_phi = f.block_by_name("m").phis[0]
        assert len(m_phi.incoming) == 2  # collector + f1
        collector_phi = subs[0].exit.phis[0]
        assert len(collector_phi.incoming) == 2


class TestIsomorphism:
    def make_pair(self, true_body: str, false_body: str):
        f = parse(f"""
define void @k(i32 %n) {{
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t0, label %f0
{true_body}
{false_body}
m:
  ret void
}}
""")
        region, pdt = region_of(f, "entry")
        true_subs = path_subgraphs(region.true_first, region.exit, pdt)
        false_subs = path_subgraphs(region.false_first, region.exit, pdt)
        simplify_path_subgraphs(f, true_subs)
        simplify_path_subgraphs(f, false_subs)
        return f, true_subs, false_subs

    def test_matching_if_then_regions(self):
        f, ts, fs = self.make_pair(
            """
t0:
  %tc = icmp slt i32 %tid, 2
  br i1 %tc, label %t0a, label %t0e
t0a:
  br label %t0e
t0e:
  br label %m
""",
            """
f0:
  %fc = icmp slt i32 %tid, 4
  br i1 %fc, label %f0a, label %f0e
f0a:
  br label %f0e
f0e:
  br label %m
""")
        mapping = subgraphs_meldable(ts[0], fs[0])
        assert mapping is not None
        names = {(a.name, b.name) for a, b in mapping}
        assert ("t0", "f0") in names
        assert ("t0a", "f0a") in names

    def test_mismatched_shapes_rejected(self):
        f, ts, fs = self.make_pair(
            """
t0:
  %tc = icmp slt i32 %tid, 2
  br i1 %tc, label %t0a, label %t0e
t0a:
  br label %t0e
t0e:
  br label %m
""",
            """
f0:
  br label %m
""")
        # true: 3-block region (+collector); false: single block.
        assert subgraphs_meldable(ts[0], fs[0]) is None

    def test_single_blocks_meldable(self):
        f = parse(DIVERGENT_DIAMOND)
        region, pdt = region_of(f, "entry")
        ts = path_subgraphs(region.true_first, region.exit, pdt)
        fs = path_subgraphs(region.false_first, region.exit, pdt)
        mapping = subgraphs_meldable(ts[0], fs[0])
        assert mapping == [(f.block_by_name("a"), f.block_by_name("b"))]

    def test_overlapping_subgraphs_rejected(self):
        f = parse(DIVERGENT_DIAMOND)
        region, pdt = region_of(f, "entry")
        ts = path_subgraphs(region.true_first, region.exit, pdt)
        assert subgraphs_meldable(ts[0], ts[0]) is None

    def test_barrier_blocks_melding(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  call void @llvm.gpu.barrier()
  br label %m
b:
  call void @llvm.gpu.barrier()
  br label %m
m:
  ret void
}
""")
        region, pdt = region_of(f, "entry")
        ts = path_subgraphs(region.true_first, region.exit, pdt)
        fs = path_subgraphs(region.false_first, region.exit, pdt)
        assert contains_barrier(ts[0])
        assert subgraphs_meldable(ts[0], fs[0]) is None
