"""Melding subgraphs that contain loops — the 'complex control flow'
capability beyond branch fusion (Table I row 3, pushed further: the
paper's PCM has loops on both sides of the divergent branch; here the
loops are *runtime-bounded*, so they reach the melder rolled)."""

import pytest

from repro.core import run_cfm
from repro.analysis import compute_loop_info
from repro.ir import verify_function
from repro.simt import run_kernel

from tests.support import parse

LOOPY = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %parity = and i32 %tid, 1
  %c = icmp eq i32 %parity, 0
  br i1 %c, label %t.pre, label %f.pre
t.pre:
  br label %t.h
t.h:
  %ti = phi i32 [ 0, %t.pre ], [ %tni, %t.body ]
  %tc = icmp slt i32 %ti, %n
  br i1 %tc, label %t.body, label %m
t.body:
  %tg = getelementptr i32, i32 addrspace(1)* %a, i32 %ti
  %tv = load i32, i32 addrspace(1)* %tg
  %tr = add i32 %tv, %tid
  store i32 %tr, i32 addrspace(1)* %tg
  %tni = add i32 %ti, 1
  br label %t.h
f.pre:
  br label %f.h
f.h:
  %fi = phi i32 [ 0, %f.pre ], [ %fni, %f.body ]
  %fc = icmp slt i32 %fi, %n
  br i1 %fc, label %f.body, label %m
f.body:
  %fg = getelementptr i32, i32 addrspace(1)* %b, i32 %fi
  %fv = load i32, i32 addrspace(1)* %fg
  %fr = add i32 %fv, %tid
  store i32 %fr, i32 addrspace(1)* %fg
  %fni = add i32 %fi, 1
  br label %f.h
m:
  ret void
}
"""


def run_both(n, buffers):
    base = parse(LOOPY)
    melded = parse(LOOPY)
    stats = run_cfm(melded)
    verify_function(melded)
    out_base, metrics_base = run_kernel(
        base.module, "k", 1, 8,
        buffers={k: list(v) for k, v in buffers.items()}, scalars={"n": n})
    out_melded, metrics_melded = run_kernel(
        melded.module, "k", 1, 8,
        buffers={k: list(v) for k, v in buffers.items()}, scalars={"n": n})
    return stats, out_base, out_melded, metrics_base, metrics_melded


class TestLoopMelding:
    def test_loops_meld_into_one(self):
        melded = parse(LOOPY)
        stats = run_cfm(melded)
        verify_function(melded)
        assert len(stats.melds) == 1
        assert not stats.melds[0].partial
        # Two loops became one.
        assert len(compute_loop_info(melded).loops) == 1

    @pytest.mark.parametrize("n", [0, 1, 3, 8])
    def test_semantics_for_all_trip_counts(self, n):
        buffers = {"a": list(range(8)), "b": list(range(100, 108))}
        _, out_base, out_melded, _, _ = run_both(n, buffers)
        assert out_base == out_melded

    def test_meld_halves_loop_memory_issues(self):
        buffers = {"a": list(range(8)), "b": list(range(100, 108))}
        _, _, _, metrics_base, metrics_melded = run_both(6, buffers)
        assert metrics_melded.vector_memory_issues < \
            metrics_base.vector_memory_issues
        assert metrics_melded.cycles < metrics_base.cycles

    def test_header_phis_get_undef_from_other_entry(self):
        from repro.ir import Phi, Undef

        melded = parse(LOOPY)
        run_cfm(melded)
        header = next(b for b in melded.blocks if ".m." in b.name and b.phis)
        for phi in header.phis:
            assert any(isinstance(v, Undef) for v in phi.incoming_values), \
                "each side's counter must be undef on the other entry edge"

    def test_mismatched_loop_shapes_do_not_meld(self):
        # The false side has an extra block in its loop body: shapes are
        # not isomorphic, and a single-block/region partial meld cannot
        # apply to two multi-block subgraphs either.
        text = LOOPY.replace(
            "%fi = phi i32 [ 0, %f.pre ], [ %fni, %f.body ]",
            "%fi = phi i32 [ 0, %f.pre ], [ %fni, %f.latch ]",
        ).replace("""f.body:
  %fg = getelementptr i32, i32 addrspace(1)* %b, i32 %fi
  %fv = load i32, i32 addrspace(1)* %fg
  %fr = add i32 %fv, %tid
  store i32 %fr, i32 addrspace(1)* %fg
  %fni = add i32 %fi, 1
  br label %f.h""", """f.body:
  %fg = getelementptr i32, i32 addrspace(1)* %b, i32 %fi
  %fv = load i32, i32 addrspace(1)* %fg
  %big = icmp sgt i32 %fv, 50
  br i1 %big, label %f.extra, label %f.latch
f.extra:
  store i32 0, i32 addrspace(1)* %fg
  br label %f.latch
f.latch:
  %fni = add i32 %fi, 1
  br label %f.h""")
        melded = parse(text)
        base = parse(text)
        stats = run_cfm(melded)
        verify_function(melded)
        buffers = {"a": list(range(8)), "b": [10, 60, 20, 70, 30, 80, 40, 90]}
        out_base, _ = run_kernel(base.module, "k", 1, 8,
                                 buffers={k: list(v) for k, v in buffers.items()},
                                 scalars={"n": 4})
        out_melded, _ = run_kernel(melded.module, "k", 1, 8,
                                   buffers={k: list(v) for k, v in buffers.items()},
                                   scalars={"n": 4})
        assert out_base == out_melded
