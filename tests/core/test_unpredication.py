"""Unit tests for the unpredication step in isolation (§IV-E)."""

import pytest

from repro.core import CFMConfig, Side, run_cfm
from repro.core.melder import MeldResult
from repro.core.unpredication import unpredicate
from repro.ir import (
    Branch,
    I32,
    IRBuilder,
    Module,
    Phi,
    Store,
    Undef,
    const_bool,
    pointer,
    verify_function,
)
from repro.simt import run_kernel

from tests.support import parse


def build_melded_like_block():
    """Hand-construct a 'melded' block: BOTH-run, TRUE-run, BOTH-run."""
    f = parse("""
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br label %melded
melded:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v = load i32, i32 addrspace(1)* %g
  %t1 = mul i32 %v, 3
  store i32 %t1, i32 addrspace(1)* %g
  %both = add i32 %t1, 1
  br label %exit
exit:
  ret void
}
""")
    melded = f.block_by_name("melded")
    instrs = {i.name: i for i in melded if not i.type.is_void or i.opcode == "store"}
    cond = f.block_by_name("entry").instructions[1]
    sides = {}
    for instr in melded.instructions:
        if instr.is_terminator:
            continue
        sides[instr] = Side.BOTH
    # Mark the mul+store as a TRUE-side gap run.
    store = [i for i in melded if i.opcode == "store"][0]
    sides[instrs["t1"]] = Side.TRUE
    sides[store] = Side.TRUE
    result = MeldResult(entry=melded, melded_blocks=[melded], sides=sides,
                        condition=cond)
    return f, melded, result


class TestSplitting:
    def test_side_effect_run_always_split(self):
        f, melded, result = build_melded_like_block()
        assert unpredicate(f, result, split_pure_runs=False)
        verify_function(f)
        # The store must now sit in a block guarded by the condition.
        store = [i for i in f.instructions() if i.opcode == "store"][0]
        guard_preds = store.parent.preds
        assert len(guard_preds) == 1
        guard_branch = guard_preds[0].terminator
        assert guard_branch.is_conditional
        assert guard_branch.condition is result.condition
        # TRUE-side run: the guarded block is the TRUE successor.
        assert guard_branch.true_successor is store.parent

    def test_values_flow_out_via_undef_phis(self):
        f, melded, result = build_melded_like_block()
        unpredicate(f, result)
        verify_function(f)
        phis = [i for i in f.instructions() if isinstance(i, Phi)]
        assert phis, "expected SSA-repair φs for gap-defined values"
        for phi in phis:
            assert any(isinstance(v, Undef) for v in phi.incoming_values)

    def test_no_gaps_no_change(self):
        f, melded, result = build_melded_like_block()
        for instr in list(result.sides):
            result.sides[instr] = Side.BOTH
        assert not unpredicate(f, result)

    def test_false_side_run_guarded_on_false_edge(self):
        f, melded, result = build_melded_like_block()
        store = [i for i in melded if i.opcode == "store"][0]
        mul = [i for i in melded if i.opcode == "mul"][0]
        result.sides[store] = Side.FALSE
        result.sides[mul] = Side.FALSE
        unpredicate(f, result)
        verify_function(f)
        store = [i for i in f.instructions() if i.opcode == "store"][0]
        guard_branch = store.parent.preds[0].terminator
        assert guard_branch.false_successor is store.parent


class TestEndToEndSemantics:
    SRC = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t, label %f
t:
  %tp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  store i32 111, i32 addrspace(1)* %tp
  %tq = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  store i32 1, i32 addrspace(1)* %tq
  br label %m
f:
  %fp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  store i32 222, i32 addrspace(1)* %fp
  br label %m
m:
  ret void
}
"""

    def test_one_sided_stores_never_leak(self):
        """The true path stores twice, the false path once: after melding,
        the unmatched store must only fire for true-path lanes."""
        melded = parse(self.SRC)
        run_cfm(melded)
        verify_function(melded)
        out, _ = run_kernel(melded.module, "k", 1, 8,
                            buffers={"a": [0] * 8, "b": [0] * 8},
                            scalars={"n": 3})
        assert out["a"] == [111] * 3 + [222] * 5
        assert out["b"] == [1] * 3 + [0] * 5
