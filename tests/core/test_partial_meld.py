"""Tests for case-② melding: a simple region melded with a single basic
block (Definition 6 condition 2, Figure 2 case ②)."""

import pytest

from repro.core import (
    CFMConfig,
    candidate_pair,
    find_meldable_region,
    path_subgraphs,
    region_block_mapping,
    run_cfm,
    simplify_path_subgraphs,
)
from repro.analysis import compute_divergence, compute_postdominator_tree
from repro.ir import Module, verify_function
from repro.simt import run_kernel

from tests.support import parse

#: true path: an if-then region; false path: one block whose computation
#: matches the region's guarded block (the paper's Figure 2 case ②).
CASE2 = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %t, label %f
t:
  %tp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %tv = load i32, i32 addrspace(1)* %tp
  %tc = icmp sgt i32 %tv, 10
  br i1 %tc, label %t.body, label %m
t.body:
  %tr = mul i32 %tv, 3
  store i32 %tr, i32 addrspace(1)* %tp
  br label %m
f:
  %fp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %fv = load i32, i32 addrspace(1)* %fp
  %fr = mul i32 %fv, 3
  store i32 %fr, i32 addrspace(1)* %fp
  br label %m
m:
  ret void
}
"""


def decomposed(f):
    divergence = compute_divergence(f)
    pdt = compute_postdominator_tree(f)
    region = find_meldable_region(f.entry, divergence, pdt)
    ts = path_subgraphs(region.true_first, region.exit, pdt)
    fs = path_subgraphs(region.false_first, region.exit, pdt)
    simplify_path_subgraphs(f, ts)
    simplify_path_subgraphs(f, fs)
    return region, ts, fs


class TestPartialMapping:
    def test_region_block_mapping_found(self):
        f = parse(CASE2)
        _, ts, fs = decomposed(f)
        partial = region_block_mapping(ts[0], fs[0], region_on_true_path=True)
        assert partial is not None
        # The single block pairs with the region block sharing its
        # instruction profile (mul/store live in t.body, loads in t).
        assert partial.chosen.name in ("t", "t.body")
        nones = [bt for bt, bf in partial.mapping if bf is None]
        assert len(nones) == len(partial.mapping) - 1

    def test_route_steers_through_chosen(self):
        f = parse(CASE2)
        _, ts, fs = decomposed(f)
        partial = region_block_mapping(ts[0], fs[0], region_on_true_path=True)
        # Conditional blocks on the entry->chosen->exit path get a
        # steering entry.
        for block, index in partial.route.items():
            assert block in ts[0].blocks
            assert index in (0, 1)

    def test_rejected_for_two_regions(self):
        f = parse(CASE2)
        _, ts, fs = decomposed(f)
        assert region_block_mapping(ts[0], ts[0], True) is None

    def test_candidate_pair_prefers_full_isomorphism(self):
        # When shapes match exactly, candidate_pair must return the full
        # mapping, not a partial one.
        from tests.support import build_diamond

        f = build_diamond()
        _, ts, fs = decomposed(f)
        pair = candidate_pair(ts[0], fs[0])
        assert pair is not None
        assert not pair.is_partial


class TestPartialMeldEndToEnd:
    def run_both(self, config=None):
        base = parse(CASE2)
        melded = parse(CASE2)
        stats = run_cfm(melded, config)
        verify_function(melded)

        buffers = {"a": [5, 20, 11, 3, 40, 9, 15, 2],
                   "b": [7, 1, 30, 12, 2, 25, 6, 18]}
        out_base, _ = run_kernel(base.module, "k", 1, 8,
                                 buffers={k: list(v) for k, v in buffers.items()},
                                 scalars={"n": 4})
        out_melded, _ = run_kernel(melded.module, "k", 1, 8,
                                   buffers={k: list(v) for k, v in buffers.items()},
                                   scalars={"n": 4})
        return stats, out_base, out_melded

    def test_partial_meld_happens_and_is_correct(self):
        stats, out_base, out_melded = self.run_both()
        assert any(m.partial for m in stats.melds)
        assert out_base == out_melded

    def test_partial_melds_can_be_disabled(self):
        stats, out_base, out_melded = self.run_both(
            CFMConfig(allow_partial_melds=False))
        assert not any(m.partial for m in stats.melds)
        assert out_base == out_melded

    def test_region_on_false_path(self):
        # Mirror of CASE2: the region sits on the false path.
        text = CASE2.replace("br i1 %c, label %t, label %f",
                             "br i1 %c, label %f, label %t")
        base = parse(text)
        melded = parse(text)
        stats = run_cfm(melded)
        verify_function(melded)
        assert any(m.partial for m in stats.melds)
        buffers = {"a": [5, 20, 11, 3, 40, 9, 15, 2],
                   "b": [7, 1, 30, 12, 2, 25, 6, 18]}
        out_base, _ = run_kernel(base.module, "k", 1, 8,
                                 buffers={k: list(v) for k, v in buffers.items()},
                                 scalars={"n": 4})
        out_melded, _ = run_kernel(melded.module, "k", 1, 8,
                                   buffers={k: list(v) for k, v in buffers.items()},
                                   scalars={"n": 4})
        assert out_base == out_melded

    def test_partial_meld_reduces_memory_issues(self):
        base = parse(CASE2)
        melded = parse(CASE2)
        run_cfm(melded)
        buffers = {"a": [50] * 8, "b": [50] * 8}
        _, metrics_base = run_kernel(base.module, "k", 1, 8,
                                     buffers={k: list(v) for k, v in buffers.items()},
                                     scalars={"n": 4})
        _, metrics_melded = run_kernel(melded.module, "k", 1, 8,
                                       buffers={k: list(v) for k, v in buffers.items()},
                                       scalars={"n": 4})
        # The loads/stores of the two paths issue together now.
        assert metrics_melded.vector_memory_issues < \
            metrics_base.vector_memory_issues
