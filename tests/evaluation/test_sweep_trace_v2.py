"""Sweep-trace schema v2: embedded Chrome events, pid rebasing,
tracing policies, and v1 back-compat."""

import json

import pytest

from repro.evaluation import (
    SWEEP_TRACE_SCHEMA,
    SWEEP_TRACE_SCHEMA_V1,
    TRACE_EVENT_POLICIES,
    SweepTask,
    SweepTraceCollector,
    load_sweep_trace,
    run_task,
)
from repro.kernels import build_sb1
from repro.obs import COMPILE_PID, SIM_PID_BASE

SEED = 99


def traced_result(index=0):
    task = SweepTask(kernel="SB1", builder=build_sb1, block_size=16,
                     grid_dim=1, seed=SEED, trace=True)
    return run_task(task, index=index)


class TestTracedTask:
    def test_traced_task_captures_all_three_event_layers(self):
        result = traced_result()
        assert result.trace_events
        cats = {e.get("cat") for e in result.trace_events}
        assert "compile" in cats   # pass spans
        assert "melding" in cats   # decision log
        assert "sim" in cats       # warp divergence timeline

    def test_untraced_task_carries_no_events(self):
        task = SweepTask(kernel="SB1", builder=build_sb1, block_size=16,
                         grid_dim=1, seed=SEED)
        assert run_task(task).trace_events is None


class TestCollectorMerge:
    def test_pids_are_rebased_and_names_prefixed(self):
        collector = SweepTraceCollector(workers=1)
        collector.record("sweep", [traced_result()])
        assert collector.traced_pid_count > 0
        pids = {e["pid"] for e in collector.events}
        # Rebased: no merged event keeps the per-task COMPILE_PID.
        assert COMPILE_PID not in pids
        assert all(pid >= SIM_PID_BASE for pid in pids)
        names = [e["args"]["name"] for e in collector.events
                 if e.get("ph") == "M" and e["name"] == "process_name"]
        assert names and all(n.startswith("SB1-16:") for n in names)
        # The compile pid never names itself in-task; the collector
        # synthesizes its track label.
        assert "SB1-16:compile" in names

    def test_two_tasks_get_disjoint_pids(self):
        collector = SweepTraceCollector(workers=1)
        first, second = traced_result(0), traced_result(1)
        collector.record("sweep", [first])
        pids_after_first = {e["pid"] for e in collector.events}
        collector.record("sweep", [second])
        second_pids = ({e["pid"] for e in collector.events}
                       - pids_after_first)
        assert second_pids, "second task must add fresh pids"
        assert not (pids_after_first & second_pids)

    def test_payload_is_perfetto_loadable_superset(self, tmp_path):
        collector = SweepTraceCollector(workers=1)
        collector.record("sweep", [traced_result()])
        path = tmp_path / "sweep_trace.json"
        collector.write(str(path))
        data = json.loads(path.read_text())
        assert data["schema"] == SWEEP_TRACE_SCHEMA
        assert isinstance(data["traceEvents"], list) and data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"
        assert data["sections"]  # still the structured sweep record


class TestPolicies:
    def test_known_policies(self):
        assert TRACE_EVENT_POLICIES == ("off", "first", "all")
        for policy in TRACE_EVENT_POLICIES:
            SweepTraceCollector(policy=policy)  # must not raise

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="trace-events policy"):
            SweepTraceCollector(policy="sometimes")


class TestLoadSweepTrace:
    def test_v2_round_trip(self, tmp_path):
        collector = SweepTraceCollector(workers=2)
        collector.record("sweep", [traced_result()])
        path = tmp_path / "v2.json"
        collector.write(str(path))
        data = load_sweep_trace(str(path))
        assert data["schema"] == SWEEP_TRACE_SCHEMA
        assert data["traceEvents"]

    def test_v1_file_loads_with_empty_events(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps({
            "schema": SWEEP_TRACE_SCHEMA_V1,
            "workers": 4,
            "task_count": 0,
            "sections": {"figure7": []},
        }))
        data = load_sweep_trace(str(path))
        assert data["schema"] == SWEEP_TRACE_SCHEMA_V1
        assert data["traceEvents"] == []
        assert data["sections"] == {"figure7": []}

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro.evaluation.sweep_trace/v99"}')
        with pytest.raises(ValueError, match="unknown sweep-trace schema"):
            load_sweep_trace(str(path))
