"""Tests for the compile/run plumbing and the table formatters."""

import pytest

from repro.core import CFMConfig
from repro.evaluation import (
    compare,
    compile_baseline,
    compile_cfm,
    execute,
    format_counters,
    format_figure8,
    format_speedups,
    format_table1,
    format_table2,
    geomean,
)
from repro.evaluation.experiments import (
    CapabilityRow,
    CompileTimeRow,
    CounterRow,
    Figure8Result,
    SpeedupRow,
)
from repro.kernels import build_bitonic, build_sb1


class TestCompile:
    def test_baseline_compile_times_recorded(self):
        case = build_sb1(block_size=16, grid_dim=1)
        result = compile_baseline(case)
        assert result.o3_seconds > 0
        assert result.cfm_seconds == 0
        assert result.cfm_stats is None

    def test_cfm_compile_records_stats(self):
        case = build_sb1(block_size=16, grid_dim=1)
        result = compile_cfm(case)
        assert result.cfm_seconds > 0
        assert result.cfm_stats is not None
        assert result.cfm_stats.melds
        assert result.total_seconds == result.o3_seconds + result.cfm_seconds

    def test_cfm_config_forwarded(self):
        case = build_sb1(block_size=16, grid_dim=1)
        result = compile_cfm(case, CFMConfig(profitability_threshold=0.99))
        assert not result.cfm_stats.melds


class TestExecute:
    def test_execute_checks_reference(self):
        case = build_bitonic(block_size=16, grid_dim=1)
        run = execute(case, seed=5)
        assert run.metrics.cycles > 0
        assert sorted(run.outputs["values"]) == run.outputs["values"]

    def test_execute_detects_broken_kernel(self):
        case = build_bitonic(block_size=16, grid_dim=1)
        # Sabotage: swap the comparison so the kernel "sorts" descending.
        from repro.ir import ICmp

        for instr in case.function.instructions():
            if isinstance(instr, ICmp) and instr.predicate == "slt":
                instr.predicate = "sgt"
        with pytest.raises(AssertionError):
            execute(case, seed=5)


class TestCompare:
    def test_compare_is_deterministic(self):
        a = compare(build_sb1, block_size=16, grid_dim=1, seed=3)
        b = compare(build_sb1, block_size=16, grid_dim=1, seed=3)
        assert a.speedup == b.speedup
        assert a.baseline.cycles == b.baseline.cycles

    def test_compare_reports_melds(self):
        result = compare(build_sb1, block_size=16, grid_dim=1)
        assert result.melds > 0
        assert result.speedup > 1.0


def _speedup_row(kernel="SB1", block=32, speedup=1.2):
    comparison = compare(build_sb1, block_size=16, grid_dim=1)
    return SpeedupRow(kernel=kernel, block_size=block, speedup=speedup,
                      baseline_cycles=1000, cfm_cycles=800, melds=2,
                      comparison=comparison)


class TestFormatting:
    def test_format_speedups_contains_gm(self):
        text = format_speedups([_speedup_row()], "Test title")
        assert "Test title" in text
        assert "GM = 1.200" in text
        assert "SB1" in text

    def test_format_figure8_marks_best(self):
        row = _speedup_row(kernel="BIT")
        result = Figure8Result(rows=[row], geomean_all=1.2, geomean_best=1.2,
                               best_baseline_block={"BIT": 32})
        text = format_figure8(result)
        assert "BIT+" in text
        assert "GM-best" in text

    def test_format_counters(self):
        row = CounterRow(kernel="BIT", block_size=32,
                         baseline_alu_utilization=0.5,
                         cfm_alu_utilization=0.75,
                         normalized_vector_memory=1.0,
                         normalized_shared_memory=0.6,
                         normalized_flat_memory=1.0)
        text = format_counters([row])
        assert "50.0%" in text and "75.0%" in text
        assert "0.600" in text

    def test_format_table1(self):
        row = CapabilityRow(pattern="complex", technique="cfm",
                            divergent_branches_before=5,
                            divergent_branches_after=2,
                            outputs_correct=True)
        text = format_table1([row])
        assert "yes" in text and "5->2" in text and "ok" in text

    def test_format_table2(self):
        row = CompileTimeRow(kernel="LUD", o3_seconds=0.5, cfm_seconds=1.0)
        text = format_table2([row])
        assert "2.0000" in text  # normalized

    def test_geomean_multiplicative(self):
        assert abs(geomean([1.2, 1.2, 1.2]) - 1.2) < 1e-12


class TestReportCLI:
    def test_quick_report_builds(self):
        from repro.evaluation.__main__ import build_report

        report = build_report(quick=True)
        for marker in ("Table I", "Figure 7", "Figure 8", "Figure 9",
                       "Figure 10", "Table II"):
            assert marker in report
