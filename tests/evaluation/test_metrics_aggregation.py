"""Cross-process metrics aggregation through the sweep engine.

The contract under test: an N-worker sweep's merged metrics snapshot is
**bit-identical** to the serial run's for everything deterministic
(counter values, histogram bucket counts and sums).  Wall-clock-valued
metrics (``*_seconds`` histograms, ``*_per_second`` / ``*utilization``
gauges) are inherently nondeterministic in any mode and are stripped
before comparison.

Also covered: the worker-crash path (partial delta + ``tasks_crashed``),
the live progress callback, and ``Metrics.merge``-style rejection of
mismatched histogram buckets across deltas.
"""

import json

import pytest

from repro.evaluation.parallel import (
    ParallelRunner,
    SweepTask,
    run_task,
)
from repro.kernels import build_sb1, build_sb2
from repro.obs import MetricsRegistry, use_registry

TASKS = [
    SweepTask(kernel="SB1", builder=build_sb1, block_size=64, metrics=True),
    SweepTask(kernel="SB2", builder=build_sb2, block_size=64, metrics=True),
    SweepTask(kernel="SB1", builder=build_sb1, block_size=32, metrics=True),
]

#: metric-name fragments whose values depend on wall time
TIME_DEPENDENT = ("seconds", "per_second", "utilization")


def strip_time_dependent(snapshot):
    """Drop wall-clock-valued metrics; everything left is deterministic."""
    snapshot = json.loads(json.dumps(snapshot))  # deep copy
    for kind in ("counters", "gauges", "histograms"):
        snapshot[kind] = {
            name: data for name, data in snapshot[kind].items()
            if not any(fragment in name for fragment in TIME_DEPENDENT)}
    return snapshot


def run_and_snapshot(workers, tasks=TASKS):
    registry = MetricsRegistry()
    with use_registry(registry):
        results = ParallelRunner(workers=workers).run(list(tasks))
    return results, registry.snapshot()


class TestSerialParallelIdentity:
    def test_two_worker_snapshot_bit_identical_to_serial(self):
        serial_results, serial = run_and_snapshot(workers=1)
        parallel_results, parallel = run_and_snapshot(workers=2)
        assert all(r.ok for r in serial_results)
        assert all(r.ok for r in parallel_results)
        assert strip_time_dependent(serial) == strip_time_dependent(parallel)

    def test_three_worker_snapshot_bit_identical_to_serial(self):
        _, serial = run_and_snapshot(workers=1)
        _, parallel = run_and_snapshot(workers=3)
        assert strip_time_dependent(serial) == strip_time_dependent(parallel)

    def test_deterministic_layers_are_nonempty(self):
        """The identity assertion must not pass vacuously."""
        _, snapshot = run_and_snapshot(workers=1)
        stripped = strip_time_dependent(snapshot)
        assert stripped["counters"], "expected counters to survive stripping"
        assert stripped["histograms"], "expected occupancy/rate histograms"
        occupancy = stripped["histograms"]["repro_runtime_active_lanes"]
        assert any(s["count"] > 0 for s in occupancy["samples"].values())

    def test_task_counters_reflect_outcomes(self):
        results, snapshot = run_and_snapshot(workers=2)
        completed = snapshot["counters"]["repro_eval_tasks_completed_total"]
        assert sum(completed["samples"].values()) == len(results)
        crashed = snapshot["counters"]["repro_eval_tasks_crashed_total"]
        assert sum(crashed["samples"].values()) == 0


def _boom(**kwargs):
    raise RuntimeError("builder exploded")


class TestCrashPath:
    def test_crashed_task_reports_partial_delta_and_counter(self):
        tasks = [
            SweepTask(kernel="SB1", builder=build_sb1, block_size=32,
                      metrics=True),
            SweepTask(kernel="BOOM", builder=_boom, block_size=32,
                      metrics=True),
        ]
        registry = MetricsRegistry()
        with use_registry(registry):
            results = ParallelRunner(workers=2, retries=0).run(tasks)
        assert results[0].ok
        assert not results[1].ok
        assert results[1].crashed
        # The partial delta still arrived (schema-valid, merged cleanly).
        assert results[1].metrics_delta is not None
        assert results[1].metrics_delta["schema"].startswith(
            "repro.obs.metrics/")
        snapshot = registry.snapshot()
        crashed = snapshot["counters"]["repro_eval_tasks_crashed_total"]
        assert sum(crashed["samples"].values()) == 1
        failed = snapshot["counters"]["repro_eval_tasks_failed_total"]
        assert sum(failed["samples"].values()) == 1

    def test_serial_crash_path_matches(self):
        tasks = [SweepTask(kernel="BOOM", builder=_boom, block_size=32,
                           metrics=True)]
        registry = MetricsRegistry()
        with use_registry(registry):
            results = ParallelRunner(workers=1, retries=0).run(tasks)
        assert results[0].crashed
        assert results[0].metrics_delta is not None
        crashed = registry.snapshot()["counters"][
            "repro_eval_tasks_crashed_total"]
        assert sum(crashed["samples"].values()) == 1

    def test_run_task_attaches_delta_to_exception(self):
        task = SweepTask(kernel="BOOM", builder=_boom, block_size=32,
                         metrics=True)
        with pytest.raises(RuntimeError) as excinfo:
            run_task(task)
        delta = excinfo.value._metrics_delta
        assert delta["schema"].startswith("repro.obs.metrics/")


class TestProgressCallback:
    def test_callback_sees_every_terminal_result(self):
        seen = []

        def progress(done, total, result):
            seen.append((done, total, result.kernel))

        ParallelRunner(workers=1).run(list(TASKS), progress=progress)
        assert [entry[0] for entry in seen] == [1, 2, 3]
        assert all(entry[1] == 3 for entry in seen)

    def test_parallel_callback_counts_monotonically(self):
        seen = []
        ParallelRunner(workers=2).run(
            list(TASKS), progress=lambda d, t, r: seen.append((d, t)))
        assert [entry[0] for entry in seen] == [1, 2, 3]


class TestDeltaBucketMismatch:
    def test_mismatched_occupancy_buckets_reject_like_metrics_merge(self):
        """A delta collected at a different warp width cannot silently
        fold into a counted registry — the same rule Metrics.merge
        applies to warp_size."""
        narrow = MetricsRegistry()
        narrow.histogram("repro_runtime_active_lanes",
                         buckets=(1.0, 2.0, 3.0, 4.0)).observe(2)
        wide = MetricsRegistry()
        wide.histogram("repro_runtime_active_lanes",
                       buckets=(4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0,
                                32.0)).observe(16)
        with pytest.raises(ValueError, match="cannot merge histogram"):
            narrow.merge(wide.snapshot())

    def test_fresh_registry_adopts_delta_buckets(self):
        registry = MetricsRegistry()
        wide = MetricsRegistry()
        wide.histogram("repro_runtime_active_lanes",
                       buckets=(8.0, 16.0)).observe(10)
        registry.merge(wide.snapshot())
        family = registry.histogram("repro_runtime_active_lanes",
                                    buckets=(8.0, 16.0))
        assert family.total_count() == 1
