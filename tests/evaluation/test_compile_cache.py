"""The persistent compile cache: poisoned entries, digest keys, the
disk layer's failure matrix, and cross-"process" warm replays.

``tests/evaluation/test_parallel.py`` covers the in-process hit/miss
contract of one comparison; this file covers everything the persistence
layer adds — and the regression the tentpole fixed: a cache entry whose
stored IR no longer parses used to fail every lookup forever, instead of
being evicted and recompiled.
"""

import json
import multiprocessing

import pytest

from repro.compile_cache import (
    CACHE_ENV_VAR,
    CACHE_SCHEMA,
    CompileCache,
    DiskCompileCache,
    cfm_pipeline_id,
    digest_text,
)
from repro.core import CFMConfig
from repro.evaluation import compare, compile_baseline
from repro.kernels import build_sb1
from repro.obs import trace

SEED = 99


def _case():
    return build_sb1(block_size=16, grid_dim=1)


def _cold(cache):
    return compare(build_sb1, block_size=16, grid_dim=1, seed=SEED,
                   cache=cache)


# ---------------------------------------------------------------------------
# keys


class TestKeys:
    def test_keys_are_digests_not_ir_text(self):
        key = CompileCache.key_for(_case())
        assert key[0] == "o3"
        assert len(key[1]) == 64
        assert set(key[1]) <= set("0123456789abcdef")

    def test_same_source_same_key(self):
        assert CompileCache.key_for(_case()) == CompileCache.key_for(_case())

    def test_digest_boundaries_count(self):
        assert digest_text("ab", "c") != digest_text("a", "bc")

    def test_cfm_pipeline_id_covers_config_knobs(self):
        default = cfm_pipeline_id()
        assert default == cfm_pipeline_id(CFMConfig())
        assert default.startswith("cfm:")
        tuned = cfm_pipeline_id(CFMConfig(profitability_threshold=0.9))
        assert tuned != default


# ---------------------------------------------------------------------------
# poisoned entries (the regression this PR's tentpole fixed)


class TestPoisonedEntries:
    def test_unparseable_entry_is_evicted_and_recompiled(self):
        cache = CompileCache()
        case = _case()
        compile_baseline(case, cache=cache)
        (key,) = cache._entries
        cache._entries[key]["optimized_ir"] = "garbage("

        # The poisoned entry is a miss, evicted, and the recompile
        # repopulates it — the third compile hits cleanly again.
        second = compile_baseline(_case(), cache=cache)
        assert not second.o3_cached
        assert cache.evictions == 1
        assert cache.misses == 2  # cold + poisoned
        third = compile_baseline(_case(), cache=cache)
        assert third.o3_cached

    def test_poisoned_disk_entry_evicts_file(self, tmp_path):
        cache = CompileCache(disk=tmp_path)
        compile_baseline(_case(), cache=cache)
        (key,) = cache._entries
        file = cache.disk.file_for(key)
        payload = json.loads(file.read_text())
        payload["optimized_ir"] = "garbage("
        file.write_text(json.dumps(payload))

        fresh = CompileCache(disk=tmp_path)  # cold process, warm disk
        assert fresh.lookup(key) is None
        assert not file.exists()
        assert fresh.misses == 1


# ---------------------------------------------------------------------------
# disk layer failure matrix


def _store_one(tmp_path):
    """Populate a disk cache with one real o3 entry; return its key."""
    cache = CompileCache(disk=tmp_path)
    compile_baseline(_case(), cache=cache)
    (key,) = cache._entries
    return key, cache.disk.file_for(key)


class TestDiskCache:
    def test_version_mismatch_is_miss_and_evicts(self, tmp_path):
        key, file = _store_one(tmp_path)
        payload = json.loads(file.read_text())
        payload["schema"] = "repro.compile-cache/0"
        file.write_text(json.dumps(payload))

        disk = DiskCompileCache(tmp_path)
        assert disk.load(key) is None
        assert not file.exists()
        assert disk.counters() == {"hits": 0, "misses": 1,
                                   "evictions": 1, "writes": 0}

    def test_truncated_file_is_miss_and_evicts(self, tmp_path):
        key, file = _store_one(tmp_path)
        text = file.read_text()
        file.write_text(text[: len(text) // 2])

        disk = DiskCompileCache(tmp_path)
        assert disk.load(key) is None
        assert not file.exists()
        assert disk.evictions == 1

    def test_key_mismatch_is_miss_and_evicts(self, tmp_path):
        key, file = _store_one(tmp_path)
        payload = json.loads(file.read_text())
        payload["digest"] = "0" * 64  # file renamed / content swapped
        file.write_text(json.dumps(payload))

        disk = DiskCompileCache(tmp_path)
        assert disk.load(key) is None
        assert not file.exists()

    def test_missing_required_field_is_miss_and_evicts(self, tmp_path):
        key, file = _store_one(tmp_path)
        payload = json.loads(file.read_text())
        del payload["timings"]
        file.write_text(json.dumps(payload))

        disk = DiskCompileCache(tmp_path)
        assert disk.load(key) is None
        assert not file.exists()

    def test_absent_file_is_plain_miss(self, tmp_path):
        disk = DiskCompileCache(tmp_path)
        assert disk.load(("o3", "0" * 64)) is None
        assert disk.counters() == {"hits": 0, "misses": 1,
                                   "evictions": 0, "writes": 0}

    def test_concurrent_writers_leave_one_complete_winner(self, tmp_path):
        key = ("o3", digest_text("concurrent"))
        payloads = [{"optimized_ir": f"module {i}", "seconds": float(i),
                     "timings": [], "ir_stats": False, "filler": "x" * 65536}
                    for i in range(8)]

        def writer(i):
            DiskCompileCache(tmp_path).store(key, payloads[i])

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=writer, args=(i,)) for i in range(8)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)

        loaded = DiskCompileCache(tmp_path).load(key)
        assert loaded is not None  # never torn: some writer won outright
        winner = int(loaded["optimized_ir"].split()[1])
        stored = dict(payloads[winner])
        stored["schema"] = CACHE_SCHEMA
        stored["pipeline_id"], stored["digest"] = key
        assert loaded == stored
        # No temp droppings left behind.
        assert [f.name for f in tmp_path.iterdir()] == \
            [DiskCompileCache(tmp_path).file_for(key).name]


# ---------------------------------------------------------------------------
# cross-process warm replay (two CompileCache instances = two processes)


class TestWarmReplay:
    def test_fresh_process_replays_from_disk(self, tmp_path):
        cold = _cold(CompileCache(disk=tmp_path))

        warm_cache = CompileCache(disk=tmp_path)
        warm = _cold(warm_cache)
        # Both arms replay from disk: no in-process misses at all.
        assert warm_cache.hits == 2 and warm_cache.misses == 0
        assert warm_cache.disk.counters()["hits"] == 2
        assert warm.baseline_compile.o3_cached
        assert warm.cfm_compile.cfm_cached
        assert warm.baseline.cycles == cold.baseline.cycles
        assert warm.melded.cycles == cold.melded.cycles
        assert warm.melds == cold.melds
        assert all(t.cached for t in warm.cfm_compile.pass_timings)

    def test_disk_replay_is_observably_identical(self, tmp_path):
        plain = compare(build_sb1, block_size=16, grid_dim=1, seed=SEED)
        _cold(CompileCache(disk=tmp_path))
        warm = _cold(CompileCache(disk=tmp_path))
        assert warm.baseline.cycles == plain.baseline.cycles
        assert warm.melded.cycles == plain.melded.cycles
        assert warm.melds == plain.melds
        assert warm.baseline.as_dict() == plain.baseline.as_dict()
        assert warm.melded.as_dict() == plain.melded.as_dict()


# ---------------------------------------------------------------------------
# environment / observability


class TestFromEnv:
    def test_env_var_names_the_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        cache = CompileCache.from_env()
        assert cache.disk is not None
        assert cache.disk.path == tmp_path

    @pytest.mark.parametrize("value", ["off", "0", "none", "OFF", ""])
    def test_off_values_disable_disk(self, value, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert CompileCache.from_env("ignored-default").disk is None

    def test_unset_falls_back_to_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert CompileCache.from_env().disk is None
        cache = CompileCache.from_env(str(tmp_path))
        assert cache.disk is not None


class TestObservability:
    def test_hit_and_miss_instants(self):
        cache = CompileCache()
        with trace() as tracer:
            _cold(cache)
        names = [e["name"] for e in tracer.events]
        misses = [e for e in tracer.events
                  if e["name"] == "compile-cache:miss"]
        hits = [e for e in tracer.events if e["name"] == "compile-cache:hit"]
        assert len(misses) == 2 and len(hits) == 1
        assert names.index("compile-cache:miss") < \
            names.index("compile-cache:hit")
        hit = hits[0]
        assert hit["args"]["pipeline"] == "o3"
        assert hit["args"]["source"] == "memory"
        assert len(hit["args"]["digest"]) == 12

    def test_disk_hits_are_attributed_to_disk(self, tmp_path):
        _cold(CompileCache(disk=tmp_path))
        with trace() as tracer:
            _cold(CompileCache(disk=tmp_path))
        hits = [e for e in tracer.events if e["name"] == "compile-cache:hit"]
        assert [h["args"]["source"] for h in hits] == ["disk", "disk"]

    def test_replayed_pass_spans_are_flagged_cached(self, tmp_path):
        _cold(CompileCache(disk=tmp_path))
        with trace() as tracer:
            _cold(CompileCache(disk=tmp_path))
        spans = [e for e in tracer.events
                 if e["name"].startswith("pass:") and e.get("ph") == "X"]
        assert spans
        assert all(e["args"].get("cached") for e in spans)
