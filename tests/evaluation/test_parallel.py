"""Tests for the parallel sweep engine, the compile cache and the
structured sweep trace."""

import json
import time

import pytest

from repro.evaluation import (
    SWEEP_TRACE_SCHEMA,
    Comparison,
    CompileCache,
    CompileResult,
    ParallelRunner,
    SweepError,
    SweepTask,
    SweepTraceCollector,
    compare,
    run_sweep,
    run_task,
)
from repro.evaluation.reporting import _table
from repro.kernels import build_bitonic, build_sb1
from repro.simt import Metrics


# ---- builders for fault-injection (module-level: must be importable in
# ---- worker processes regardless of the start method) -----------------------


def hanging_builder(block_size=16, grid_dim=1):
    time.sleep(60)


def crashing_builder(block_size=16, grid_dim=1):
    raise RuntimeError("injected compile failure")


SEED = 99


def _row_key(row):
    return (row.kernel, row.block_size, row.speedup, row.melds,
            row.baseline_cycles, row.cfm_cycles)


class TestCompileCache:
    def test_second_arm_hits_cache(self):
        cache = CompileCache()
        comparison = compare(build_sb1, block_size=16, grid_dim=1,
                             seed=SEED, cache=cache)
        # Cold: baseline misses "o3" and populates it; the CFM arm
        # misses its full-pipeline key, then replays the shared O3 run.
        assert cache.misses == 2
        assert cache.hits == 1
        assert not comparison.baseline_compile.o3_cached
        assert comparison.cfm_compile.o3_cached
        assert not comparison.cfm_compile.cfm_cached

    def test_warm_comparison_replays_both_arms(self):
        cache = CompileCache()
        cold = compare(build_sb1, block_size=16, grid_dim=1,
                       seed=SEED, cache=cache)
        warm = compare(build_sb1, block_size=16, grid_dim=1,
                       seed=SEED, cache=cache)
        # Warm: both arms replay outright — the CFM arm from the
        # full-pipeline entry, no pass runs at all.
        assert cache.hits == 3 and cache.misses == 2
        assert warm.baseline_compile.o3_cached
        assert warm.cfm_compile.cfm_cached
        assert warm.baseline.cycles == cold.baseline.cycles
        assert warm.melded.cycles == cold.melded.cycles
        assert warm.melds == cold.melds
        # Replayed stats/timings report the original run's numbers.
        assert warm.cfm_compile.o3_seconds == cold.cfm_compile.o3_seconds
        assert warm.cfm_compile.cfm_seconds == cold.cfm_compile.cfm_seconds
        assert all(t.cached for t in warm.cfm_compile.pass_timings)

    def test_cached_compile_is_observably_identical(self):
        plain = compare(build_sb1, block_size=16, grid_dim=1, seed=SEED)
        cached = compare(build_sb1, block_size=16, grid_dim=1, seed=SEED,
                         cache=CompileCache())
        assert plain.baseline.cycles == cached.baseline.cycles
        assert plain.melded.cycles == cached.melded.cycles
        assert plain.melds == cached.melds

    def test_cache_replays_reported_o3_seconds(self):
        cache = CompileCache()
        comparison = compare(build_sb1, block_size=16, grid_dim=1,
                             seed=SEED, cache=cache)
        # The CFM arm reports the original run's cost, not ~0.
        assert comparison.cfm_compile.o3_seconds == \
            comparison.baseline_compile.o3_seconds


class TestComparisonProperties:
    def test_speedup_and_melds(self):
        baseline = Metrics(cycles=2000)
        melded = Metrics(cycles=1000)
        comparison = Comparison(
            name="X", block_size=32, baseline=baseline, melded=melded,
            baseline_compile=CompileResult(o3_seconds=0.1),
            cfm_compile=CompileResult(o3_seconds=0.1, cfm_seconds=0.2))
        assert comparison.speedup == 2.0
        assert comparison.melds == 0  # no CFM stats recorded

    def test_melds_counts_records(self):
        result = compare(build_sb1, block_size=16, grid_dim=1, seed=SEED)
        assert result.melds == len(result.cfm_compile.cfm_stats.melds)


class TestParallelRunner:
    def test_parallel_matches_serial(self):
        builders = {"SB1": build_sb1, "BIT": build_bitonic}
        sizes = {"SB1": [16, 32], "BIT": [16]}
        serial = run_sweep(builders, sizes, grid_dim=1, seed=SEED, workers=1)
        parallel = run_sweep(builders, sizes, grid_dim=1, seed=SEED, workers=2)
        assert [_row_key(r) for r in serial] == [_row_key(r) for r in parallel]

    def test_results_are_ordered_by_task_index(self):
        tasks = [SweepTask(kernel="SB1", builder=build_sb1, block_size=bs,
                           grid_dim=1, seed=SEED) for bs in (16, 32, 64)]
        results = ParallelRunner(workers=3).run(tasks)
        assert [r.index for r in results] == [0, 1, 2]
        assert [r.block_size for r in results] == [16, 32, 64]
        assert all(r.ok for r in results)

    def test_timeout_terminates_and_retries_once(self):
        tasks = [SweepTask(kernel="HANG", builder=hanging_builder,
                           block_size=16, grid_dim=1, seed=SEED)]
        start = time.monotonic()
        results = ParallelRunner(workers=2, timeout=0.5).run(tasks)
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 60s sleep
        (result,) = results
        assert not result.ok
        assert result.attempts == 2  # retried once, then reported
        assert "timed out" in result.error

    def test_crash_is_reported_not_raised(self):
        tasks = [
            SweepTask(kernel="SB1", builder=build_sb1, block_size=16,
                      grid_dim=1, seed=SEED),
            SweepTask(kernel="BOOM", builder=crashing_builder,
                      block_size=16, grid_dim=1, seed=SEED),
        ]
        results = ParallelRunner(workers=2).run(tasks)
        assert results[0].ok
        assert not results[1].ok
        assert "injected compile failure" in results[1].error
        assert results[1].attempts == 2

    def test_run_sweep_raises_on_failure(self):
        with pytest.raises(SweepError, match="injected compile failure"):
            run_sweep({"BOOM": crashing_builder}, {"BOOM": [16]},
                      grid_dim=1, seed=SEED)

    def test_empty_task_list(self):
        assert ParallelRunner(workers=4).run([]) == []


class TestSweepTrace:
    def test_trace_schema(self, tmp_path):
        task = SweepTask(kernel="SB1", builder=build_sb1, block_size=16,
                         grid_dim=1, seed=SEED)
        result = run_task(task)
        collector = SweepTraceCollector(workers=1)
        collector.record("figure7", [result])
        path = tmp_path / "sweep_trace.json"
        collector.write(str(path))

        payload = json.loads(path.read_text())
        assert payload["schema"] == SWEEP_TRACE_SCHEMA
        assert payload["workers"] == 1
        assert payload["task_count"] == 1
        (entry,) = payload["sections"]["figure7"]
        assert entry["kernel"] == "SB1" and entry["block_size"] == 16
        assert entry["ok"] and entry["attempts"] == 1
        assert entry["speedup"] > 0 and entry["melds"] > 0
        assert entry["compile_cache"] == {"hits": 1, "misses": 2}
        # Per-pass events carry timing + IR size stats for both arms.
        for arm in ("baseline", "cfm"):
            passes = entry["compile"][arm]["passes"]
            assert passes, arm
            for event in passes:
                assert {"pass", "seconds", "changed"} <= set(event)
                assert event["blocks_before"] >= 1
                assert event["instructions_after"] >= 1
        assert entry["compile"]["cfm"]["o3_cached"] is True
        # Metrics round-trip through their serialized form.
        metrics = Metrics.from_dict(entry["baseline_metrics"])
        assert metrics.as_dict() == entry["baseline_metrics"]

    def test_failed_task_entry(self):
        tasks = [SweepTask(kernel="BOOM", builder=crashing_builder,
                           block_size=16, grid_dim=1, seed=SEED)]
        (result,) = ParallelRunner(workers=2).run(tasks)
        collector = SweepTraceCollector()
        collector.record("sweep", [result])
        (entry,) = collector.payload()["sections"]["sweep"]
        assert entry["ok"] is False
        assert "injected compile failure" in entry["error"]
        json.dumps(collector.payload())  # serializable even on failure


class TestTableFormatting:
    def test_table_with_empty_rows(self):
        text = _table(["kernel", "speedup"], [])
        lines = text.splitlines()
        assert lines[0].split() == ["kernel", "speedup"]
        assert len(lines) == 2  # header + rule, no row lines

    def test_table_pads_to_widest_cell(self):
        text = _table(["k", "v"], [["LONGNAME", "1"]])
        assert "LONGNAME" in text
        header = text.splitlines()[0]
        assert header.startswith("k       ")
