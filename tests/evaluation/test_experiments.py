"""Tests for the evaluation harness and the paper's expected shapes.

These tests run small versions of each experiment and assert the
qualitative claims of §VI — the reproduction's headline checks.
"""

import pytest

from repro.evaluation import (
    best_improvement_rows,
    compare,
    counters,
    geomean,
    run_sweep,
    table1,
    table2,
)
from repro.evaluation.experiments import DEFAULT_SEED
from repro.kernels import (
    REAL_WORLD_BUILDERS,
    SYNTHETIC_BUILDERS,
    build_bitonic,
    build_dct,
    build_lud,
)


@pytest.fixture(scope="module")
def synthetic_rows():
    return run_sweep(SYNTHETIC_BUILDERS,
                     {name: [16, 32] for name in SYNTHETIC_BUILDERS},
                     grid_dim=1, seed=DEFAULT_SEED)


@pytest.fixture(scope="module")
def real_rows():
    sizes = {"LUD": [16, 32, 128], "BIT": [16, 32], "DCT": [32, 64],
             "MS": [16, 32], "PCM": [16, 32]}
    return run_sweep(REAL_WORLD_BUILDERS, sizes, grid_dim=1, seed=DEFAULT_SEED)


class TestGeomean:
    def test_geomean_basics(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.5]) == pytest.approx(1.5)

    def test_geomean_empty_raises(self):
        # The old 0.0 fallback silently zeroed GM columns in reports.
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.2, 0.0])
        with pytest.raises(ValueError):
            geomean([1.2, -3.0])

    def test_geomean_long_sweep_no_overflow(self):
        # A naive running product overflows to inf here; log-domain
        # summation keeps the result finite and exact.
        assert geomean([1e100] * 400) == pytest.approx(1e100, rel=1e-9)
        assert geomean([1e-100] * 400) == pytest.approx(1e-100, rel=1e-9)


class TestFigure7Shapes:
    """Paper claims for the synthetic benchmarks (§VI-B, Figure 7)."""

    def test_cfm_always_at_least_breaks_even(self, synthetic_rows):
        for row in synthetic_rows:
            assert row.speedup > 0.95, f"{row.label}: {row.speedup}"

    def test_geomean_speedup_positive(self, synthetic_rows):
        assert geomean([r.speedup for r in synthetic_rows]) > 1.05

    def test_exact_variants_beat_randomized(self, synthetic_rows):
        by_key = {(r.kernel, r.block_size): r.speedup for r in synthetic_rows}
        for base in ("SB1", "SB2", "SB3"):
            for block in (16, 32):
                assert by_key[(base, block)] >= by_key[(f"{base}-R", block)], \
                    f"{base} vs {base}-R at block {block}"

    def test_sb3_melds_most_pairs(self, synthetic_rows):
        melds = {}
        for row in synthetic_rows:
            melds.setdefault(row.kernel, row.melds)
        assert melds["SB3"] > melds["SB1"]
        assert melds["SB3"] > melds["SB2"]


class TestFigure8Shapes:
    """Paper claims for the real benchmarks (§VI-B, Figure 8)."""

    def test_geomean_speedup_positive(self, real_rows):
        assert geomean([r.speedup for r in real_rows]) > 1.0

    def test_no_meaningful_slowdowns(self, real_rows):
        for row in real_rows:
            assert row.speedup > 0.93, f"{row.label}: {row.speedup}"

    def test_bit_and_pcm_have_high_speedups(self, real_rows):
        speedups = {}
        for row in real_rows:
            speedups.setdefault(row.kernel, []).append(row.speedup)
        assert max(speedups["BIT"]) > 1.15
        assert max(speedups["PCM"]) > 1.15

    def test_dct_speedup_is_smallest(self, real_rows):
        best = {}
        for row in real_rows:
            best[row.kernel] = max(best.get(row.kernel, 0.0), row.speedup)
        assert best["DCT"] == min(best.values())

    def test_lud_no_slowdown_when_convergent(self, real_rows):
        # At block sizes >= 128 the row/column split aligns with warp
        # boundaries: the branch is still *statically* divergent (CFM
        # melds it) but *dynamically* convergent, and the paper reports
        # CFM causing no slowdown in that configuration (±2% here).
        convergent = [r for r in real_rows
                      if r.kernel == "LUD" and r.block_size >= 128]
        assert convergent
        for row in convergent:
            assert 0.97 <= row.speedup <= 1.03

    def test_lud_speedup_only_when_divergent(self, real_rows):
        by_block = {r.block_size: r.speedup
                    for r in real_rows if r.kernel == "LUD"}
        # Divergent small blocks improve visibly; convergent ones do not.
        assert by_block[16] > 1.1 and by_block[32] > 1.1
        assert by_block[128] < 1.05


class TestFigures9And10Shapes:
    def test_alu_utilization_improves_except_possibly_bit(self, real_rows,
                                                          synthetic_rows):
        rows = counters(best_improvement_rows(synthetic_rows + real_rows))
        for row in rows:
            if row.kernel == "BIT":
                continue  # §VI-C: bitonic's ALU utilization may drop
            assert row.cfm_alu_utilization >= row.baseline_alu_utilization, \
                row.kernel

    def test_shared_memory_counts_drop_for_lds_kernels(self, real_rows,
                                                       synthetic_rows):
        rows = {r.kernel: r for r in
                counters(best_improvement_rows(synthetic_rows + real_rows))}
        for kernel in ("SB1", "SB2", "SB3", "BIT", "PCM"):
            assert rows[kernel].normalized_shared_memory < 1.0, kernel

    def test_exact_variants_reduce_lds_more_than_randomized(self,
                                                            synthetic_rows):
        rows = {r.kernel: r for r in
                counters(best_improvement_rows(synthetic_rows))}
        for base in ("SB1", "SB2", "SB3"):
            assert rows[base].normalized_shared_memory <= \
                rows[f"{base}-R"].normalized_shared_memory


class TestTable1Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1()

    def matrix(self, rows):
        return {(r.pattern, r.technique): r for r in rows}

    def test_all_outputs_correct(self, rows):
        for row in rows:
            assert row.outputs_correct, f"{row.pattern}/{row.technique}"

    def test_capability_matrix_matches_paper(self, rows):
        m = self.matrix(rows)
        # Row 1: everyone handles the identical diamond.
        assert m[("diamond-identical", "tail-merging")].melds
        assert m[("diamond-identical", "branch-fusion")].melds
        assert m[("diamond-identical", "cfm")].melds
        # Row 2: tail merging fails on distinct sequences.
        assert not m[("diamond-distinct", "tail-merging")].melds
        assert m[("diamond-distinct", "branch-fusion")].melds
        assert m[("diamond-distinct", "cfm")].melds
        # Row 3: only CFM handles complex control flow.
        assert not m[("complex", "tail-merging")].melds
        assert not m[("complex", "branch-fusion")].melds
        assert m[("complex", "cfm")].melds


class TestTable2Shape:
    def test_compile_overhead_ranking(self):
        rows = {r.kernel: r for r in table2(block_size=32, repeats=1)}
        # §VI-E: LUD (long NW alignments) and PCM (many subgraph pairs)
        # have the largest CFM compile overheads.
        others = [rows[k].normalized for k in ("DCT", "MS")]
        assert rows["LUD"].normalized > max(others)
        assert rows["PCM"].normalized > max(others)

    def test_all_rows_present(self):
        rows = table2(repeats=1)
        assert {r.kernel for r in rows} == set(REAL_WORLD_BUILDERS)
        for row in rows:
            assert row.o3_seconds > 0
            assert row.cfm_seconds > 0
