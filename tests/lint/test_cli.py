"""``python -m repro.lint`` CLI: selection, exit codes, artifacts."""

import json

import pytest

from repro.lint.cli import run


class TestSelection:
    def test_clean_kernels_exit_zero(self, capsys):
        assert run(["--kernels", "SB1", "--levels", "noopt,o3"]) == 0
        out = capsys.readouterr().out
        assert "linted 1 kernel(s) x 2 level(s)" in out
        assert "0 error(s)" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit, match="unknown kernels"):
            run(["--kernels", "NOPE"])

    def test_unknown_level_rejected(self):
        with pytest.raises(SystemExit, match="unknown levels"):
            run(["--kernels", "SB1", "--levels", "O11"])


class TestArtifacts:
    def test_sarif_and_json_written(self, tmp_path, capsys):
        sarif = tmp_path / "r.sarif"
        raw = tmp_path / "r.json"
        code = run(["--kernels", "SB1,BIT", "--levels", "o3-cfm",
                    "--sarif", str(sarif), "--json", str(raw)])
        assert code == 0
        doc = json.loads(sarif.read_text())
        assert doc["version"] == "2.1.0"
        payload = json.loads(raw.read_text())
        assert [(r["kernel"], r["level"]) for r in payload["reports"]] == [
            ("SB1", "o3-cfm"), ("BIT", "o3-cfm")]
        assert all(r["ok"] for r in payload["reports"])


class TestFlags:
    def test_disable_is_threaded_through(self, capsys):
        code = run(["--kernels", "SB1", "--levels", "noopt",
                    "--disable", "dead-store,undef-use"])
        assert code == 0

    def test_fail_on_severity_is_validated(self):
        with pytest.raises(SystemExit):
            run(["--fail-on", "catastrophic"])

    def test_main_exits_with_run_status(self):
        from repro.lint.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["--kernels", "SB1", "--levels", "noopt"])
        assert exc.value.code == 0
