"""Registry, context, configuration, report algebra, obs integration."""

import pytest

import repro
from repro.lint import (
    Diagnostic,
    LintConfig,
    LintReport,
    LintRule,
    Severity,
    all_rules,
    get_rule,
    register,
    resolve_rules,
    run_lint,
    worst_severity,
)
from repro.lint.engine import REGISTRY, LintContext
from repro.obs import Tracer, use as use_tracer

from tests.support import build_diamond, parse


class TestRegistry:
    def test_all_rules_sorted_by_id(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        assert {"barrier-divergence", "shared-memory-race", "undef-use",
                "dead-store", "unreachable-block",
                "meld-legality"} <= set(ids)

    def test_get_rule_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            get_rule("nonsense")

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @register
            class Clash(LintRule):
                id = "dead-store"
        assert REGISTRY["dead-store"].__class__.__name__ != "Clash"

    def test_missing_id_rejected(self):
        with pytest.raises(ValueError, match="must set a rule id"):
            @register
            class NoId(LintRule):
                pass

    def test_resolve_mixed_names_and_instances(self):
        rule = get_rule("undef-use")
        resolved = resolve_rules(["dead-store", rule])
        assert [r.id for r in resolved] == ["dead-store", "undef-use"]


class TestLintContext:
    def test_divergence_shares_function_memo(self):
        f = build_diamond()
        ctx = LintContext(f)
        assert ctx.divergence is repro.analyze(f)

    def test_analyses_memoized_per_context(self):
        ctx = LintContext(build_diamond())
        assert ctx.dominators is ctx.dominators
        assert ctx.control_dependence is ctx.control_dependence
        assert ctx.reachable is ctx.reachable

    def test_divergence_guarded(self):
        f = build_diamond()
        ctx = LintContext(f)
        then_block = f.entry.succs[0]
        assert ctx.divergence_guarded(then_block)
        assert not ctx.divergence_guarded(f.entry)


class TestConfig:
    def test_disabled_rule_does_not_run(self):
        f = parse("""
define void @k() {
entry:
  ret void
orphan:
  ret void
}
""")
        report = run_lint(f, config=LintConfig(disabled={"unreachable-block"}))
        assert "unreachable-block" not in report.rules_run
        assert report.by_rule("unreachable-block") == []

    def test_severity_override_promotes(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 1, i32 addrspace(1)* %g
  store i32 2, i32 addrspace(1)* %g
  ret void
}
""")
        config = LintConfig(severity_overrides={"dead-store": Severity.ERROR})
        report = run_lint(f, rules=["dead-store"], config=config)
        assert not report.ok

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError, match="bad severity"):
            LintConfig(severity_overrides={"dead-store": "fatal"})


def _diag(rule="dead-store", severity=Severity.ERROR, block="b"):
    return Diagnostic(rule=rule, severity=severity, message="m",
                      function="k", block=block)


class TestReportAlgebra:
    def test_new_errors_compares_by_rule_id(self):
        baseline = LintReport("k", diagnostics=[_diag(block="old")])
        moved = LintReport("k", diagnostics=[_diag(block="renamed")])
        # Same rule, different block: a finding that moved is NOT new.
        assert moved.new_errors(baseline) == []
        fresh = LintReport("k", diagnostics=[
            _diag(block="old"), _diag(rule="barrier-divergence")])
        assert [d.rule for d in fresh.new_errors(baseline)] == [
            "barrier-divergence"]

    def test_warnings_never_count_as_new_errors(self):
        baseline = LintReport("k")
        later = LintReport("k",
                           diagnostics=[_diag(severity=Severity.WARNING)])
        assert later.new_errors(baseline) == []
        assert later.ok

    def test_worst_severity(self):
        assert worst_severity([]) is None
        assert worst_severity([_diag(severity=Severity.WARNING),
                               _diag(severity=Severity.ERROR)]) == "error"

    def test_render_and_dict(self):
        report = LintReport("k", diagnostics=[_diag()], rules_run=["x"])
        assert "error[dead-store] @k:%b" in report.render()
        record = report.as_dict()
        assert record["counts"] == {"error": 1, "warning": 0, "info": 0}
        assert record["ok"] is False


class TestObsIntegration:
    def test_diagnostics_emitted_as_lint_instants(self):
        f = parse("""
define void @k() {
entry:
  ret void
orphan:
  ret void
}
""")
        tracer = Tracer()
        with use_tracer(tracer):
            run_lint(f)
        instants = [e for e in tracer.events
                    if e.get("name", "").startswith("lint:")]
        assert len(instants) == 1
        assert instants[0]["name"] == "lint:unreachable-block"
        assert instants[0]["cat"] == "lint"
        assert instants[0]["args"]["block"] == "orphan"

    def test_no_tracer_no_events(self):
        # NullTracer path: nothing recorded, nothing crashes.
        run_lint(build_diamond())
