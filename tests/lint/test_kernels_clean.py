"""Acceptance gate: every benchmark kernel is lint-clean at every level.

This is the standing contract every future transform PR inherits: the
paper's kernels carry no error-severity diagnostic before OR after any
of the five compile pipelines (no-opt, -O3, -O3+CFM, tail-merging,
branch-fusion).  A new rule or a new pass that breaks this must either
fix the IR or justify a suppression here.
"""

import pytest

import repro
from repro.lint import LINT_LEVELS, lint_at_level


@pytest.mark.parametrize("name", sorted(repro.ALL_BUILDERS))
@pytest.mark.parametrize("level", LINT_LEVELS)
def test_kernel_lint_clean(name, level):
    case = repro.ALL_BUILDERS[name]()
    report = lint_at_level(case, level)
    assert report.ok, (
        f"{name} @ {level}:\n{report.render()}")


def test_levels_cover_the_difftest_matrix():
    # The lint sweep and the difftest oracle must gate the same arms.
    from repro.difftest.oracle import ALL_ARMS
    assert set(LINT_LEVELS) == set(ALL_ARMS)
