"""Each built-in rule: one minimal triggering kernel + one clean twin.

The triggering kernels here are the same ones docs/lint.md's rule
catalog shows — keep the two in sync.
"""

import repro
from repro.lint import run_lint
from repro.obs import MeldingDecision

from tests.support import parse


def _diamond_with_barrier(guarded: bool):
    """Barrier either under a divergent if (guarded) or at top level."""
    k = repro.KernelBuilder("k", params=[("data", repro.GLOBAL_I32_PTR)])
    tid = k.thread_id()
    odd = k.icmp(repro.ICmpPredicate.EQ, k.and_(tid, k.const(1)), k.const(1))
    if guarded:
        k.if_(odd, lambda: k.barrier())
    else:
        k.if_(odd, lambda: k.store_at(k.param("data"), tid, tid))
        k.barrier()
    k.finish()
    return k.function


class TestBarrierDivergence:
    def test_barrier_under_divergent_if_is_error(self):
        report = run_lint(_diamond_with_barrier(guarded=True))
        findings = report.by_rule("barrier-divergence")
        assert len(findings) == 1
        assert findings[0].is_error
        assert "divergent" in findings[0].message

    def test_top_level_barrier_is_clean(self):
        report = run_lint(_diamond_with_barrier(guarded=False))
        assert report.by_rule("barrier-divergence") == []
        assert report.ok

    def test_barrier_in_divergently_exiting_loop_is_error(self):
        # The loop body is control-dependent on the divergent exit: part
        # of the warp may still be looping when the rest has left.
        f = parse("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  call void @llvm.gpu.barrier()
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %tid
  br i1 %c, label %h, label %x
x:
  ret void
}
""")
        report = run_lint(f, rules=["barrier-divergence"])
        assert len(report.by_rule("barrier-divergence")) == 1

    def test_barrier_in_uniform_loop_is_clean(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  call void @llvm.gpu.barrier()
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %n
  br i1 %c, label %h, label %x
x:
  ret void
}
""")
        report = run_lint(f, rules=["barrier-divergence"])
        assert report.ok


def _staged_kernel(with_barrier: bool, neighbour: str = "mul"):
    """store shared[tid]; [barrier]; load shared[<neighbour index>]."""
    k = repro.KernelBuilder("k", params=[("data", repro.GLOBAL_I32_PTR)])
    tid = k.thread_id()
    buf = k.shared_array("buf", repro.I32, 64)
    k.store_at(buf, tid, k.load_at(k.param("data"), tid))
    if with_barrier:
        k.barrier()
    if neighbour == "mul":
        index = k.mul(tid, k.const(2))       # different divergent term
    elif neighbour == "bucket":
        index = k.add(tid, k.const(1))       # same term + uniform offset
    else:
        index = tid                           # same term exactly
    k.store_at(k.param("data"), tid, k.load_at(buf, index))
    k.finish()
    return k.function


class TestSharedMemoryRace:
    def test_unbarriered_neighbour_load_is_error(self):
        report = run_lint(_staged_kernel(with_barrier=False))
        findings = report.by_rule("shared-memory-race")
        assert len(findings) == 1
        assert findings[0].is_error
        assert "'buf'" in findings[0].message

    def test_barrier_cuts_the_race(self):
        assert run_lint(_staged_kernel(with_barrier=True)).ok

    def test_same_divergent_term_is_thread_private(self):
        # add(tid, 1) shares tid with the store index: each thread stays
        # in its own slot group — the generator's bucket discipline.
        assert run_lint(_staged_kernel(False, neighbour="bucket")).ok

    def test_same_index_value_is_clean(self):
        assert run_lint(_staged_kernel(False, neighbour="same")).ok

    def test_uniform_store_index_is_clean(self):
        f = parse("""
define void @k(i32 addrspace(3)* %buf) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %p0 = getelementptr i32, i32 addrspace(3)* %buf, i32 0
  store i32 7, i32 addrspace(3)* %p0
  %pt = getelementptr i32, i32 addrspace(3)* %buf, i32 %tid
  %v = load i32, i32 addrspace(3)* %pt
  ret void
}
""")
        assert run_lint(f, rules=["shared-memory-race"]).ok


class TestUndefUse:
    def test_branch_on_undef_is_error(self):
        f = parse("""
define void @k() {
entry:
  br i1 undef, label %a, label %b
a:
  br label %b
b:
  ret void
}
""")
        findings = run_lint(f, rules=["undef-use"]).by_rule("undef-use")
        assert len(findings) == 1
        assert findings[0].is_error

    def test_select_on_undef_is_warning(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %v = select i1 undef, i32 1, i32 2
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 %v, i32 addrspace(1)* %g
  ret void
}
""")
        findings = run_lint(f, rules=["undef-use"]).by_rule("undef-use")
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_store_of_undef_is_warning(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 undef, i32 addrspace(1)* %g
  ret void
}
""")
        report = run_lint(f, rules=["undef-use"])
        assert len(report.warnings) == 1

    def test_phi_undef_incoming_exempt(self):
        # SSA repair and unpredication create these legally (Fig. 3c).
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %a, label %m
a:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ undef, %entry ]
  ret void
}
""")
        assert run_lint(f, rules=["undef-use"]).diagnostics == []


class TestDeadStore:
    def test_overwritten_store_is_warning(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 1, i32 addrspace(1)* %g
  store i32 2, i32 addrspace(1)* %g
  ret void
}
""")
        findings = run_lint(f, rules=["dead-store"]).by_rule("dead-store")
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_intervening_load_clears(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %g = getelementptr i32, i32 addrspace(1)* %p, i32 0
  store i32 1, i32 addrspace(1)* %g
  %v = load i32, i32 addrspace(1)* %g
  store i32 2, i32 addrspace(1)* %g
  ret void
}
""")
        assert run_lint(f, rules=["dead-store"]).diagnostics == []


class TestUnreachableBlock:
    def test_orphan_block_is_warning(self):
        f = parse("""
define void @k() {
entry:
  ret void
orphan:
  ret void
}
""")
        findings = run_lint(f).by_rule("unreachable-block")
        assert [d.block for d in findings] == ["orphan"]


GUARDED = """
define void @k(i1 %c) {
entry:
  br i1 %c, label %g, label %m
g:
  br label %m
m:
  ret void
}
"""

UNGUARDED = """
define void @k() {
entry:
  br label %g
g:
  br label %m
m:
  ret void
}
"""


def _decision(**overrides):
    base = dict(iteration=1, region_entry="entry", action="melded",
                reason="", threshold=0.1)
    base.update(overrides)
    return MeldingDecision(**base)


class TestMeldLegality:
    def test_uniform_branch_meld_is_error(self):
        f = parse(GUARDED)
        report = run_lint(f, rules=["meld-legality"],
                          decisions=[_decision(branch_divergent=False)])
        findings = report.by_rule("meld-legality")
        assert len(findings) == 1
        assert "uniform" in findings[0].message

    def test_divergent_branch_meld_is_clean(self):
        f = parse(GUARDED)
        report = run_lint(f, rules=["meld-legality"],
                          decisions=[_decision(branch_divergent=True)])
        assert report.ok

    def test_guard_block_must_sit_behind_conditional(self):
        bad = run_lint(parse(UNGUARDED), rules=["meld-legality"],
                       decisions=[_decision(branch_divergent=True,
                                            guard_blocks=["g"])])
        assert len(bad.by_rule("meld-legality")) == 1
        good = run_lint(parse(GUARDED), rules=["meld-legality"],
                        decisions=[_decision(branch_divergent=True,
                                             guard_blocks=["g"])])
        assert good.ok

    def test_vanished_guard_block_skipped(self):
        # A later pass may fold the guard away entirely — nothing to audit.
        report = run_lint(parse(GUARDED), rules=["meld-legality"],
                          decisions=[_decision(branch_divergent=True,
                                               guard_blocks=["gone"])])
        assert report.ok

    def test_rejected_decisions_not_audited(self):
        report = run_lint(
            parse(GUARDED), rules=["meld-legality"],
            decisions=[_decision(action="rejected-unprofitable",
                                 branch_divergent=False)])
        assert report.ok

    def test_cfm_compile_decisions_audit_clean(self):
        # End to end: a real compile's decision log passes its own audit.
        case = repro.ALL_BUILDERS["SB1"]()
        compiled = repro.compile(case, cfm=True)
        assert compiled.melds > 0
        report = repro.lint(compiled)
        assert "meld-legality" in report.rules_run
        assert report.ok


def _indexed_shared_kernel(index_kind: str):
    """Access an 8-element shared array through a range-analyzable index."""
    k = repro.KernelBuilder("k", params=[("data", repro.GLOBAL_I32_PTR)])
    tid = k.thread_id()
    buf = k.shared_array("buf", repro.I32, 8)
    if index_kind == "oob":
        index = k.add(k.and_(tid, k.const(3)), k.const(16))   # [16, 19]
    elif index_kind == "masked":
        index = k.and_(tid, k.const(7))                        # [0, 7]
    else:
        index = tid                                            # [0, +max]
    k.store_at(buf, index, tid)
    k.barrier()
    k.store_at(k.param("data"), tid, k.load_at(buf, index))
    k.finish()
    return k.function


class TestOutOfBoundsAccess:
    def test_provably_oob_index_is_error(self):
        report = run_lint(_indexed_shared_kernel("oob"),
                          rules=["out-of-bounds-access"])
        findings = report.by_rule("out-of-bounds-access")
        # Both the staging store and the permuted load use the index.
        assert len(findings) == 2
        assert all(f.is_error for f in findings)
        assert "@buf[0..7]" in findings[0].message
        assert findings[0].data["element_count"] == 8

    def test_masked_index_is_clean(self):
        report = run_lint(_indexed_shared_kernel("masked"),
                          rules=["out-of-bounds-access"])
        assert report.by_rule("out-of-bounds-access") == []
        assert report.ok

    def test_unprovable_index_is_not_accused(self):
        # tid's interval overlaps [0, 7]: possibly in bounds, no claim.
        report = run_lint(_indexed_shared_kernel("raw"),
                          rules=["out-of-bounds-access"])
        assert report.by_rule("out-of-bounds-access") == []


def _branch_kernel(decided: bool):
    k = repro.KernelBuilder("k", params=[("data", repro.GLOBAL_I32_PTR)])
    tid = k.thread_id()
    if decided:
        # tid is seeded non-negative: the guard can never be false.
        cond = k.icmp(repro.ICmpPredicate.SGE, tid, k.const(0))
    else:
        cond = k.icmp(repro.ICmpPredicate.EQ, k.and_(tid, k.const(1)),
                      k.const(0))
    k.if_(cond, lambda: k.store_at(k.param("data"), tid, tid))
    k.finish()
    return k.function


class TestTautologicalBranch:
    def test_always_true_guard_is_warned(self):
        report = run_lint(_branch_kernel(decided=True),
                          rules=["tautological-branch"])
        findings = report.by_rule("tautological-branch")
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "always true" in findings[0].message
        assert "statically dead" in findings[0].message
        assert findings[0].data["always"] is True
        # Warnings do not fail the report.
        assert report.ok

    def test_divergent_guard_is_clean(self):
        report = run_lint(_branch_kernel(decided=False),
                          rules=["tautological-branch"])
        assert report.by_rule("tautological-branch") == []


class TestMeldLegalityValidationAudit:
    def test_inequivalent_accepted_meld_is_error(self):
        report = run_lint(parse(GUARDED), rules=["meld-legality"],
                          decisions=[_decision(branch_divergent=True,
                                               validation="INEQUIVALENT")])
        findings = report.by_rule("meld-legality")
        assert len(findings) == 1
        assert "INEQUIVALENT" in findings[0].message

    def test_equivalent_verdict_is_clean(self):
        report = run_lint(parse(GUARDED), rules=["meld-legality"],
                          decisions=[_decision(branch_divergent=True,
                                               validation="EQUIVALENT")])
        assert report.ok

    def test_unsupported_verdict_is_not_a_conviction(self):
        report = run_lint(parse(GUARDED), rules=["meld-legality"],
                          decisions=[_decision(branch_divergent=True,
                                               validation="UNSUPPORTED")])
        assert report.ok
