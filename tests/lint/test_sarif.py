"""SARIF 2.1.0 output: structure, level mapping, logical locations."""

import json

from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    all_rules,
    to_sarif,
    write_sarif,
)


def _report():
    return LintReport("k", diagnostics=[
        Diagnostic(rule="barrier-divergence", severity=Severity.ERROR,
                   message="boom", function="k", block="then",
                   instruction="call void @llvm.gpu.barrier()"),
        Diagnostic(rule="dead-store", severity=Severity.WARNING,
                   message="dull", function="k", block=None,
                   data={"extra": 1}),
        Diagnostic(rule="unreachable-block", severity=Severity.INFO,
                   message="meh", function="k", block="x"),
    ])


class TestToSarif:
    def test_document_shape(self):
        doc = to_sarif([_report()])
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 3

    def test_rule_catalog_embedded(self):
        doc = to_sarif([])
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == [r.id for r in all_rules()]
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning", "note")

    def test_severity_level_mapping(self):
        results = to_sarif([_report()])["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning", "note"]

    def test_logical_locations(self):
        results = to_sarif([_report()])["runs"][0]["results"]
        with_block = results[0]["locations"][0]["logicalLocations"][0]
        assert with_block["fullyQualifiedName"] == "k:then"
        assert with_block["kind"] == "member"
        whole_fn = results[1]["locations"][0]["logicalLocations"][0]
        assert whole_fn["fullyQualifiedName"] == "k"
        assert whole_fn["kind"] == "function"

    def test_instruction_and_data_carried(self):
        results = to_sarif([_report()])["runs"][0]["results"]
        assert "llvm.gpu.barrier" in results[0]["message"]["text"]
        assert results[1]["properties"] == {"extra": 1}


class TestWriteSarif:
    def test_round_trips_as_json(self, tmp_path):
        path = tmp_path / "out.sarif"
        write_sarif(str(path), [_report()])
        doc = json.loads(path.read_text())
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"][0]["results"]) == 3
