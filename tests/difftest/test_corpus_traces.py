"""Corpus schema /2: per-arm traces embedded in entries, /1 back-compat."""

import json

import pytest

from repro.difftest import (
    arm_trace,
    generate_spec,
    inject,
    load_entry,
    run_oracle,
    write_entry,
)
from repro.difftest.corpus import ENTRY_SCHEMA, ENTRY_SCHEMA_V1


def first_failing(kind="mismatch", seeds=range(30)):
    for seed in seeds:
        verdict = run_oracle(generate_spec(seed))
        if any(f.kind == kind for f in verdict.failures):
            return generate_spec(seed), verdict
    return None, None


class TestArmTrace:
    def test_cfm_arm_trace_carries_spans_and_decisions(self):
        spec = generate_spec(0)
        record = arm_trace(spec, "o3-cfm")
        assert record["arm"] == "o3-cfm"
        assert any(e["name"].startswith("pass:") for e in record["events"])
        # Every melding decision is JSON-shaped (corpus entries are JSON).
        json.dumps(record["melding_decisions"])
        for decision in record["melding_decisions"]:
            assert decision["action"] in ("no-path-subgraphs",
                                          "no-meldable-pair",
                                          "rejected-unprofitable", "melded")

    def test_non_melding_arm_has_spans_but_no_decisions(self):
        record = arm_trace(generate_spec(0), "o3")
        assert record["events"]
        assert record["melding_decisions"] == []


class TestSchemaV2RoundTrip:
    def test_write_entry_embeds_traces(self, tmp_path):
        with inject("swap-select"):
            spec, verdict = first_failing()
            assert spec is not None, "swap-select never caught"
            failing_arms = sorted({f.arm for f in verdict.failures})
            traces = [arm_trace(spec, arm) for arm in failing_arms]
            path = write_entry(tmp_path, spec, verdict,
                               injected_bug="swap-select", traces=traces)
        data = json.loads(path.read_text())
        assert data["schema"] == ENTRY_SCHEMA
        assert len(data["traces"]) == len(failing_arms)
        entry = load_entry(path)
        assert [t["arm"] for t in entry.traces] == failing_arms
        assert all(t["events"] for t in entry.traces)

    def test_write_entry_without_traces_stays_v2_with_empty_list(
            self, tmp_path):
        with inject("swap-select"):
            spec, verdict = first_failing()
            assert spec is not None
            path = write_entry(tmp_path, spec, verdict)
        entry = load_entry(path)
        assert entry.traces == []


class TestSchemaV1BackCompat:
    def test_v1_entry_loads_with_empty_traces(self, tmp_path):
        spec = generate_spec(0)
        entry_v1 = {
            "schema": ENTRY_SCHEMA_V1,
            "name": "seed000000-mismatch",
            "spec": json.loads(spec.to_json()),
            "arms": ["noopt", "o3-cfm"],
            "input_seeds": [0, 1],
            "failures": ["[o3-cfm] mismatch: buffer 'g0'[0]"],
            "original_statements": spec.statement_count(),
            "statements": spec.statement_count(),
            "injected_bug": None,
        }
        path = tmp_path / "seed000000-mismatch.json"
        path.write_text(json.dumps(entry_v1))
        entry = load_entry(path)
        assert entry.name == "seed000000-mismatch"
        assert entry.spec == spec
        assert entry.traces == []

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro.difftest.corpus/99"}')
        with pytest.raises(ValueError, match="not a corpus entry"):
            load_entry(path)
