"""Printer/parser round-trip property on generated kernels.

For every fuzzer-generated kernel, ``parse(print(module))`` must yield a
module that (a) verifies and (b) simulates bit-identically to the
original.  The fuzzer corpus exercises far gnarlier CFGs (nested
divergence, loops, barriers, shared-memory globals) than the
hand-written parser tests, so this doubles as a stress test of the
textual IR format itself.
"""

from hypothesis import given, settings, strategies as st

from repro import (
    parse_module,
    print_module,
    run_kernel,
    verify_function,
)
from repro.difftest import build_kernel, generate_spec, make_inputs


def roundtrip_and_compare(seed):
    spec = generate_spec(seed)
    builder = build_kernel(spec)
    text = print_module(builder.module)

    reparsed = parse_module(text)
    for name in reparsed.functions:
        verify_function(reparsed.functions[name])
    assert print_module(reparsed) == text, "printing is not a fixpoint"

    args = make_inputs(spec, input_seed=0)
    buffers = {k: v for k, v in args.items() if isinstance(v, list)}
    scalars = {k: v for k, v in args.items() if not isinstance(v, list)}
    out_original, _ = run_kernel(
        builder.module, builder.function.name, spec.grid_dim, spec.block_dim,
        buffers={k: list(v) for k, v in buffers.items()}, scalars=scalars)
    out_reparsed, _ = run_kernel(
        reparsed, builder.function.name, spec.grid_dim, spec.block_dim,
        buffers={k: list(v) for k, v in buffers.items()}, scalars=scalars)
    assert out_original == out_reparsed, (
        f"seed {seed}: reparsed kernel computes different outputs")


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_print_parse_roundtrip_property(seed):
    roundtrip_and_compare(seed)


def test_print_parse_roundtrip_fixed_seeds():
    for seed in range(10):
        roundtrip_and_compare(seed)
