"""The differential oracle on a healthy compiler: all arms agree."""

import pytest

from repro.difftest import ALL_ARMS, generate_spec, run_oracle


class TestCleanOracle:
    @pytest.mark.parametrize("seed", range(20))
    def test_all_arms_agree(self, seed):
        verdict = run_oracle(generate_spec(seed))
        assert verdict.ok, [str(f) for f in verdict.failures]
        assert verdict.mismatches == 0
        assert verdict.verifier_failures == 0

    def test_every_pass_is_verified(self):
        verdict = run_oracle(generate_spec(0))
        for arm in ALL_ARMS:
            if arm == "noopt":
                continue
            assert verdict.arms[arm].verified_passes > 0, arm

    def test_melds_actually_happen_somewhere(self):
        melds = sum(run_oracle(generate_spec(seed)).arms["o3-cfm"].melds
                    for seed in range(15))
        assert melds > 0, "fuzzer corpus never triggers CFM — oracle is blind"

    def test_outputs_recorded_per_input_seed(self):
        verdict = run_oracle(generate_spec(1), input_seeds=(0, 1, 2))
        for arm, report in verdict.arms.items():
            assert report.outputs is not None, arm
            assert len(report.outputs) == 3

    def test_noopt_reference_always_included(self):
        verdict = run_oracle(generate_spec(2), arms=("o3-cfm",))
        assert "noopt" in verdict.arms
        assert verdict.ok

    def test_unknown_arm_rejected(self):
        with pytest.raises(ValueError, match="unknown arms"):
            run_oracle(generate_spec(0), arms=("noopt", "o4"))
