"""The kernel generator: deterministic, bounded, always well-formed."""

import pytest

from repro import print_function, verify_function
from repro.difftest import (
    KernelSpec,
    build_kernel,
    count_statements,
    generate_spec,
    make_inputs,
)

SEEDS = range(40)


class TestDeterminism:
    def test_same_seed_same_spec(self):
        for seed in (0, 7, 99, 12345):
            assert generate_spec(seed).to_json() == generate_spec(seed).to_json()

    def test_same_seed_same_ir(self):
        for seed in (0, 7, 99):
            first = print_function(build_kernel(generate_spec(seed)).function)
            second = print_function(build_kernel(generate_spec(seed)).function)
            assert first == second

    def test_different_seeds_differ(self):
        bodies = {generate_spec(seed).to_json() for seed in SEEDS}
        # Tiny grammars collide occasionally; near-total diversity is the bar.
        assert len(bodies) > len(SEEDS) * 0.9

    def test_inputs_deterministic_and_seed_sensitive(self):
        spec = generate_spec(3)
        assert make_inputs(spec, 0) == make_inputs(spec, 0)
        assert make_inputs(spec, 0) != make_inputs(spec, 1)


class TestSpecShape:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_kernels_verify(self, seed):
        spec = generate_spec(seed)
        builder = build_kernel(spec)
        verify_function(builder.function)

    def test_statement_budget_respected(self):
        for seed in SEEDS:
            spec = generate_spec(seed, max_statements=24)
            assert 1 <= spec.statement_count() <= 24

    def test_divergent_control_flow_is_generated(self):
        kinds = set()
        for seed in range(60):
            for stmt in generate_spec(seed).body:
                kinds.add(stmt["kind"])
        # The grammar must actually produce the paper's shapes.
        assert {"if", "op"} <= kinds
        assert kinds & {"for", "divloop"}

    def test_json_roundtrip(self):
        for seed in (0, 11, 29):
            spec = generate_spec(seed)
            again = KernelSpec.from_json(spec.to_json())
            assert again == spec

    def test_from_json_rejects_other_schemas(self):
        with pytest.raises(ValueError, match="not a kernel spec"):
            KernelSpec.from_json('{"schema": "something/else"}')

    def test_count_statements_recurses(self):
        body = [
            {"kind": "op"},
            {"kind": "if", "then": [{"kind": "op"}],
             "else": [{"kind": "op"}, {"kind": "op"}]},
            {"kind": "for", "body": [{"kind": "op"}]},
        ]
        assert count_statements(body) == 7
