"""Mutation tests: the harness must catch deliberately injected bugs.

This is the difftest suite testing *itself*: each named bug in
:mod:`repro.difftest.bugs` sabotages one transform, and the oracle must
flag it, the shrinker must reduce the witness to a small DSL program
(the acceptance bar is <= 12 statements), and the corpus must record a
replayable artifact.
"""

from pathlib import Path

import pytest

from repro.difftest import (
    KernelSpec,
    generate_spec,
    inject,
    load_entry,
    replay,
    run_oracle,
    shrink,
    write_entry,
)

#: plenty for each bug class to surface (both trigger within ~10 seeds)
SEED_HUNT = range(30)


def _first_failing(kind):
    for seed in SEED_HUNT:
        verdict = run_oracle(generate_spec(seed))
        if any(f.kind == kind for f in verdict.failures):
            return generate_spec(seed), verdict
    return None, None


class TestSwapSelect:
    """A silent miscompile: the melder picks the wrong path's value."""

    def test_caught_and_shrunk_to_small_repro(self):
        with inject("swap-select"):
            spec, verdict = _first_failing("mismatch")
            assert spec is not None, "swap-select never caught — oracle blind"

            result = shrink(
                spec, lambda s: not run_oracle(s).ok)
            assert result.statements <= 12, (
                f"shrinker left {result.statements} statements")
            assert result.statements <= result.original_statements
            # The shrunk spec still witnesses the bug...
            assert not run_oracle(result.spec).ok
        # ...and replays clean once the bug is gone.
        assert run_oracle(result.spec).ok

    def test_ir_stays_well_formed(self):
        """The bug is semantic — the verifier must NOT be what catches it."""
        with inject("swap-select"):
            spec, verdict = _first_failing("mismatch")
            assert spec is not None
            assert verdict.verifier_failures == 0


class TestDropUndefPhi:
    """Malformed IR: entry φs missing incoming edges (paper's Fig. 4)."""

    def test_caught_by_per_pass_verification(self):
        with inject("drop-undef-phi"):
            spec, verdict = _first_failing("verifier")
            assert spec is not None, "drop-undef-phi never caught"
            failure = next(f for f in verdict.failures if f.kind == "verifier")
            # The hook attributes the breakage to the guilty pass.
            assert failure.pass_name == "cfm"
            assert failure.arm == "o3-cfm"

    def test_shrinks_below_acceptance_bar(self):
        with inject("drop-undef-phi"):
            spec, _ = _first_failing("verifier")
            assert spec is not None
            result = shrink(spec, lambda s: not run_oracle(s).ok)
            assert result.statements <= 12


class TestDropBarrier:
    """A barrier deleted by DCE: invisible to the verifier AND to the
    one-warp-per-block simulator — only the differential-lint oracle
    (a new shared-memory-race ERROR after the guilty pass) catches it."""

    def test_caught_by_differential_lint_only(self):
        with inject("drop-barrier"):
            spec, verdict = _first_failing("lint")
            assert spec is not None, "drop-barrier never caught — lint blind"
            failure = next(f for f in verdict.failures if f.kind == "lint")
            # Attributed to the pass that deleted the barrier...
            assert failure.pass_name == "dce"
            # ...naming the race the deletion opened.
            assert "shared-memory-race" in failure.detail
            # The other oracles are provably blind to this bug class:
            assert verdict.mismatches == 0
            assert verdict.verifier_failures == 0
            assert verdict.lint_failures > 0

    def test_shrinks_below_acceptance_bar(self):
        with inject("drop-barrier"):
            spec, _ = _first_failing("lint")
            assert spec is not None
            # The generic predicate: lint failures shrink for free.
            result = shrink(spec, lambda s: not run_oracle(s).ok)
            assert result.statements <= 12, (
                f"shrinker left {result.statements} statements")
            assert not run_oracle(result.spec).ok
        # Replays clean once the bug is gone.
        assert run_oracle(result.spec).ok


def _op(array, ops, salt):
    return {"kind": "op", "array": array, "ops": list(ops), "salt": salt,
            "index": "id"}


def _masked_spec() -> KernelSpec:
    """A kernel whose divergence condition is *dynamically one-sided*.

    ``block_dim=4`` with a stripe condition on bit 4 means
    ``tid & 4 == 0`` holds for every launched thread: the condition is
    statically divergent (so CFM melds the region and blends the
    differing salts with selects) but no thread ever takes the
    else-path at runtime — the blending select's false arm is
    dynamically dead.  Padding statements around and inside the region
    give the shrinker something real to remove.
    """
    masked_if = {
        "kind": "if",
        "cond": {"kind": "stripe", "bit": 4},
        "then": [_op("a", ["add", "xor"], 3),
                 {"kind": "mix", "dst": "b", "src": "a", "op": "xor"},
                 _op("b", ["sub"], 6)],
        "else": [_op("a", ["add", "xor"], 9),
                 {"kind": "mix", "dst": "b", "src": "a", "op": "xor"},
                 _op("b", ["sub"], 11)],
    }
    body = [
        {"kind": "mix", "dst": "a", "src": "b", "op": "add"},
        _op("b", ["add", "mul"], 5),
        {"kind": "mix", "dst": "b", "src": "a", "op": "or"},
        masked_if,
        _op("a", ["sub"], 2),
        {"kind": "mix", "dst": "b", "src": "a", "op": "or"},
        _op("b", ["max"], 7),
    ]
    return KernelSpec(seed=0, block_dim=4, grid_dim=2, n=1, body=body)


def _validate_fails(spec: KernelSpec) -> bool:
    return not run_oracle(spec, arms=("o3-cfm",), validate=True).ok


class TestMeldSwapOperandUnderMask:
    """A miscompile only the *static* oracle can see: the melder's
    blending select gets its false arm overwritten with its true arm,
    on a kernel whose launch geometry never executes the false case."""

    def test_only_the_validator_catches_it(self):
        spec = _masked_spec()
        # The spec melds and validates clean on the healthy compiler.
        healthy = run_oracle(spec, validate=True)
        assert healthy.ok
        assert healthy.arms["o3-cfm"].melds > 0

        with inject("meld-swap-operand-under-mask"):
            # Every dynamic oracle is blind: outputs bit-identical,
            # IR well-formed, no lint regression.
            dynamic = run_oracle(spec)
            assert dynamic.ok, [str(f) for f in dynamic.failures]
            # Translation validation proves the never-executed mask case
            # and convicts the meld.
            static = run_oracle(spec, validate=True)
            assert not static.ok
            assert static.validate_failures > 0
            assert static.mismatches == 0
            assert static.verifier_failures == 0
            assert static.lint_failures == 0
            failure = next(f for f in static.failures
                           if f.kind == "validate")
            assert failure.arm == "o3-cfm"
            assert failure.pass_name == "cfm"
            assert "INEQUIVALENT" in failure.detail
        # Healthy again, the same spec validates EQUIVALENT.
        assert run_oracle(spec, validate=True).ok

    def test_shrinks_below_acceptance_bar(self):
        spec = _masked_spec()
        with inject("meld-swap-operand-under-mask"):
            assert _validate_fails(spec)
            result = shrink(spec, _validate_fails)
            assert result.statements <= 12, (
                f"shrinker left {result.statements} statements")
            assert result.statements < result.original_statements
            # The shrunk witness keeps the bug's signature property:
            # still invisible dynamically, still convicted statically.
            assert run_oracle(result.spec).ok
            assert not run_oracle(result.spec, validate=True).ok
        assert run_oracle(result.spec, validate=True).ok

    def test_corpus_records_validate_mode(self, tmp_path):
        spec = _masked_spec()
        with inject("meld-swap-operand-under-mask"):
            verdict = run_oracle(spec, validate=True)
            assert not verdict.ok
            path = write_entry(tmp_path, spec, verdict,
                               injected_bug="meld-swap-operand-under-mask",
                               validate=True)
            entry = load_entry(path)
            assert entry.validate
            assert entry.name.endswith("-validate")
            # Replay re-enables validation, so the failure reproduces...
            assert not replay(path).ok
            # ...and the standalone script carries the flag too.
            script = Path(str(path).replace(".json", "_repro.py"))
            assert "VALIDATE = True" in script.read_text()
        # Healthy compiler: the validate-mode replay is clean.
        assert replay(path).ok


class TestCorpusRoundTrip:
    def test_failure_recorded_and_replayable(self, tmp_path):
        with inject("swap-select"):
            spec, verdict = _first_failing("mismatch")
            assert spec is not None
            path = write_entry(tmp_path, spec, verdict,
                               injected_bug="swap-select")
            entry = load_entry(path)
            assert entry.spec == spec
            assert entry.injected_bug == "swap-select"
            assert entry.failures
            # The standalone script rides along.
            script = Path(str(path).replace(".json", "_repro.py"))
            assert script.exists()
            assert "run_oracle" in script.read_text()
            # Under the bug, replay still fails...
            assert not replay(path).ok
        # ...and with the compiler healthy again, it is clean.
        assert replay(path).ok

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown bug"):
            inject("off-by-one-everywhere")
