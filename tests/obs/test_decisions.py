"""Melding decision log: CFMPass explains every accept and reject."""

from repro.core import CFMConfig, CFMPass
from repro.obs import ACTIONS, MeldingDecision, Tracer, emit_decisions, use

from tests.support import build_diamond


def run_cfm(threshold=None):
    config = CFMConfig() if threshold is None else CFMConfig(
        profitability_threshold=threshold)
    cfm = CFMPass(config)
    cfm.run(build_diamond(identical=True))
    return cfm.stats


class TestDecisionLog:
    def test_accepted_meld_is_logged_with_scores(self):
        stats = run_cfm()
        melded = [d for d in stats.decisions if d.action == "melded"]
        assert len(melded) == len(stats.melds) == 1
        decision = melded[0]
        assert decision.accepted
        assert decision.region_entry == "entry"
        assert decision.fp_s is not None and decision.fp_s > 0.1
        assert decision.true_entry == "then"
        assert decision.false_entry == "else"
        assert decision.alignment, "chosen block mapping must be recorded"
        assert decision.block_scores, "per-pair FP_B must be recorded"
        assert decision.fp_i_saved_cycles > 0
        assert decision.instructions_melded > 0
        assert "FP_S" in decision.reason and "threshold" in decision.reason

    def test_unprofitable_pair_is_rejected_with_reason(self):
        stats = run_cfm(threshold=1000.0)
        assert not stats.melds
        rejected = [d for d in stats.decisions
                    if d.action == "rejected-unprofitable"]
        assert rejected, "a meldable-but-unprofitable region must be logged"
        decision = rejected[0]
        assert not decision.accepted
        assert decision.threshold == 1000.0
        assert decision.fp_s is not None
        # Scoring still happened even though the meld was refused.
        assert decision.alignment and decision.block_scores
        assert "≤ threshold" in decision.reason

    def test_actions_are_from_the_documented_set(self):
        for threshold in (None, 1000.0):
            stats = run_cfm(threshold)
            for decision in stats.decisions:
                assert decision.action in ACTIONS

    def test_as_dict_is_json_shaped(self):
        stats = run_cfm()
        record = stats.decisions[0].as_dict()
        for key in ("iteration", "region_entry", "action", "reason",
                    "threshold", "fp_s"):
            assert key in record
        assert record["action"] == "melded"
        for key in ("alignment", "block_scores", "fp_i_saved_cycles",
                    "selects_inserted", "instructions_melded",
                    "unpredicated"):
            assert key in record
        assert all(isinstance(pair, list) and len(pair) == 2
                   for pair in record["alignment"])

    def test_rejected_as_dict_omits_post_meld_facts(self):
        stats = run_cfm(threshold=1000.0)
        record = next(d for d in stats.decisions
                      if d.action == "rejected-unprofitable").as_dict()
        assert "selects_inserted" not in record
        assert "block_scores" in record  # scoring facts still present


class TestEmitDecisions:
    def test_pass_emits_instants_under_active_tracer(self):
        tracer = Tracer()
        with use(tracer):
            stats = run_cfm()
        melding = [e for e in tracer.events if e.get("cat") == "melding"]
        assert len(melding) == len(stats.decisions)
        assert melding[0]["name"] == "meld:melded"
        assert melding[0]["ph"] == "i"
        assert melding[0]["args"]["region_entry"] == "entry"

    def test_emit_decisions_noop_when_disabled(self):
        from repro.obs import NULL_TRACER
        decision = MeldingDecision(
            iteration=1, region_entry="entry", action="melded",
            reason="r", threshold=0.1)
        emit_decisions([decision], NULL_TRACER)  # must not raise or record
        assert NULL_TRACER.events == ()
