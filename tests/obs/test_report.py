"""Divergence heatmap + the PR's acceptance criterion on a paper kernel.

The acceptance test compiles SB1 (the paper's §VI-A diamond benchmark)
under ``-O3`` and ``-O3 + CFM``, launches both under one tracer, and
asserts the melded arm executes *strictly fewer* divergent branches.
"""

import repro
from repro.kernels import build_sb1
from repro.obs import Tracer, use
from repro.obs.report import (
    divergence_summary,
    load_trace_events,
    render_heatmap,
    render_report,
)


def traced_sb1_arms(block_size=8):
    """Compile+launch SB1 under -O3 and -O3+CFM inside one tracer."""
    tracer = Tracer()
    with use(tracer):
        summaries = {}
        for label, cfm in (("o3", False), ("cfm", True)):
            case = build_sb1(block_size)
            repro.compile(case.module.function(case.kernel),
                          level="O3", cfm=cfm)
            args = dict(case.make_buffers(0))
            args.update(case.scalars)
            repro.launch(case.module, case.grid_dim, case.block_dim, args,
                         kernel=case.kernel, trace_label=f"{label}:SB1")
    by_name = {s.name: s for s in divergence_summary(tracer.events)}
    return tracer, by_name


class TestAcceptance:
    def test_cfm_strictly_reduces_divergent_branch_executions(self):
        _, arms = traced_sb1_arms()
        o3, cfm = arms["o3:SB1"], arms["cfm:SB1"]
        assert o3.divergent_branch_executions > 0, \
            "-O3 SB1 must diverge, or the comparison is vacuous"
        assert (cfm.divergent_branch_executions
                < o3.divergent_branch_executions)

    def test_report_renders_both_arms_with_comparison(self):
        tracer, _ = traced_sb1_arms()
        text = render_report(tracer.events)
        assert "o3:SB1 — divergence heatmap" in text
        assert "cfm:SB1 — divergence heatmap" in text
        assert "divergent-branch executions by launch" in text


class TestHeatmapRendering:
    def test_heatmap_rows_and_header(self):
        _, arms = traced_sb1_arms()
        text = render_heatmap(arms["o3:SB1"])
        lines = text.splitlines()
        assert "divergence heatmap" in lines[0]
        assert lines[1].split()[:3] == ["block", "execs", "div"]
        assert len(lines) > 2, "SB1 must produce block rows"

    def test_divergent_blocks_sort_first_and_get_bars(self):
        _, arms = traced_sb1_arms()
        o3 = arms["o3:SB1"]
        divergent = [s.block for s in o3.blocks.values()
                     if s.divergent_executions > 0]
        assert divergent
        lines = render_heatmap(o3).splitlines()
        first_row = lines[2]
        assert first_row.split()[0] in divergent
        assert "█" in first_row

    def test_empty_summary_renders_placeholder(self):
        from repro.obs.report import LaunchSummary
        text = render_heatmap(LaunchSummary(pid=10, name="empty"))
        assert "(no runtime events)" in text

    def test_report_on_trace_without_sim_events_explains_itself(self):
        text = render_report([{"name": "compile:k", "ph": "X", "ts": 0,
                               "dur": 1, "pid": 1, "tid": 0}])
        assert "no runtime" in text


class TestLoadTraceEvents:
    def test_reads_chrome_object_and_bare_list(self, tmp_path):
        tracer = Tracer()
        tracer.instant("evt", cat="sim")
        chrome = tmp_path / "chrome.json"
        tracer.write(str(chrome))
        assert [e["name"] for e in load_trace_events(str(chrome))] == ["evt"]

        bare = tmp_path / "bare.json"
        bare.write_text('[{"name": "evt2", "ph": "i", "ts": 0, '
                        '"pid": 1, "tid": 0}]')
        assert [e["name"] for e in load_trace_events(str(bare))] == ["evt2"]

    def test_rejects_json_without_events(self, tmp_path):
        import pytest
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            load_trace_events(str(bad))
