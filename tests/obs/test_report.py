"""Divergence heatmap + the PR's acceptance criterion on a paper kernel.

The acceptance test compiles SB1 (the paper's §VI-A diamond benchmark)
under ``-O3`` and ``-O3 + CFM``, launches both under one tracer, and
asserts the melded arm executes *strictly fewer* divergent branches.
"""

import json

import repro
from repro.kernels import build_sb1
from repro.obs import Tracer, use
from repro.obs.report import (
    divergence_summary,
    load_trace_events,
    render_heatmap,
    render_report,
    report_json,
)


def traced_sb1_arms(block_size=8):
    """Compile+launch SB1 under -O3 and -O3+CFM inside one tracer."""
    tracer = Tracer()
    with use(tracer):
        summaries = {}
        for label, cfm in (("o3", False), ("cfm", True)):
            case = build_sb1(block_size)
            repro.compile(case.module.function(case.kernel),
                          level="O3", cfm=cfm)
            args = dict(case.make_buffers(0))
            args.update(case.scalars)
            repro.launch(case.module, case.grid_dim, case.block_dim, args,
                         kernel=case.kernel, trace_label=f"{label}:SB1")
    by_name = {s.name: s for s in divergence_summary(tracer.events)}
    return tracer, by_name


class TestAcceptance:
    def test_cfm_strictly_reduces_divergent_branch_executions(self):
        _, arms = traced_sb1_arms()
        o3, cfm = arms["o3:SB1"], arms["cfm:SB1"]
        assert o3.divergent_branch_executions > 0, \
            "-O3 SB1 must diverge, or the comparison is vacuous"
        assert (cfm.divergent_branch_executions
                < o3.divergent_branch_executions)

    def test_report_renders_both_arms_with_comparison(self):
        tracer, _ = traced_sb1_arms()
        text = render_report(tracer.events)
        assert "o3:SB1 — divergence heatmap" in text
        assert "cfm:SB1 — divergence heatmap" in text
        assert "divergent-branch executions by launch" in text


class TestHeatmapRendering:
    def test_heatmap_rows_and_header(self):
        _, arms = traced_sb1_arms()
        text = render_heatmap(arms["o3:SB1"])
        lines = text.splitlines()
        assert "divergence heatmap" in lines[0]
        assert lines[1].split()[:3] == ["block", "execs", "div"]
        assert len(lines) > 2, "SB1 must produce block rows"

    def test_divergent_blocks_sort_first_and_get_bars(self):
        _, arms = traced_sb1_arms()
        o3 = arms["o3:SB1"]
        divergent = [s.block for s in o3.blocks.values()
                     if s.divergent_executions > 0]
        assert divergent
        lines = render_heatmap(o3).splitlines()
        first_row = lines[2]
        assert first_row.split()[0] in divergent
        assert "█" in first_row

    def test_empty_summary_renders_placeholder(self):
        from repro.obs.report import LaunchSummary
        text = render_heatmap(LaunchSummary(pid=10, name="empty"))
        assert "(no runtime events)" in text

    def test_report_on_trace_without_sim_events_explains_itself(self):
        text = render_report([{"name": "compile:k", "ph": "X", "ts": 0,
                               "dur": 1, "pid": 1, "tid": 0}])
        assert "no runtime" in text


class TestReportJson:
    """``report --json`` carries the same numbers as the text heatmaps —
    asserted against the SB1 goldens the text path is held to."""

    def test_sb1_golden_counts_in_json(self):
        tracer, _ = traced_sb1_arms()
        document = report_json(tracer.events)
        assert document["schema"] == "repro.obs.report/v1"
        by_name = {launch["name"]: launch
                   for launch in document["launches"]}
        o3 = by_name["o3:SB1"]
        assert o3["divergent_branch_executions"] == 8
        assert o3["branch_executions"] == 24
        entry = next(b for b in o3["blocks"] if b["block"] == "entry")
        assert entry["divergent_executions"] == 2
        assert entry["mean_active_lanes"] == 8.0
        cfm = by_name["cfm:SB1"]
        assert cfm["divergent_branch_executions"] == 0

    def test_json_matches_text_summaries(self):
        tracer, arms = traced_sb1_arms()
        document = report_json(tracer.events)
        assert len(document["launches"]) == len(arms)
        for launch in document["launches"]:
            summary = arms[launch["name"]]
            assert (launch["branch_executions"]
                    == summary.branch_executions)
            assert (launch["divergent_branch_executions"]
                    == summary.divergent_branch_executions)
            assert len(launch["blocks"]) == len(summary.blocks)

    def test_json_blocks_sorted_like_heatmap_rows(self):
        tracer, arms = traced_sb1_arms()
        document = report_json(tracer.events)
        o3 = next(launch for launch in document["launches"]
                  if launch["name"] == "o3:SB1")
        text_rows = [line.split()[0]
                     for line in render_heatmap(arms["o3:SB1"]).splitlines()[2:]]
        assert [b["block"] for b in o3["blocks"]][:len(text_rows)] == text_rows

    def test_json_is_serializable(self):
        tracer, _ = traced_sb1_arms()
        document = report_json(tracer.events)
        assert json.loads(json.dumps(document)) == document

    def test_cli_report_json_flag(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        tracer, _ = traced_sb1_arms()
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        assert main(["report", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.obs.report/v1"
        assert {launch["name"] for launch in document["launches"]} == \
            {"o3:SB1", "cfm:SB1"}


class TestLoadTraceEvents:
    def test_reads_chrome_object_and_bare_list(self, tmp_path):
        tracer = Tracer()
        tracer.instant("evt", cat="sim")
        chrome = tmp_path / "chrome.json"
        tracer.write(str(chrome))
        assert [e["name"] for e in load_trace_events(str(chrome))] == ["evt"]

        bare = tmp_path / "bare.json"
        bare.write_text('[{"name": "evt2", "ph": "i", "ts": 0, '
                        '"pid": 1, "tid": 0}]')
        assert [e["name"] for e in load_trace_events(str(bare))] == ["evt2"]

    def test_rejects_json_without_events(self, tmp_path):
        import pytest
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            load_trace_events(str(bad))
