"""Tracer core: span nesting, Chrome event validity, the null singleton."""

import json

import pytest

from repro.obs import (
    COMPILE_PID,
    NULL_TRACER,
    NullTracer,
    SIM_PID_BASE,
    Tracer,
    current_tracer,
    set_tracer,
    trace,
    use,
)

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def make_clock(step=10.0):
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


class TestTracer:
    def test_span_emits_complete_event(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("compile:k", cat="compile") as span:
            span.set(level="O3")
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event["name"] == "compile:k"
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(10.0)
        assert event["args"] == {"level": "O3"}

    def test_nested_spans_order_and_timestamps(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Inner exits first, so it is recorded first; its interval nests
        # inside the outer one.
        inner, outer = tracer.events
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["ts"] < inner["ts"]
        assert outer["ts"] + outer["dur"] > inner["ts"] + inner["dur"]

    def test_every_event_kind_has_required_chrome_keys(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("s"):
            pass
        tracer.instant("i", args={"x": 1})
        tracer.counter("c", {"v": 2})
        tracer.process_name(SIM_PID_BASE, "launch")
        tracer.thread_name(SIM_PID_BASE, 0, "warp0")
        assert len(tracer.events) == 5
        for event in tracer.events:
            for key in REQUIRED_KEYS:
                assert key in event, (event, key)
        assert {e["ph"] for e in tracer.events} == {"X", "i", "C", "M"}

    def test_instant_scope_is_thread(self):
        tracer = Tracer(clock=make_clock())
        tracer.instant("evt")
        assert tracer.events[0]["s"] == "t"

    def test_payload_and_write_are_perfetto_loadable(self, tmp_path):
        tracer = Tracer(clock=make_clock())
        tracer.instant("evt")
        path = tmp_path / "trace.json"
        tracer.write(str(path), extra={"custom": {"k": 1}})
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["custom"] == {"k": 1}

    def test_launch_pids_are_deterministic_per_tracer(self):
        a, b = Tracer(), Tracer()
        assert [a.next_launch_pid() for _ in range(3)] == \
            [SIM_PID_BASE, SIM_PID_BASE + 1, SIM_PID_BASE + 2]
        assert b.next_launch_pid() == SIM_PID_BASE

    def test_compile_pid_distinct_from_launch_pids(self):
        assert COMPILE_PID < SIM_PID_BASE


class TestNullTracer:
    def test_singleton_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.events == ()
        assert isinstance(NULL_TRACER, NullTracer)

    def test_null_span_is_shared_and_noop(self):
        span_a = NULL_TRACER.span("a")
        span_b = NULL_TRACER.span("b", cat="x", pid=5, tid=6, args={"k": 1})
        assert span_a is span_b  # no allocation per call
        with span_a as s:
            s.set(anything="goes")
        assert NULL_TRACER.events == ()

    def test_all_recording_methods_are_noops(self):
        NULL_TRACER.complete("x", 1.0)
        NULL_TRACER.instant("x")
        NULL_TRACER.counter("x", {"v": 1})
        NULL_TRACER.process_name(1, "p")
        NULL_TRACER.thread_name(1, 0, "t")
        assert NULL_TRACER.next_launch_pid() == SIM_PID_BASE
        assert NULL_TRACER.events == ()


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_installs_and_restores(self):
        tracer = Tracer()
        with use(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_use_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER

    def test_set_tracer_none_reinstalls_null(self):
        previous = set_tracer(None)
        assert previous is NULL_TRACER
        assert current_tracer() is NULL_TRACER

    def test_trace_writes_chrome_json(self, tmp_path):
        path = tmp_path / "t.json"
        with trace(str(path)) as tracer:
            tracer.instant("evt")
        data = json.loads(path.read_text())
        assert [e["name"] for e in data["traceEvents"]] == ["evt"]

    def test_trace_without_path_keeps_events(self):
        with trace() as tracer:
            tracer.instant("evt")
        assert [e["name"] for e in tracer.events] == ["evt"]
