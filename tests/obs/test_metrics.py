"""Unit tests for the aggregate-metrics registry (repro.obs.metrics).

Covers the family/child model, snapshot/merge round-trips (the
cross-process aggregation contract), the histogram bucket-mismatch rule
mirroring ``repro.simt.Metrics.merge``'s warp-size rule, the Prometheus
text exposition, and the ambient NULL_REGISTRY discipline.
"""

import json

import pytest

from repro.obs import (
    CYCLES_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    RATE_BUCKETS,
    SECONDS_BUCKETS,
    SNAPSHOT_SCHEMA,
    bridge_to_tracer,
    collect_metrics,
    current_registry,
    exponential_buckets,
    linear_buckets,
    occupancy_buckets,
    render_prometheus,
    set_registry,
    use_registry,
    Tracer,
)


class TestBuckets:
    def test_exponential_buckets_grow_geometrically(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_linear_buckets_are_evenly_spaced(self):
        assert linear_buckets(4.0, 4.0, 3) == (4.0, 8.0, 12.0)

    def test_occupancy_buckets_cover_zero_to_warp_size(self):
        buckets = occupancy_buckets(32)
        assert len(buckets) == 8
        assert buckets[-1] == 32.0

    def test_occupancy_buckets_for_tiny_warps(self):
        assert occupancy_buckets(4) == (1.0, 2.0, 3.0, 4.0)

    def test_standard_buckets_are_sane(self):
        for bounds in (SECONDS_BUCKETS, CYCLES_BUCKETS, RATE_BUCKETS):
            assert list(bounds) == sorted(set(bounds))

    def test_invalid_bucket_specs_raise(self):
        with pytest.raises(ValueError):
            exponential_buckets(0, 2, 3)
        with pytest.raises(ValueError):
            linear_buckets(0, -1, 3)


class TestCountersAndGauges:
    def test_counter_inc_and_total(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total", "help text")
        family.inc()
        family.labels(arm="cfm").inc(3)
        assert family.total() == 4
        assert family.labels(arm="cfm").value == 3

    def test_counters_refuse_to_go_down(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_ratio")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.labels().value == 0.25

    def test_same_name_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_late_help_registration_sticks(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x", "the real help")
        assert registry.snapshot()["counters"]["x"]["help"] == "the real help"

    def test_forbidden_label_characters_raise(self):
        family = MetricsRegistry().counter("x")
        with pytest.raises(ValueError, match="must avoid"):
            family.labels(bad="a=b")
        with pytest.raises(ValueError, match="must avoid"):
            family.labels(bad="a,b")


class TestHistograms:
    def test_observations_land_in_the_right_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        child = hist.labels()
        assert child.counts == [1, 1, 1, 1]  # last slot = +Inf overflow
        assert child.count == 4
        assert child.sum == 105.0

    def test_bucket_redefinition_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError, match="increasing"):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestSnapshotMerge:
    def _loaded_registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", "c help").labels(arm="o3").inc(2)
        registry.gauge("repro_g", "g help").set(0.75)
        registry.histogram("repro_h_seconds", "h help",
                           buckets=(1.0, 2.0)).observe(1.5)
        return registry

    def test_snapshot_is_json_serializable_and_schemad(self):
        snapshot = self._loaded_registry().snapshot()
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_adds_counters_and_histograms(self):
        a = self._loaded_registry()
        a.merge(self._loaded_registry().snapshot())
        assert a.counter("repro_c_total").total() == 4
        child = a.histogram("repro_h_seconds",
                            buckets=(1.0, 2.0)).labels()
        assert child.count == 2
        assert child.sum == 3.0

    def test_merge_is_commutative_for_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        delta1 = self._loaded_registry().snapshot()
        delta2 = MetricsRegistry()
        delta2.counter("repro_c_total").labels(arm="cfm").inc(5)
        delta2.histogram("repro_h_seconds", buckets=(1.0, 2.0)).observe(0.25)
        delta2 = delta2.snapshot()

        a.merge(delta1)
        a.merge(delta2)
        b.merge(delta2)
        b.merge(delta1)
        snap_a, snap_b = a.snapshot(), b.snapshot()
        assert snap_a["counters"] == snap_b["counters"]
        assert snap_a["histograms"] == snap_b["histograms"]

    def test_merge_registry_object_directly(self):
        a = MetricsRegistry()
        a.merge(self._loaded_registry())
        assert a.counter("repro_c_total").total() == 2

    def test_merge_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsRegistry().merge({"schema": "repro.obs.metrics/99"})

    def test_merge_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("repro_c_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.merge(self._loaded_registry().snapshot())

    def test_empty_side_adopts_other_buckets(self):
        # Mirrors Metrics.merge: a fresh side takes the counted side's
        # width instead of raising.
        registry = MetricsRegistry()
        registry.histogram("repro_h_seconds", buckets=(9.0, 99.0))
        registry.merge(self._loaded_registry().snapshot())
        family = registry.histogram("repro_h_seconds", buckets=(1.0, 2.0))
        assert family.buckets == (1.0, 2.0)
        assert family.total_count() == 1

    def test_two_counted_sides_with_different_buckets_raise(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h_seconds",
                           buckets=(9.0, 99.0)).observe(5.0)
        with pytest.raises(ValueError, match="cannot merge histogram"):
            registry.merge(self._loaded_registry().snapshot())

    def test_empty_incoming_side_with_different_buckets_is_ignored(self):
        registry = self._loaded_registry()
        other = MetricsRegistry()
        other.histogram("repro_h_seconds", buckets=(9.0, 99.0))
        registry.merge(other.snapshot())
        assert registry.histogram("repro_h_seconds",
                                  buckets=(1.0, 2.0)).total_count() == 1


class TestPrometheusExposition:
    def test_counter_gauge_histogram_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", "counts things"
                         ).labels(arm="o3").inc(2)
        registry.gauge("repro_g", "a ratio").set(0.5)
        registry.histogram("repro_h", "a histogram",
                           buckets=(1.0, 2.0)).observe(1.5)
        text = registry.render_prom()
        assert "# HELP repro_c_total counts things" in text
        assert "# TYPE repro_c_total counter" in text
        assert 'repro_c_total{arm="o3"} 2' in text
        assert "# TYPE repro_g gauge" in text
        assert "repro_g 0.5" in text
        assert "# TYPE repro_h histogram" in text
        assert 'repro_h_bucket{le="1"} 0' in text
        assert 'repro_h_bucket{le="2"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum 1.5" in text
        assert "repro_h_count 1" in text

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5):
            hist.observe(value)
        text = registry.render_prom()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="3"} 3' in text

    def test_render_from_raw_snapshot_matches_registry_render(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert render_prometheus(registry.snapshot()) == registry.render_prom()

    def test_write_prom(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c", "h").inc()
        path = tmp_path / "metrics.prom"
        registry.write_prom(str(path))
        assert "# TYPE c counter" in path.read_text()


class TestAmbientRegistry:
    def test_default_is_null_registry(self):
        assert current_registry() is NULL_REGISTRY
        assert not current_registry().enabled

    def test_null_registry_is_inert_and_allocation_free(self):
        family = NULL_REGISTRY.counter("x", "h")
        assert family is NULL_REGISTRY.histogram("y")
        family.inc()
        family.labels(a="b").observe(1)
        assert NULL_REGISTRY.snapshot()["counters"] == {}

    def test_use_registry_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert current_registry() is registry
        assert current_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_null(self):
        previous = set_registry(MetricsRegistry())
        assert previous is NULL_REGISTRY
        set_registry(None)
        assert current_registry() is NULL_REGISTRY

    def test_collect_metrics_writes_prom_on_exit(self, tmp_path):
        path = tmp_path / "out.prom"
        with collect_metrics(str(path)) as registry:
            registry.counter("repro_x_total", "x").inc()
        assert "repro_x_total 1" in path.read_text()


class TestBridgeToTracer:
    def test_snapshot_becomes_counter_tracks(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total").labels(arm="o3").inc(2)
        registry.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        tracer = Tracer()
        bridge_to_tracer(registry, tracer)
        names = [e["name"] for e in tracer.events if e.get("ph") == "C"]
        assert "repro_c_total" in names
        assert "repro_h:count" in names

    def test_noop_under_disabled_tracer(self):
        from repro.obs import NULL_TRACER
        registry = MetricsRegistry()
        registry.counter("c").inc()
        bridge_to_tracer(registry, NULL_TRACER)  # must not raise
