"""Warp-level runtime tracing: opt-in events, allocation-free when off."""

import pytest

import repro.obs.runtime as runtime_mod
from repro.obs import (
    SIM_PID_BASE,
    Tracer,
    WarpTrace,
    flush_warp_trace,
    use,
)
from repro.simt import run_kernel

from tests.support import parse

DIVERGENT = """
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  %pa = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 1, i32 addrspace(1)* %pa
  br label %m
b:
  br label %m
m:
  ret void
}
"""


def launch(n=3, trace_label=None):
    f = parse(DIVERGENT)
    return run_kernel(f.module, "k", 1, 8, buffers={"p": [0] * 8},
                      scalars={"n": n}, trace_label=trace_label)


def sim_events(tracer, name=None):
    events = [e for e in tracer.events if e.get("cat") == "sim"]
    if name is not None:
        events = [e for e in events if e["name"] == name]
    return events


class TestTracedLaunch:
    def test_divergent_launch_records_exec_diverge_reconverge(self):
        tracer = Tracer()
        with use(tracer):
            launch(n=3)
        names = {e["name"] for e in sim_events(tracer)}
        assert "exec" in names
        assert "diverge" in names
        assert "reconverge" in names

    def test_uniform_launch_records_branch_but_no_divergence(self):
        tracer = Tracer()
        with use(tracer):
            launch(n=100)
        names = {e["name"] for e in sim_events(tracer)}
        assert "exec" in names and "branch" in names
        assert "diverge" not in names

    def test_diverge_event_carries_lane_split(self):
        tracer = Tracer()
        with use(tracer):
            launch(n=3)
        (diverge,) = sim_events(tracer, "diverge")
        assert diverge["args"]["block"] == "entry"
        assert diverge["args"]["divergent"] is True
        assert diverge["args"]["taken"] == 3
        assert diverge["args"]["not_taken"] == 5
        assert diverge["pid"] == SIM_PID_BASE

    def test_timestamps_are_simulated_cycles(self):
        tracer = Tracer()
        with use(tracer):
            _, metrics = launch(n=3)
        events = sim_events(tracer)
        assert all(e["ts"] <= metrics.cycles for e in events)
        execs = sim_events(tracer, "exec")
        assert [e["ts"] for e in execs] == sorted(e["ts"] for e in execs)

    def test_launch_gets_named_process_and_warp_threads(self):
        tracer = Tracer()
        with use(tracer):
            launch(n=3, trace_label="my-launch")
        meta = [e for e in tracer.events if e["ph"] == "M"]
        process = next(e for e in meta
                       if e["name"] == "process_name"
                       and e["pid"] == SIM_PID_BASE)
        assert process["args"]["name"] == "my-launch"
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert any(e["args"]["name"] == "block0/warp0" for e in threads)

    def test_active_lanes_counter_tracks_mask_width(self):
        tracer = Tracer()
        with use(tracer):
            launch(n=3)
        counters = [e for e in tracer.events if e["ph"] == "C"]
        assert all(e["name"] == "active_lanes" for e in counters)
        widths = {e["args"]["active"] for e in counters}
        assert 8 in widths          # full warp in entry/merge
        assert {3, 5} & widths      # divergent arms


class TestDisabledPathAllocatesNothing:
    def test_untraced_launch_builds_no_trace_objects(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("constructed on the disabled path")

        monkeypatch.setattr(runtime_mod.WarpTrace, "__init__", boom)
        outputs, _ = launch(n=3)  # no ambient tracer installed
        assert outputs["p"][:3] == [1, 1, 1]

    def test_untraced_launch_emits_nothing(self):
        from repro.obs import NULL_TRACER, current_tracer
        assert current_tracer() is NULL_TRACER
        launch(n=3)
        assert NULL_TRACER.events == ()


class TestWarpTraceSink:
    def test_flush_renders_compact_tuples_as_events(self):
        trace = WarpTrace(block_id=1, warp_index=0)
        trace.exec_block(0, "entry", 8)
        trace.branch(4, "entry", 8)
        trace.diverge(4, "entry", 3, 5)
        trace.reconverge(9, "m", 8)
        tracer = Tracer()
        flush_warp_trace(tracer, pid=SIM_PID_BASE, tid=7, trace=trace)
        names = [e["name"] for e in tracer.events if e.get("cat") == "sim"]
        assert names == ["exec", "branch", "diverge", "reconverge"]
        assert all(e["tid"] == 7 for e in tracer.events
                   if e.get("cat") == "sim")

    def test_flush_on_disabled_tracer_is_noop(self):
        from repro.obs import NULL_TRACER
        trace = WarpTrace(block_id=0, warp_index=0)
        trace.exec_block(0, "entry", 8)
        flush_warp_trace(NULL_TRACER, pid=SIM_PID_BASE, tid=0, trace=trace)
        assert NULL_TRACER.events == ()
