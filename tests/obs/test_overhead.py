"""The disabled-observability overhead budget: < 2% of launch time.

Naively diffing two wall-clock runs is flaky on shared CI machines, so
the guard is computed instead of raced: count how many instrumentation
sites a launch actually passes through (by tracing it once), measure the
cost of one disabled-path check (``x is not None``) with ``timeit``, and
require sites x per-check cost to stay under 2% of the untraced launch's
own wall time.  The margin is ~three orders of magnitude in practice, so
the test only fails if someone puts real work on the disabled path.

The same budget covers the aggregate-metrics registry: a disabled
registry adds one more ``is not None`` probe per block entry (the
``obs`` hook next to ``trace``), so the combined disabled cost is two
probes per site — asserted against the same 2% line.  The enabled path
is held to a parity contract instead: the occupancy histogram must
count exactly the block-entry events the tracer sees, per executor.
"""

import time
import timeit

import pytest

import repro
from repro.kernels import build_sb1
from repro.obs import MetricsRegistry, Tracer, use, use_registry
from repro.obs.report import divergence_summary
from repro.simt import MachineConfig, run_kernel

from tests.support import parse

DIVERGENT = """
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  %pa = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 1, i32 addrspace(1)* %pa
  br label %m
b:
  br label %m
m:
  ret void
}
"""


def launch(executor=None):
    f = parse(DIVERGENT)
    return run_kernel(f.module, "k", 4, 32, buffers={"p": [0] * 128},
                      scalars={"n": 77}, executor=executor)


def count_instrumented_sites(executor=None) -> int:
    """How many record calls one launch would make when traced."""
    tracer = Tracer()
    with use(tracer):
        launch(executor)
    return len(tracer.events)


class TestDisabledOverheadBudget:
    def test_disabled_checks_cost_under_two_percent_of_launch(self):
        sites = count_instrumented_sites()
        assert sites > 0, "the launch must pass instrumentation sites"

        # Per-site disabled cost: one attribute load + `is not None`.
        loops = 100_000
        probe = None
        per_check = timeit.timeit(
            "x = probe is not None", globals={"probe": probe},
            number=loops) / loops

        samples = []
        for _ in range(3):
            start = time.perf_counter()
            launch()
            samples.append(time.perf_counter() - start)
        launch_seconds = sorted(samples)[1]  # median of 3

        overhead = sites * per_check
        assert overhead < 0.02 * launch_seconds, (
            f"{sites} sites x {per_check * 1e9:.1f}ns = "
            f"{overhead * 1e6:.1f}us exceeds 2% of "
            f"{launch_seconds * 1e3:.2f}ms launch")

    @pytest.mark.parametrize("executor", ["fast", "reference"])
    def test_disabled_checks_stay_under_budget_per_executor(self, executor):
        """The 2% budget holds on the fast path specifically: its launch
        is several times shorter than the reference's, so the same
        absolute site count eats a proportionally bigger share."""
        sites = count_instrumented_sites(executor)
        assert sites > 0
        # Both executors must pass the same instrumentation sites — the
        # trace-parity contract implies site-count parity.
        assert sites == count_instrumented_sites(
            "reference" if executor == "fast" else "fast")

        loops = 100_000
        probe = None
        per_check = timeit.timeit(
            "x = probe is not None", globals={"probe": probe},
            number=loops) / loops

        samples = []
        for _ in range(3):
            start = time.perf_counter()
            launch(executor)
            samples.append(time.perf_counter() - start)
        launch_seconds = sorted(samples)[1]  # median of 3

        overhead = sites * per_check
        assert overhead < 0.02 * launch_seconds, (
            f"[{executor}] {sites} sites x {per_check * 1e9:.1f}ns = "
            f"{overhead * 1e6:.1f}us exceeds 2% of "
            f"{launch_seconds * 1e3:.2f}ms launch")


class TestDisabledRegistryBudget:
    """With both the tracer and the registry off, every instrumentation
    site costs two ``is not None`` probes (``trace`` + ``obs``); the pair
    must still clear the same 2% bar."""

    PROBES_PER_SITE = 2

    @pytest.mark.parametrize("executor", ["fast", "reference"])
    def test_two_disabled_probes_per_site_stay_under_budget(self, executor):
        sites = count_instrumented_sites(executor)
        assert sites > 0

        loops = 100_000
        trace_probe = obs_probe = None
        per_site = timeit.timeit(
            "x = trace_probe is not None\ny = obs_probe is not None",
            globals={"trace_probe": trace_probe, "obs_probe": obs_probe},
            number=loops) / loops

        samples = []
        for _ in range(3):
            start = time.perf_counter()
            launch(executor)
            samples.append(time.perf_counter() - start)
        launch_seconds = sorted(samples)[1]  # median of 3

        overhead = sites * per_site
        assert overhead < 0.02 * launch_seconds, (
            f"[{executor}] {sites} sites x {self.PROBES_PER_SITE} probes "
            f"({per_site * 1e9:.1f}ns/site) = {overhead * 1e6:.1f}us "
            f"exceeds 2% of {launch_seconds * 1e3:.2f}ms launch")


class TestRegistryParityWithTrace:
    """Enabled-path correctness: the registry's runtime metrics must
    agree, event for event, with the trace stream both executors are
    already held to."""

    @pytest.mark.parametrize("executor", ["fast", "reference"])
    def test_occupancy_count_equals_traced_block_entries(self, executor):
        tracer = Tracer()
        registry = MetricsRegistry()
        with use(tracer), use_registry(registry):
            launch(executor)
        exec_events = [e for e in tracer.events
                       if e.get("cat") == "sim" and e["name"] == "exec"]
        diverge_events = [e for e in tracer.events
                          if e.get("cat") == "sim"
                          and e["name"] == "diverge"]
        snapshot = registry.snapshot()
        occupancy = snapshot["histograms"]["repro_runtime_active_lanes"]
        (sample,) = occupancy["samples"].values()
        assert sample["count"] == len(exec_events)
        # The occupancy sum is the total of per-entry active-lane counts.
        assert sample["sum"] == sum(e["args"]["active"]
                                    for e in exec_events)
        divergent = snapshot["counters"][
            "repro_runtime_divergent_branches_total"]
        assert sum(divergent["samples"].values()) == len(diverge_events)

    @pytest.mark.parametrize("executor", ["fast", "reference"])
    def test_launch_counter_and_labels(self, executor):
        registry = MetricsRegistry()
        with use_registry(registry):
            launch(executor)
        launches = registry.snapshot()["counters"][
            "repro_runtime_launches_total"]
        (key,) = launches["samples"]
        assert f"executor={executor or 'reference'}" in key
        assert "policy=ipdom" in key
        assert launches["samples"][key] == 1

    def test_both_executors_produce_identical_runtime_aggregates(self):
        """Executor parity, the aggregate edition: modulo the executor
        label, fast and reference runs must fold to identical runtime
        metrics."""
        def snap(executor):
            registry = MetricsRegistry()
            with use_registry(registry):
                launch(executor)
            snapshot = registry.snapshot()
            for kind in ("counters", "gauges", "histograms"):
                for data in snapshot[kind].values():
                    data["samples"] = {
                        key.replace(f"executor={executor},", ""): value
                        for key, value in data["samples"].items()}
            return snapshot

        assert snap("fast") == snap("reference")


class TestGoldenHeatmapFastPath:
    """The SB1 golden divergence numbers (tests/obs/test_determinism.py)
    re-asserted with the executor pinned to "fast": the heatmap is built
    purely from trace events, so identical numbers here mean the fast
    path emits the exact same event stream."""

    def _summary(self, cfm: bool, reconvergence: str = "ipdom"):
        tracer = Tracer()
        with use(tracer):
            case = build_sb1(8)
            repro.compile(case.module.function(case.kernel), level="O3",
                          cfm=cfm)
            args = dict(case.make_buffers(0))
            args.update(case.scalars)
            machine = MachineConfig(executor="fast",
                                    reconvergence=reconvergence)
            repro.launch(case.module, case.grid_dim, case.block_dim, args,
                         kernel=case.kernel, machine=machine,
                         trace_label=("cfm" if cfm else "o3") + ":SB1")
        (summary,) = divergence_summary(tracer.events)
        return summary

    def test_sb1_o3_golden_counts_on_fast_path(self):
        summary = self._summary(cfm=False)
        assert summary.divergent_branch_executions == 8
        assert summary.branch_executions == 24
        entry = summary.blocks["entry"]
        assert entry.divergent_executions == 2
        assert entry.mean_active_lanes == 8.0

    def test_sb1_cfm_golden_counts_on_fast_path(self):
        assert self._summary(cfm=True).divergent_branch_executions == 0

    def test_sb1_o3_golden_counts_under_min_pc(self):
        # SB1's control flow is structured (both branch sides rejoin at
        # the post-dominator), so the min-PC path list fuses exactly
        # where the IPDOM stack reconverges: the heatmap golden is
        # policy-invariant here, and any drift means the min-PC
        # scheduler grouped lanes differently on a structured kernel.
        summary = self._summary(cfm=False, reconvergence="min-pc")
        assert summary.divergent_branch_executions == 8
        assert summary.branch_executions == 24
        entry = summary.blocks["entry"]
        assert entry.divergent_executions == 2
        assert entry.mean_active_lanes == 8.0


class TestValidationOverhead:
    """Compile-side cost of meld translation validation.

    Disabled (the default) it must be invisible: per accepted meld the
    pass pays one ``config.validate`` truthiness check, so the same
    computed budget applies — melds x per-check cost < 2% of the
    compile's own wall time.  Enabled it does real symbolic work whose
    cost is *measured and reported* (per-meld wall-time histogram plus
    a per-verdict counter), deliberately not guarded."""

    def _compile(self, validate: bool):
        case = build_sb1(8)
        cfm = repro.CFMConfig(validate=True) if validate else True
        return repro.compile(case, cfm=cfm)

    def test_disabled_validation_stays_under_compile_budget(self):
        loops = 100_000
        probe = repro.CFMConfig()  # validate defaults to False
        per_check = timeit.timeit(
            "x = probe.validate", globals={"probe": probe},
            number=loops) / loops

        reports = [self._compile(validate=False) for _ in range(3)]
        compile_seconds = sorted(r.seconds for r in reports)[1]  # median
        melds = reports[0].melds
        assert melds > 0, "SB1 must meld or the budget is vacuous"
        assert all(r.cfm_stats.validations == [] for r in reports)

        overhead = melds * per_check
        assert overhead < 0.02 * compile_seconds, (
            f"{melds} melds x {per_check * 1e9:.1f}ns = "
            f"{overhead * 1e6:.2f}us exceeds 2% of "
            f"{compile_seconds * 1e3:.2f}ms compile")

    def test_enabled_validation_cost_is_measured_not_guarded(self):
        from repro.analysis import EQUIVALENT

        registry = MetricsRegistry()
        with use_registry(registry):
            report = self._compile(validate=True)
        validations = report.cfm_stats.validations
        assert validations, "validation on but nothing validated"
        for validation in validations:
            assert validation.verdict == EQUIVALENT
            assert validation.seconds >= 0.0
            assert validation.paths > 0

        snapshot = registry.snapshot()
        verdicts = snapshot["counters"]["repro_compile_validate_total"]
        (key,) = verdicts["samples"]
        assert "verdict=EQUIVALENT" in key
        assert verdicts["samples"][key] == len(validations)
        seconds = snapshot["histograms"]["repro_compile_validate_seconds"]
        (sample,) = seconds["samples"].values()
        assert sample["count"] == len(validations)
        assert sample["sum"] == pytest.approx(
            sum(v.seconds for v in validations), rel=1e-6)
        # Deliberately no bound on the enabled cost: symbolic evaluation
        # is allowed to be slow; the histogram *is* the report.
