"""Trace determinism: identical inputs produce identical event streams.

Wall-clock fields (``ts``/``dur`` of compile-side events, the
``seconds`` arg of pass spans) naturally differ between runs; everything
else — event order, names, categories, pids/tids, simulated-cycle
timestamps, melding scores — must be bit-identical, or traces are
useless as diffable artifacts.
"""

import repro
from repro.kernels import build_sb1
from repro.obs import Tracer, use
from repro.obs.report import divergence_summary, render_report

WALL_CLOCK_KEYS = ("ts", "dur")
WALL_CLOCK_ARGS = ("seconds",)


def normalize(event):
    """Strip only the wall-clock-derived fields from one trace event."""
    out = {k: v for k, v in event.items() if k not in WALL_CLOCK_KEYS}
    if isinstance(out.get("args"), dict):
        out["args"] = {k: v for k, v in out["args"].items()
                       if k not in WALL_CLOCK_ARGS}
    # Simulated-cycle timestamps ARE deterministic: keep them.
    if event.get("cat") == "sim" or event.get("ph") == "C":
        out["ts"] = event["ts"]
    return out


def traced_run(block_size=8):
    tracer = Tracer()
    with use(tracer):
        case = build_sb1(block_size)
        repro.compile(case.module.function(case.kernel), level="O3",
                      cfm=True)
        args = dict(case.make_buffers(0))
        args.update(case.scalars)
        repro.launch(case.module, case.grid_dim, case.block_dim, args,
                     kernel=case.kernel, trace_label="cfm:SB1")
    return tracer


class TestDeterminism:
    def test_two_runs_produce_identical_normalized_events(self):
        first = [normalize(e) for e in traced_run().events]
        second = [normalize(e) for e in traced_run().events]
        assert first == second

    def test_compile_side_event_names_are_stable(self):
        events = traced_run().events
        compile_names = [e["name"] for e in events
                         if e.get("cat") in ("compile", "melding")]
        assert compile_names == [e["name"] for e in traced_run().events
                                 if e.get("cat") in ("compile", "melding")]
        assert any(n.startswith("pass:") for n in compile_names)
        assert any(n.startswith("meld:") for n in compile_names)

    def test_rendered_report_is_identical_across_runs(self):
        assert (render_report(traced_run().events)
                == render_report(traced_run().events))


class TestGoldenHeatmap:
    """SB1's divergence profile is fixed by the simulator's cycle model —
    pin it, so a silent change to divergence accounting fails loudly."""

    def test_sb1_o3_golden_counts(self):
        tracer = Tracer()
        with use(tracer):
            case = build_sb1(8)
            repro.compile(case.module.function(case.kernel), level="O3")
            args = dict(case.make_buffers(0))
            args.update(case.scalars)
            repro.launch(case.module, case.grid_dim, case.block_dim, args,
                         kernel=case.kernel, trace_label="o3:SB1")
        (summary,) = divergence_summary(tracer.events)
        # 2 warps (16 threads / block of 8... grid 2 x 1 warp) each run
        # entry + four diamond ends; entry and three of them diverge.
        assert summary.divergent_branch_executions == 8
        assert summary.branch_executions == 24
        entry = summary.blocks["entry"]
        assert entry.divergent_executions == 2
        assert entry.mean_active_lanes == 8.0

    def test_sb1_cfm_golden_counts(self):
        tracer = traced_run()
        (summary,) = divergence_summary(tracer.events)
        # Melding removes every divergent diamond: straight-line code has
        # no recorded branch executions at all.
        assert summary.divergent_branch_executions == 0
