"""Tests for tail merging and branch fusion — the Table I baselines."""

import pytest

from repro.analysis import compute_divergence
from repro.baselines import fuse_branches, merge_tails
from repro.evaluation.runner import execute
from repro.ir import Module, verify_function
from repro.kernels.patterns import (
    build_complex_pattern,
    build_diamond_identical,
    build_diamond_distinct,
)
from repro.simt import run_kernel
from repro.transforms import optimize

from tests.support import parse


class TestTailMerging:
    def test_merges_identical_diamond(self):
        case = build_diamond_identical()
        optimize(case.function)
        assert merge_tails(case.function)
        verify_function(case.function)
        execute(case, seed=1)

    def test_refuses_distinct_operands(self):
        case = build_diamond_distinct()
        optimize(case.function)
        assert not merge_tails(case.function)

    def test_partial_suffix_merge(self):
        f = parse("""
define void @k(i1 %c, i32 %x, i32 addrspace(1)* %p) {
entry:
  br i1 %c, label %a, label %b
a:
  %a1 = mul i32 %x, 3
  %a2 = add i32 %x, 7
  store i32 %a2, i32 addrspace(1)* %p
  br label %m
b:
  %b1 = xor i32 %x, 5
  %b2 = add i32 %x, 7
  store i32 %b2, i32 addrspace(1)* %p
  br label %m
m:
  ret void
}
""")
        assert merge_tails(f)
        verify_function(f)
        tail = f.block_by_name("m.tail")
        assert [i.opcode for i in tail] == ["add", "store", "br"]

    def test_phi_conflict_limits_merge(self):
        f = parse("""
define void @k(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %a1 = add i32 %x, 7
  br label %m
b:
  %b1 = add i32 %x, 7
  br label %m
m:
  %p = phi i32 [ 0, %a ], [ 1, %b ]
  ret void
}
""")
        # The φ distinguishes the paths: merging would corrupt it.
        assert not merge_tails(f)

    def test_phi_unified_by_merge(self):
        f = parse("""
define void @k(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %a1 = add i32 %x, 7
  br label %m
b:
  %b1 = add i32 %x, 7
  br label %m
m:
  %p = phi i32 [ %a1, %a ], [ %b1, %b ]
  %u = mul i32 %p, 2
  ret void
}
""")
        # Both φ values become the same merged instruction: allowed.
        assert merge_tails(f)
        verify_function(f)
        assert not f.block_by_name("m").phis or \
            len(f.block_by_name("m").phis[0].incoming) == 1

    def test_merge_preserves_semantics(self):
        src = """
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  %g1 = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v1 = load i32, i32 addrspace(1)* %g1
  %r1 = add i32 %v1, 9
  store i32 %r1, i32 addrspace(1)* %g1
  br label %m
b:
  %g2 = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %v2 = load i32, i32 addrspace(1)* %g2
  %r2 = add i32 %v2, 9
  store i32 %r2, i32 addrspace(1)* %g2
  br label %m
m:
  ret void
}
"""
        base = parse(src)
        merged = parse(src)
        assert merge_tails(merged)
        verify_function(merged)
        out1, _ = run_kernel(base.module, "k", 1, 8,
                             buffers={"p": list(range(8))}, scalars={"n": 4})
        out2, _ = run_kernel(merged.module, "k", 1, 8,
                             buffers={"p": list(range(8))}, scalars={"n": 4})
        assert out1 == out2


class TestBranchFusion:
    def test_fuses_identical_diamond(self):
        case = build_diamond_identical()
        optimize(case.function)
        assert fuse_branches(case.function)
        verify_function(case.function)
        execute(case, seed=1)

    def test_fuses_distinct_diamond(self):
        from repro.transforms import (
            eliminate_dead_code,
            simplify_cfg,
            speculate_hammocks,
        )

        case = build_diamond_distinct()
        optimize(case.function)
        before = len(compute_divergence(case.function).divergent_branch_blocks)
        assert fuse_branches(case.function)
        # Unpredication re-introduces guarded gap blocks; the pipeline's
        # late if-conversion re-predicates them (§IV-G).
        simplify_cfg(case.function)
        speculate_hammocks(case.function)
        simplify_cfg(case.function)
        eliminate_dead_code(case.function)
        verify_function(case.function)
        after = len(compute_divergence(case.function).divergent_branch_blocks)
        assert after < before
        execute(case, seed=1)

    def test_refuses_complex_control_flow(self):
        case = build_complex_pattern()
        optimize(case.function)
        before = len(compute_divergence(case.function).divergent_branch_blocks)
        fuse_branches(case.function)
        after = len(compute_divergence(case.function).divergent_branch_blocks)
        # The outer divergent region is not a diamond: untouched.  (Inner
        # data-dependent diamonds may or may not be fusable; the outer
        # region's branch must survive.)
        assert after >= before - 2
        verify_function(case.function)
        execute(case, seed=1)

    def test_subsumes_tail_merging_cases(self):
        # Every pattern tail merging handles, branch fusion handles too.
        case = build_diamond_identical()
        optimize(case.function)
        assert fuse_branches(case.function)
