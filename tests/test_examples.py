"""Smoke tests: every example script must run end to end.

Examples are the quickstart surface of the repository; breaking one is a
documentation bug as much as a code bug.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, name, argv):
    monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(f"{EXAMPLES}/{name}", run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py", [])
    assert "melds performed: 1" in out
    assert "outputs identical: True" in out


def test_bitonic_sort(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "bitonic_sort.py", ["16"])
    assert "CFM melded" in out
    assert "speedup" in out


def test_divergence_analysis(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "divergence_analysis.py", [])
    assert "divergent branches:" in out
    assert "most profitable pair" in out
    assert "FP_S" in out


def test_block_size_sweep(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "block_size_sweep.py",
                      ["SB1", "16", "32"])
    assert "geomean speedup" in out


def test_divergence_profile(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "divergence_profile.py",
                      ["SB2", "16"])
    assert "divergent branch issues" in out
    assert "rate" in out


def test_visualize_melding(monkeypatch, capsys, tmp_path):
    out = run_example(monkeypatch, capsys, "visualize_melding.py",
                      ["SB1", str(tmp_path)])
    assert "melds" in out
    assert (tmp_path / "SB1_before.dot").exists()
    assert (tmp_path / "SB1_after.dot").exists()
    dot = (tmp_path / "SB1_after.dot").read_text()
    assert dot.startswith("digraph")
