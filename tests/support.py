"""Shared helpers for the test suite: compact CFG construction."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir import (
    AddressSpace,
    Function,
    I32,
    IRBuilder,
    ICmpPredicate,
    Module,
    pointer,
)
from repro.ir.parser import parse_function, parse_module


def parse(text: str):
    """Parse a single-function module and return the function."""
    return parse_function(text)


def build_diamond(identical: bool = True) -> Function:
    """A divergent diamond: ``entry -> (then|else) -> merge``.

    With ``identical=True`` the two arms perform the same computation on
    different operands (the melding-friendly shape); otherwise the arms
    differ structurally.
    """
    f = Function(
        "diamond",
        [pointer(I32, AddressSpace.GLOBAL), pointer(I32, AddressSpace.GLOBAL)],
        ["a", "b"],
    )
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("else")
    merge = f.add_block("merge")

    b = IRBuilder(entry)
    tid = b.thread_id()
    two = b.const(2)
    rem = b.urem(tid, two, "rem")
    cond = b.icmp(ICmpPredicate.EQ, rem, b.const(0), "cond")
    b.cond_br(cond, then, els)

    b.position_at_end(then)
    pa = b.gep(f.args[0], tid, "pa")
    va = b.load(pa, "va")
    ra = b.add(va, b.const(1), "ra")
    b.store(ra, pa)
    b.br(merge)

    b.position_at_end(els)
    pb = b.gep(f.args[1], tid, "pb")
    vb = b.load(pb, "vb")
    if identical:
        rb = b.add(vb, b.const(1), "rb")
    else:
        rb = b.mul(vb, b.const(3), "rb")
        rb = b.xor(rb, b.const(7), "rb2")
    b.store(rb, pb)
    b.br(merge)

    b.position_at_end(merge)
    b.ret()
    return f


def straightline_function(n_blocks: int = 3) -> Function:
    """``entry -> b1 -> ... -> ret`` with a trivial add in each block."""
    f = Function("straight", [I32], ["x"])
    blocks = [f.add_block(f"b{i}") for i in range(n_blocks)]
    b = IRBuilder(blocks[0])
    value = f.args[0]
    for i, block in enumerate(blocks):
        b.position_at_end(block)
        value = b.add(value, b.const(i + 1))
        if i + 1 < n_blocks:
            b.br(blocks[i + 1])
        else:
            b.ret()
    return f


def edges_of(function: Function) -> List[Tuple[str, str]]:
    """All CFG edges as (pred name, succ name) pairs."""
    result = []
    for block in function.blocks:
        for succ in block.succs:
            result.append((block.name, succ.name))
    return result
