"""Tests for the interval value-range analysis."""

from repro.analysis import Interval, compute_ranges
from repro.ir import I32

from tests.support import parse


def _value(f, name):
    for block in f.blocks:
        for instr in block:
            if getattr(instr, "name", None) == name:
                return instr
    raise AssertionError(f"no value named {name!r}")


def _ranges_of(text, *names):
    f = parse(text)
    ranges = compute_ranges(f)
    return ranges, [_value(f, n) for n in names]


class TestInterval:
    def test_join_is_the_convex_hull(self):
        assert Interval(0, 3).join(Interval(7, 9)) == Interval(0, 9)

    def test_empty_is_the_join_identity(self):
        iv = Interval(2, 5)
        from repro.analysis.ranges import EMPTY
        assert EMPTY.join(iv) == iv
        assert iv.join(EMPTY) == iv

    def test_intersects_and_contains(self):
        iv = Interval(4, 8)
        assert iv.intersects(0, 4)
        assert iv.intersects(8, 100)
        assert not iv.intersects(0, 3)
        assert not iv.intersects(9, 100)
        assert iv.contains(6)
        assert not iv.contains(9)

    def test_widen_blows_only_the_moving_bound(self):
        # lo stable at 0, hi grew 3 -> 4: widening drops hi to unbounded.
        assert Interval(0, 4).widen(Interval(0, 3)) == Interval(0, None)
        # Both bounds stable: widening is the identity.
        assert Interval(0, 3).widen(Interval(0, 3)) == Interval(0, 3)


class TestThreadGeometrySeeds:
    def test_tid_is_nonnegative(self):
        ranges, (tid,) = _ranges_of("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  ret void
}
""", "tid")
        iv = ranges.range_of(tid)
        assert iv.lo == 0
        assert iv.hi == I32.max_value

    def test_ntid_is_at_least_one(self):
        ranges, (ntid,) = _ranges_of("""
define void @k() {
entry:
  %ntid = call i32 @llvm.gpu.ntid.x()
  ret void
}
""", "ntid")
        assert ranges.range_of(ntid).lo == 1


class TestTransferFunctions:
    def test_constant_arithmetic_folds_exactly(self):
        ranges, (x,) = _ranges_of("""
define void @k() {
entry:
  %x = add i32 2, 3
  ret void
}
""", "x")
        assert ranges.range_of(x) == Interval.exact(5)

    def test_mask_bounds_a_divergent_value(self):
        ranges, (m,) = _ranges_of("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %m = and i32 %tid, 7
  ret void
}
""", "m")
        assert ranges.range_of(m) == Interval(0, 7)

    def test_urem_bounds_by_the_divisor(self):
        ranges, (r,) = _ranges_of("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %r = urem i32 %tid, 8
  ret void
}
""", "r")
        assert ranges.range_of(r) == Interval(0, 7)

    def test_select_joins_both_arms(self):
        ranges, (s,) = _ranges_of("""
define void @k(i1 %c) {
entry:
  %s = select i1 %c, i32 1, i32 5
  ret void
}
""", "s")
        assert ranges.range_of(s) == Interval(1, 5)

    def test_possible_overflow_collapses_to_the_type_range(self):
        ranges, (x,) = _ranges_of("""
define void @k() {
entry:
  %x = add i32 2000000000, 2000000000
  ret void
}
""", "x")
        assert ranges.range_of(x) == Interval.of_type(I32)

    def test_loop_counter_terminates_with_widening(self):
        ranges, (i,) = _ranges_of("""
define void @k(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %n
  br i1 %c, label %h, label %x
x:
  ret void
}
""", "i")
        # Convergence itself is the headline: an unbounded counter must
        # widen (to the full/unbounded range) instead of iterating forever.
        assert not ranges.range_of(i).empty

    def test_masked_loop_counter_keeps_finite_bounds(self):
        ranges, (i,) = _ranges_of("""
define void @k(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %m, %h ]
  %ni = add i32 %i, 1
  %m = and i32 %ni, 7
  %c = icmp slt i32 %i, %n
  br i1 %c, label %h, label %x
x:
  ret void
}
""", "i")
        # The mask caps the loop-carried value, so the fixpoint is exact.
        assert ranges.range_of(i) == Interval(0, 7)


class TestDecidedConditions:
    def test_tid_nonnegativity_decides_a_comparison(self):
        ranges, (c,) = _ranges_of("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp sge i32 %tid, 0
  ret void
}
""", "c")
        assert ranges.decided_condition(c) is True

    def test_impossible_comparison_decides_false(self):
        ranges, (c,) = _ranges_of("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, 0
  ret void
}
""", "c")
        assert ranges.decided_condition(c) is False

    def test_genuinely_divergent_condition_stays_open(self):
        ranges, (c,) = _ranges_of("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %p = and i32 %tid, 1
  %c = icmp eq i32 %p, 0
  ret void
}
""", "c")
        assert ranges.decided_condition(c) is None

    def test_non_bool_values_are_never_decided(self):
        ranges, (x,) = _ranges_of("""
define void @k() {
entry:
  %x = add i32 1, 0
  ret void
}
""", "x")
        assert ranges.decided_condition(x) is None
