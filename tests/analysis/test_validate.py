"""Tests for symbolic translation validation of melds.

Three layers, innermost out:

* :class:`RegionCapture` as a unit — snapshot a region, optionally
  mutate the live IR, and diff;
* the CFM pass with ``CFMConfig(validate=True)`` — every accepted meld
  on every benchmark kernel must verdict ``EQUIVALENT``, through both
  the direct pass pipeline and the lint layer's ``compile_at_level``;
* the :func:`validate_melds_hook` pipeline hook — a corrupted melder
  must raise :class:`MeldValidationError` at the guilty pass.
"""

import pytest

import repro
from repro import CFMConfig, CFMPass, late_pipeline, o3_pipeline
from repro.analysis import (
    EQUIVALENT,
    INEQUIVALENT,
    UNSUPPORTED,
    MeldValidationError,
    RegionCapture,
    validate_melds_hook,
)
from repro.ir import I32
from repro.ir.values import Constant
from repro.kernels import ALL_BUILDERS
from repro.transforms import PassPipeline

from tests.support import build_diamond


def _capture_diamond():
    f = build_diamond()
    entry, then, els, merge = f.blocks
    return f, RegionCapture(entry, merge, entry.terminator.condition)


class TestRegionCapture:
    def test_unmodified_region_is_equivalent(self):
        _, capture = _capture_diamond()
        validation = capture.compare_against_current()
        assert validation.verdict == EQUIVALENT
        assert validation.paths > 0
        assert validation.ok

    def test_mutated_region_is_inequivalent(self):
        f, capture = _capture_diamond()
        then = f.blocks[1]
        add = next(i for i in then if getattr(i, "name", "") == "ra")
        add.set_operand(1, Constant(I32, 2))  # was +1, now +2
        validation = capture.compare_against_current()
        assert validation.verdict == INEQUIVALENT
        assert not validation.ok
        assert "differs" in validation.detail

    def test_path_cap_degrades_to_unsupported_not_wrong(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        capture = RegionCapture(entry, merge, entry.terminator.condition,
                                max_paths=0)
        validation = capture.compare_against_current()
        assert validation.verdict == UNSUPPORTED
        assert validation.ok  # soundness boundary: not a conviction


def _compile_with_validation(function):
    """o3 fixpoint, CFM with validation, late cleanups; returns stats."""
    o3_pipeline().run_to_fixpoint(function)
    cfm = CFMPass(CFMConfig(validate=True))
    cfm.run(function)
    late_pipeline().run(function)
    return cfm.stats


class TestBenchmarkKernelsValidate:
    def test_every_meld_on_every_benchmark_kernel_is_equivalent(self):
        total = 0
        for name, builder in sorted(ALL_BUILDERS.items()):
            stats = _compile_with_validation(builder().function)
            for validation in stats.validations:
                assert validation.verdict == EQUIVALENT, (
                    f"{name}: meld at {validation.region_entry!r} is "
                    f"{validation.verdict}: {validation.detail}")
            total += len(stats.validations)
        assert total > 0, "no benchmark kernel melded — sweep is vacuous"

    def test_lint_compile_path_stamps_verdicts_on_decisions(self):
        from repro.lint import compile_at_level

        verdicts = set()
        for name, builder in sorted(ALL_BUILDERS.items()):
            decisions = compile_at_level(builder().function, "o3-cfm",
                                         cfm_config=CFMConfig(validate=True))
            for decision in decisions or []:
                if decision.accepted:
                    assert decision.validation is not None
                    verdicts.add(decision.validation)
        assert verdicts == {EQUIVALENT}

    def test_validation_off_by_default_records_nothing(self):
        case = next(iter(sorted(ALL_BUILDERS.items())))[1]()
        function = case.function
        o3_pipeline().run_to_fixpoint(function)
        cfm = CFMPass(CFMConfig())
        cfm.run(function)
        assert cfm.stats.validations == []
        assert all(d.validation is None for d in cfm.stats.decisions)


class TestValidateMeldsHook:
    def _run_cfm_stage(self, function):
        o3_pipeline().run_to_fixpoint(function)
        pipeline = PassPipeline([CFMPass(CFMConfig(validate=True))],
                                validate_melds=validate_melds_hook)
        pipeline.run(function)

    def test_healthy_compile_passes_the_hook(self):
        self._run_cfm_stage(build_diamond())  # must not raise

    def test_corrupted_meld_raises_at_the_guilty_pass(self):
        from repro.difftest import inject

        with inject("meld-swap-operand-under-mask"):
            with pytest.raises(MeldValidationError) as excinfo:
                self._run_cfm_stage(build_diamond())
        assert excinfo.value.pass_name == "cfm"
        assert excinfo.value.validation.verdict == INEQUIVALENT
        assert "INEQUIVALENT" in str(excinfo.value)
