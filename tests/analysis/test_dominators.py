"""Dominator/post-dominator tests, including a networkx cross-check on
randomly generated CFGs (hypothesis)."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    compute_dominator_tree,
    compute_postdominator_tree,
    dominance_frontier,
    immediate_postdominator,
    postdominance_frontier,
)
from repro.ir import Branch, Function, IRBuilder, Ret, const_bool

from tests.support import build_diamond, parse, straightline_function


class TestDominatorsBasic:
    def test_straightline_chain(self):
        f = straightline_function(4)
        dt = compute_dominator_tree(f)
        blocks = f.blocks
        for i in range(1, 4):
            assert dt.idom(blocks[i]) is blocks[i - 1]
        assert dt.idom(blocks[0]) is None
        assert dt.root is f.entry

    def test_diamond(self):
        f = build_diamond()
        dt = compute_dominator_tree(f)
        entry, then, els, merge = f.blocks
        assert dt.idom(then) is entry
        assert dt.idom(els) is entry
        assert dt.idom(merge) is entry
        assert dt.dominates(entry, merge)
        assert not dt.dominates(then, merge)

    def test_dominates_is_reflexive(self):
        f = build_diamond()
        dt = compute_dominator_tree(f)
        for block in f.blocks:
            assert dt.dominates(block, block)
            assert not dt.strictly_dominates(block, block)

    def test_nearest_common_dominator(self):
        f = build_diamond()
        dt = compute_dominator_tree(f)
        entry, then, els, merge = f.blocks
        assert dt.nearest_common_dominator(then, els) is entry
        assert dt.nearest_common_dominator(then, merge) is entry
        assert dt.nearest_common_dominator(then, then) is then

    def test_preorder_parents_first(self):
        f = build_diamond()
        dt = compute_dominator_tree(f)
        order = dt.preorder()
        position = {b: i for i, b in enumerate(order)}
        for block in order:
            parent = dt.idom(block)
            if parent is not None:
                assert position[parent] < position[block]

    def test_loop_header_dominates_body(self):
        f = parse("""
define void @loop(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
""")
        dt = compute_dominator_tree(f)
        h = f.block_by_name("h")
        for name in ("body", "latch", "exit"):
            assert dt.dominates(h, f.block_by_name(name))


class TestPostDominators:
    def test_diamond_ipdom(self):
        f = build_diamond()
        pdt = compute_postdominator_tree(f)
        entry, then, els, merge = f.blocks
        assert immediate_postdominator(pdt, entry) is merge
        assert immediate_postdominator(pdt, then) is merge
        assert pdt.dominates(merge, entry)  # merge post-dominates entry

    def test_branch_arms_do_not_postdominate_each_other(self):
        f = build_diamond()
        pdt = compute_postdominator_tree(f)
        _, then, els, _ = f.blocks
        assert not pdt.dominates(then, els)
        assert not pdt.dominates(els, then)

    def test_multiple_returns_virtual_root(self):
        f = parse("""
define void @two_rets(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret void
b:
  ret void
}
""")
        pdt = compute_postdominator_tree(f)
        entry = f.block_by_name("entry")
        # Neither ret block post-dominates entry; the IPDOM is virtual.
        assert immediate_postdominator(pdt, entry) is None


class TestFrontiers:
    def test_dominance_frontier_of_diamond_arms(self):
        f = build_diamond()
        dt = compute_dominator_tree(f)
        df = dominance_frontier(f, dt)
        entry, then, els, merge = f.blocks
        assert df[then] == {merge}
        assert df[els] == {merge}
        assert df[merge] == set()

    def test_postdominance_frontier_marks_control_dependence(self):
        f = build_diamond()
        pdt = compute_postdominator_tree(f)
        pdf = postdominance_frontier(f, pdt)
        entry, then, els, merge = f.blocks
        # then/else execute depending on the branch in entry.
        assert entry in pdf[then]
        assert entry in pdf[els]
        assert pdf[merge] == set()


def _random_cfg(seed_edges, n_blocks):
    """Build a Function with n_blocks blocks and pseudo-random edges; every
    block gets either a conditional or unconditional branch, last block(s)
    may become rets.  Returns (function, nx.DiGraph of reachable part)."""
    f = Function("rand", [], [])
    blocks = [f.add_block(f"n{i}") for i in range(n_blocks)]
    builder = IRBuilder()
    for i, block in enumerate(blocks):
        builder.position_at_end(block)
        choices = seed_edges[i]
        if not choices:
            builder.ret()
        elif len(choices) == 1:
            builder.br(blocks[choices[0]])
        else:
            builder.cond_br(const_bool(True), blocks[choices[0]], blocks[choices[1]])
    g = nx.DiGraph()
    g.add_nodes_from(range(n_blocks))
    for i, block in enumerate(blocks):
        for succ in block.succs:
            g.add_edge(i, int(succ.name[1:]))
    return f, g


@st.composite
def cfg_shapes(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = []
    for i in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            edges.append([])  # ret
        elif kind == 1:
            edges.append([draw(st.integers(min_value=0, max_value=n - 1))])
        else:
            edges.append([
                draw(st.integers(min_value=0, max_value=n - 1)),
                draw(st.integers(min_value=0, max_value=n - 1)),
            ])
    # Ensure at least one ret so postdom trees exist.
    edges[n - 1] = []
    return n, edges


@given(cfg_shapes())
@settings(max_examples=80, deadline=None)
def test_idoms_match_networkx(shape):
    n, edges = shape
    f, g = _random_cfg(edges, n)
    dt = compute_dominator_tree(f)
    reachable = nx.descendants(g, 0) | {0}
    expected = nx.immediate_dominators(g.subgraph(reachable), 0)
    for i in reachable:
        block = f.blocks[i]
        idom = dt.idom(block)
        if i == 0:
            assert idom is None
        else:
            assert idom is not None
            assert int(idom.name[1:]) == expected[i]


@given(cfg_shapes())
@settings(max_examples=80, deadline=None)
def test_dominates_agrees_with_path_enumeration(shape):
    """a dom b  <=>  removing a disconnects b from the entry."""
    n, edges = shape
    f, g = _random_cfg(edges, n)
    dt = compute_dominator_tree(f)
    reachable = nx.descendants(g, 0) | {0}
    for b in sorted(reachable):
        for a in sorted(reachable):
            dominated = dt.dominates(f.blocks[a], f.blocks[b])
            if a == b:
                assert dominated
                continue
            pruned = g.subgraph(reachable - {a})
            still_reachable = b in pruned and 0 in pruned and nx.has_path(pruned, 0, b)
            assert dominated == (not still_reachable)
