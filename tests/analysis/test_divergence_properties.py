"""Property tests on the divergence analysis invariants.

The analysis result must be a *closed fixpoint*: every data-dependence
and branch-classification rule, re-checked after the fact, must hold of
the returned sets.  Random kernels (reusing the fuzzer generators) give
the shapes.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import compute_divergence
from repro.ir import Branch, Call, IntrinsicName, Load, Phi
from repro.transforms import optimize

import tests.integration.test_cfm_fuzzer as cfm_fuzz
import tests.integration.test_pipeline_fuzzer as pipe_fuzz


def closure_holds(function, info):
    divergent = info.divergent_values
    for block in function.blocks:
        for instr in block:
            if instr.type.is_void:
                continue
            if isinstance(instr, Call) and \
                    instr.callee in IntrinsicName.THREAD_ID_SOURCES:
                assert info.is_divergent(instr), "tid seed must be divergent"
                continue
            if isinstance(instr, Load):
                if info.is_divergent(instr.pointer):
                    assert info.is_divergent(instr), \
                        "load of divergent address must be divergent"
                continue
            if isinstance(instr, Phi):
                continue  # sync dependence checked via branches below
            if any(op in divergent for op in instr.operands):
                assert info.is_divergent(instr), \
                    f"data dependence not closed at {instr!r}"
    for block in function.blocks:
        term = block.terminator
        if isinstance(term, Branch) and term.is_conditional:
            if info.is_divergent(term.condition):
                assert info.has_divergent_branch(block), \
                    f"divergent condition but branch not classified: {block.name}"
            else:
                assert not info.has_divergent_branch(block)


@given(spec=cfm_fuzz.kernel_specs())
@settings(max_examples=30, deadline=None)
def test_divergence_closure_on_branchy_kernels(spec):
    built = cfm_fuzz.build_fuzz_kernel(spec)
    optimize(built.function)
    info = compute_divergence(built.function)
    closure_holds(built.function, info)


@given(spec=pipe_fuzz.loop_kernel_specs())
@settings(max_examples=30, deadline=None)
def test_divergence_closure_on_loopy_kernels(spec):
    built = pipe_fuzz.build_loop_kernel(spec)
    optimize(built.function)
    info = compute_divergence(built.function)
    closure_holds(built.function, info)


@given(spec=cfm_fuzz.kernel_specs())
@settings(max_examples=20, deadline=None)
def test_divergence_is_deterministic(spec):
    built = cfm_fuzz.build_fuzz_kernel(spec)
    optimize(built.function)
    first = compute_divergence(built.function)
    second = compute_divergence(built.function)
    assert first.divergent_values == second.divergent_values
    assert first.divergent_branch_blocks == second.divergent_branch_blocks
