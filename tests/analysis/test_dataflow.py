"""Tests for the generic dataflow framework (block-level + sparse SSA)."""

import pytest

from repro.analysis import (
    FORWARD,
    DataflowAnalysis,
    SparseSolver,
    live_variables,
    run_dataflow,
)
from repro.ir.instructions import BinaryOp
from repro.ir.values import Constant

from tests.support import parse


# ---------------------------------------------------------------------------
# block-level engine


class _ReachedFrom(DataflowAnalysis):
    """Forward may-analysis: the set of block names on some path here."""

    direction = FORWARD

    def boundary(self, function):
        return frozenset()

    def initial(self):
        return frozenset()

    def join(self, states):
        out = frozenset()
        for state in states:
            out |= state
        return out

    def transfer(self, block, state):
        return state | {block.name}


class _Counter(DataflowAnalysis):
    """Deliberately divergent on cycles: the per-block count grows by one
    every visit, so only widening (or the visit cap) can stop it."""

    direction = FORWARD

    def __init__(self, with_widening):
        self.with_widening = with_widening

    def boundary(self, function):
        return 0.0

    def initial(self):
        return 0.0

    def join(self, states):
        return max(states) if states else 0.0

    def transfer(self, block, state):
        return state + 1.0

    def widen(self, old, new):
        if self.with_widening:
            return float("inf")
        return new


LOOP = """
define void @loop(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %n
  br i1 %c, label %h, label %x
x:
  ret void
}
"""


class TestRunDataflow:
    def test_forward_reachability_through_a_diamond(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  ret void
}
""")
        result = run_dataflow(f, _ReachedFrom())
        merge = f.block_by_name("m")
        # Facts from both arms meet at the merge.
        assert result.state_in[merge] == {"entry", "t", "e"}
        assert result.state_out[merge] == {"entry", "t", "e", "m"}

    def test_acyclic_cfg_converges_in_one_sweep(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  ret void
}
""")
        result = run_dataflow(f, _ReachedFrom())
        # Reverse postorder seeding: every block transferred exactly once.
        assert result.iterations == len(f.blocks)

    def test_loop_reaches_fixpoint(self):
        f = parse(LOOP)
        result = run_dataflow(f, _ReachedFrom())
        header = f.block_by_name("h")
        # The back edge folds the header's own name into its input.
        assert result.state_in[header] == {"entry", "h"}

    def test_widening_terminates_an_infinite_lattice(self):
        f = parse(LOOP)
        result = run_dataflow(f, _Counter(with_widening=True),
                              max_iterations_before_widen=3)
        assert result.state_out[f.block_by_name("h")] == float("inf")

    def test_visit_cap_raises_instead_of_returning_a_non_fixpoint(self):
        f = parse(LOOP)
        with pytest.raises(RuntimeError, match="did not converge"):
            run_dataflow(f, _Counter(with_widening=False),
                         max_iterations_before_widen=10_000, max_visits=50)


class TestLiveVariables:
    def test_values_live_across_blocks(self):
        f = parse("""
define void @k(i32 %a) {
entry:
  %x = add i32 %a, 1
  br label %b
b:
  %y = add i32 %x, %a
  ret void
}
""")
        live = live_variables(f)
        b = f.block_by_name("b")
        names = {getattr(v, "name", None) for v in live[b]}
        assert "x" in names          # defined in entry, used in b
        assert "a" in names          # arguments count as live values
        assert "y" not in names      # defined and dead within b

    def test_liveness_splits_across_branch_arms(self):
        f = parse("""
define void @k(i1 %c, i32 %v) {
entry:
  %dbl = add i32 %v, %v
  br i1 %c, label %t, label %e
t:
  %u = add i32 %dbl, 1
  br label %m
e:
  br label %m
m:
  ret void
}
""")
        live = live_variables(f)
        t_names = {getattr(v, "name", None) for v in live[f.block_by_name("t")]}
        e_names = {getattr(v, "name", None) for v in live[f.block_by_name("e")]}
        assert "dbl" in t_names      # used down the then-arm only
        assert "dbl" not in e_names


# ---------------------------------------------------------------------------
# sparse SSA engine


def _const_fold_transfer(instr, fact_of):
    """Tiny constant-folding client: int or the "top" sentinel."""

    def read(value):
        if isinstance(value, Constant):
            return value.value
        return fact_of(value)

    if isinstance(instr, BinaryOp) and instr.opcode == "add":
        a, b = read(instr.lhs), read(instr.rhs)
        if isinstance(a, int) and isinstance(b, int):
            return a + b
    return "top"


class TestSparseSolver:
    FUNC = """
define void @k(i32 %n) {
entry:
  %a = add i32 2, 3
  %b = add i32 %a, 4
  %c = add i32 %b, %n
  ret void
}
"""

    def _solver(self):
        return SparseSolver(bottom=None, join=lambda a, b: a,
                            transfer=_const_fold_transfer)

    def _instr(self, f, name):
        return next(i for block in f.blocks for i in block
                    if getattr(i, "name", None) == name)

    def test_facts_propagate_along_def_use_chains(self):
        f = parse(self.FUNC)
        solver = self._solver()
        solver.solve(f)
        assert solver.fact_of(self._instr(f, "a")) == 5
        assert solver.fact_of(self._instr(f, "b")) == 9
        # %n is an unseeded argument: the chain degrades to top.
        assert solver.fact_of(self._instr(f, "c")) == "top"

    def test_seeded_leaf_facts_flow_downstream(self):
        f = parse(self.FUNC)
        solver = self._solver()
        solver.seed(f.args[0], 100)
        solver.solve(f)
        assert solver.fact_of(self._instr(f, "c")) == 109

    def test_unknown_values_read_as_bottom(self):
        f = parse(self.FUNC)
        solver = self._solver()
        # Before solve, nothing has a fact.
        assert solver.fact_of(self._instr(f, "a")) is None
