"""Tests for region detection — the CFM pass depends on these shapes."""

from repro.analysis import (
    compute_postdominator_tree,
    is_region,
    region_blocks,
    smallest_region_containing,
)

from tests.support import build_diamond, parse


class TestIsRegion:
    def test_diamond_is_region(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        region = is_region(entry, merge)
        assert region is not None
        assert region.blocks == {entry, then, els}
        assert region.exit is merge

    def test_single_arm_is_region(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        region = is_region(then, merge)
        assert region is not None
        assert region.blocks == {then}

    def test_arm_pair_is_not_region(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        # (then, els) — els is not reachable from then.
        assert is_region(then, els) is None

    def test_side_entry_rejected(self):
        f = parse("""
define void @side(i1 %c, i1 %d) {
entry:
  br i1 %c, label %a, label %b
a:
  br i1 %d, label %x, label %m
b:
  br label %x
x:
  br label %m
m:
  ret void
}
""")
        # (a, m) has a side entry: edge b -> x enters through x, not a.
        assert is_region(f.block_by_name("a"), f.block_by_name("m")) is None

    def test_side_exit_rejected(self):
        f = parse("""
define void @sidex(i1 %c, i1 %d) {
entry:
  br i1 %c, label %a, label %m
a:
  br i1 %d, label %b, label %out
b:
  br label %m
out:
  br label %m
m:
  ret void
}
""")
        # (a, b)? a also exits to %out which is not b.
        assert is_region(f.block_by_name("a"), f.block_by_name("b")) is None

    def test_loop_body_region(self):
        f = parse("""
define void @loop(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
""")
        # The whole loop (h, exit) is NOT a region (back edge latch->h is
        # an entry into h from inside).  Direction: edges into h from the
        # region are fine — is_region only rejects entries from *outside*.
        region = is_region(f.block_by_name("h"), f.block_by_name("exit"))
        assert region is not None
        assert f.block_by_name("latch") in region.blocks

    def test_simple_region_flag(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        region = is_region(then, merge)
        assert region.is_simple  # one entry edge, one exit edge


class TestRegionBlocks:
    def test_blocks_exclude_exit(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        blocks = region_blocks(entry, merge)
        assert merge not in blocks
        assert blocks == {entry, then, els}


class TestSmallestRegion:
    def test_divergent_branch_region_is_diamond(self):
        f = build_diamond()
        pdt = compute_postdominator_tree(f)
        entry, then, els, merge = f.blocks
        region = smallest_region_containing(entry, pdt)
        assert region is not None
        assert region.entry is entry
        assert region.exit is merge

    def test_nested_if_finds_inner_region_first(self):
        f = parse("""
define void @nested(i1 %c, i1 %d) {
entry:
  br i1 %c, label %inner, label %m
inner:
  br i1 %d, label %t, label %e
t:
  br label %im
e:
  br label %im
im:
  br label %m
m:
  ret void
}
""")
        pdt = compute_postdominator_tree(f)
        region = smallest_region_containing(f.block_by_name("inner"), pdt)
        assert region.exit is f.block_by_name("im")
        outer = smallest_region_containing(f.block_by_name("entry"), pdt)
        assert outer.exit is f.block_by_name("m")

    def test_no_region_for_ret_block(self):
        f = build_diamond()
        pdt = compute_postdominator_tree(f)
        merge = f.blocks[-1]
        assert smallest_region_containing(merge, pdt) is None


class TestEnclosingRegions:
    def test_enumerates_branch_rooted_regions(self):
        from repro.analysis import compute_dominator_tree
        from repro.analysis.regions import enclosing_simple_regions

        f = parse("""
define void @k(i1 %c, i1 %d) {
entry:
  br i1 %c, label %inner, label %m
inner:
  br i1 %d, label %t, label %e
t:
  br label %im
e:
  br label %im
im:
  br label %m
m:
  ret void
}
""")
        dt = compute_dominator_tree(f)
        pdt = compute_postdominator_tree(f)
        regions = enclosing_simple_regions(f, dt, pdt)
        pairs = {(r.entry.name, r.exit.name) for r in regions}
        assert ("entry", "m") in pairs
        assert ("inner", "im") in pairs
