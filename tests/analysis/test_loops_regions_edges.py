"""CFG edge cases for the loop and region analyses.

Shapes the melding pipeline can meet but the mainline tests don't
exercise: irreducible cycles (no natural loop at all), self-loop
headers (the loop body *is* the header), and SESE regions whose exit is
the function's own exit block.
"""

from repro.analysis import (
    compute_dominator_tree,
    compute_loop_info,
    compute_postdominator_tree,
    is_region,
    live_variables,
    region_blocks,
    smallest_region_containing,
)

from tests.support import parse

IRREDUCIBLE = """
define void @irr(i1 %c, i1 %d) {
entry:
  br i1 %c, label %a, label %b
a:
  br i1 %d, label %b, label %x
b:
  br i1 %d, label %a, label %x
x:
  ret void
}
"""

SELF_LOOP = """
define void @selfloop(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %n
  br i1 %c, label %h, label %x
x:
  ret void
}
"""


class TestIrreducibleCFG:
    """a <-> b is a cycle with two entries: not a natural loop."""

    def test_no_natural_loops_detected(self):
        f = parse(IRREDUCIBLE)
        info = compute_loop_info(f)
        assert len(info) == 0
        assert info.loop_for(f.block_by_name("a")) is None
        assert info.loop_for(f.block_by_name("b")) is None

    def test_dominators_are_still_well_defined(self):
        f = parse(IRREDUCIBLE)
        dt = compute_dominator_tree(f)
        entry = f.block_by_name("entry")
        # Neither cycle member dominates the other: both idom to entry.
        assert dt.idom(f.block_by_name("a")) is entry
        assert dt.idom(f.block_by_name("b")) is entry

    def test_whole_body_is_still_a_region(self):
        f = parse(IRREDUCIBLE)
        # Entries from *inside* the candidate region are fine; only a
        # side entry from outside would disqualify (entry, x).
        region = is_region(f.block_by_name("entry"), f.block_by_name("x"))
        assert region is not None
        assert region.blocks == {f.block_by_name("entry"),
                                 f.block_by_name("a"), f.block_by_name("b")}

    def test_cycle_members_alone_are_not_a_region(self):
        f = parse(IRREDUCIBLE)
        # (a, x) has a side entry: entry -> b -> a bypasses a... and b is
        # inside the candidate via the a->b edge but reachable from
        # outside too.
        assert is_region(f.block_by_name("a"), f.block_by_name("x")) is None

    def test_dataflow_converges_on_the_cycle(self):
        f = parse(IRREDUCIBLE)
        live = live_variables(f)
        # %d is consumed by both cycle members, so it is live into each.
        for name in ("a", "b"):
            block = f.block_by_name(name)
            assert f.args[1] in live[block]


class TestSelfLoopHeader:
    """A loop whose header is its own (only) latch."""

    def test_loop_is_exactly_the_header(self):
        f = parse(SELF_LOOP)
        info = compute_loop_info(f)
        assert len(info) == 1
        (loop,) = info
        h = f.block_by_name("h")
        assert loop.header is h
        assert loop.blocks == {h}
        assert loop.single_latch is h
        assert loop.exiting_blocks == [h]
        assert loop.exit_blocks == [f.block_by_name("x")]
        assert loop.depth == 1

    def test_preheader_is_the_entry(self):
        f = parse(SELF_LOOP)
        (loop,) = compute_loop_info(f)
        assert loop.preheader is f.block_by_name("entry")

    def test_header_region_spans_the_self_loop(self):
        f = parse(SELF_LOOP)
        region = is_region(f.block_by_name("h"), f.block_by_name("x"))
        assert region is not None
        assert region.blocks == {f.block_by_name("h")}


class TestRegionExitIsFunctionExit:
    """SESE regions whose exit block is the function's terminal block."""

    DIAMOND = """
define void @k(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  ret void
}
"""

    def test_region_with_ret_block_exit(self):
        f = parse(self.DIAMOND)
        m = f.block_by_name("m")
        assert m.succs == []  # genuinely the function exit
        region = is_region(f.block_by_name("entry"), m)
        assert region is not None
        assert m not in region.blocks
        assert region.exit is m

    def test_region_blocks_exclude_the_function_exit(self):
        f = parse(self.DIAMOND)
        blocks = region_blocks(f.block_by_name("entry"), f.block_by_name("m"))
        assert blocks == {f.block_by_name("entry"), f.block_by_name("t"),
                          f.block_by_name("e")}

    def test_smallest_region_reaches_the_postdominator_root(self):
        f = parse(self.DIAMOND)
        pdt = compute_postdominator_tree(f)
        region = smallest_region_containing(f.block_by_name("entry"), pdt)
        assert region is not None
        assert region.exit is f.block_by_name("m")
