"""Tests for CFG utilities and the static latency model."""

import pytest

from repro.analysis import (
    DEFAULT_LATENCY_MODEL,
    LatencyModel,
    postorder,
    reachable_blocks,
    reachable_from,
    reverse_postorder,
    split_edge,
    verify_preds_consistent,
)
from repro.ir import (
    AddressSpace,
    IRBuilder,
    Load,
    Opcode,
    Store,
    Undef,
    I32,
    pointer,
    verify_function,
)

from tests.support import build_diamond, parse, straightline_function


class TestOrders:
    def test_rpo_starts_at_entry(self):
        f = build_diamond()
        rpo = reverse_postorder(f)
        assert rpo[0] is f.entry
        assert rpo[-1] is f.blocks[-1]

    def test_rpo_respects_edges_in_dag(self):
        f = build_diamond()
        rpo = reverse_postorder(f)
        position = {b: i for i, b in enumerate(rpo)}
        for block in f.blocks:
            for succ in block.succs:
                if position[succ] > position[block] or True:
                    # in a DAG every edge goes forward in RPO
                    assert position[block] < position[succ]

    def test_postorder_is_reverse_of_rpo(self):
        f = build_diamond()
        assert postorder(f) == list(reversed(reverse_postorder(f)))

    def test_unreachable_excluded(self):
        f = straightline_function(2)
        dead = f.add_block("dead")
        IRBuilder(dead).ret()
        assert dead not in reachable_blocks(f)


class TestReachableFrom:
    def test_stop_block_excluded(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        blocks = reachable_from(entry, stop=merge)
        assert blocks == {entry, then, els}

    def test_without_stop_reaches_all(self):
        f = build_diamond()
        assert reachable_from(f.entry) == set(f.blocks)


class TestSplitEdge:
    def test_split_simple_edge(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        new = split_edge(then, merge, "mid")
        verify_function(f)
        assert then.single_succ is new
        assert new.single_succ is merge
        assert then not in merge.preds

    def test_split_updates_phis(self):
        f = parse("""
define void @k(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret void
}
""")
        a, m = f.block_by_name("a"), f.block_by_name("m")
        new = split_edge(a, m, "split")
        verify_function(f)
        phi = m.phis[0]
        assert phi.incoming_for(new).value == 1

    def test_preds_stay_consistent(self):
        f = build_diamond()
        entry, then, els, merge = f.blocks
        split_edge(entry, then, "s")
        verify_preds_consistent(f)


class TestLatencyModel:
    def test_shared_cheaper_than_global(self):
        m = DEFAULT_LATENCY_MODEL
        shared_load = Load(Undef(pointer(I32, AddressSpace.SHARED)))
        global_load = Load(Undef(pointer(I32, AddressSpace.GLOBAL)))
        assert m.latency(shared_load) < m.latency(global_load)

    def test_shared_more_expensive_than_alu(self):
        # §VI-D: melding shared-memory instructions beats melding ALU ops
        # because LDS latency dominates ALU latency.
        from repro.ir import BinaryOp, const_int

        m = DEFAULT_LATENCY_MODEL
        alu = BinaryOp(Opcode.ADD, const_int(1, I32), const_int(2, I32))
        shared_load = Load(Undef(pointer(I32, AddressSpace.SHARED)))
        assert m.latency(shared_load) > m.latency(alu)

    def test_block_latency_sums(self):
        f = straightline_function(1)
        m = DEFAULT_LATENCY_MODEL
        total = m.block_latency(f.entry)
        assert total == sum(m.latency(i) for i in f.entry)
        assert total > 0

    def test_custom_model(self):
        m = LatencyModel()
        m.opcode_latency[Opcode.ADD] = 99
        from repro.ir import BinaryOp, const_int

        assert m.latency(BinaryOp(Opcode.ADD, const_int(1, I32), const_int(2, I32))) == 99
        # The default model is unaffected.
        assert DEFAULT_LATENCY_MODEL.opcode_latency[Opcode.ADD] != 99

    def test_select_and_branch_latencies_exposed(self):
        m = DEFAULT_LATENCY_MODEL
        assert m.select_latency > 0
        assert m.branch_latency > 0
