"""Tests for the GPU divergence analysis."""

from repro.analysis import compute_divergence
from repro.ir import Call, IntrinsicName, Load

from tests.support import build_diamond, parse


class TestSeeds:
    def test_tid_is_divergent(self):
        f = build_diamond()
        info = compute_divergence(f)
        tid = next(i for i in f.instructions()
                   if isinstance(i, Call) and i.callee == IntrinsicName.TID_X)
        assert info.is_divergent(tid)

    def test_arguments_uniform_by_default(self):
        f = build_diamond()
        info = compute_divergence(f)
        assert info.is_uniform(f.args[0])
        assert info.is_uniform(f.args[1])

    def test_explicit_divergent_argument(self):
        f = parse("""
define void @k(i32 %x) {
entry:
  %y = add i32 %x, 1
  ret void
}
""")
        info = compute_divergence(f, divergent_args=[f.args[0]])
        assert info.is_divergent(f.args[0])
        y = f.entry.instructions[0]
        assert info.is_divergent(y)


class TestDataDependence:
    def test_taint_propagates_through_arithmetic(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %a = add i32 %tid, 1
  %b = mul i32 %a, 2
  %u = add i32 %n, 3
  ret void
}
""")
        info = compute_divergence(f)
        entry = f.entry
        tid, a, b, u = entry.instructions[:4]
        assert info.is_divergent(a)
        assert info.is_divergent(b)
        assert info.is_uniform(u)

    def test_load_divergent_iff_pointer_divergent(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %dptr = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %dval = load i32, i32 addrspace(1)* %dptr
  %uptr = getelementptr i32, i32 addrspace(1)* %p, i32 0
  %uval = load i32, i32 addrspace(1)* %uptr
  ret void
}
""")
        info = compute_divergence(f)
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert info.is_divergent(loads[0])
        assert info.is_uniform(loads[1])


class TestBranchClassification:
    def test_divergent_branch_detected(self):
        f = build_diamond()
        info = compute_divergence(f)
        assert info.has_divergent_branch(f.entry)

    def test_uniform_branch_not_divergent(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %c = icmp slt i32 %n, 10
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  ret void
}
""")
        info = compute_divergence(f)
        assert not info.has_divergent_branch(f.entry)
        assert info.divergent_branch_blocks == set()


class TestSyncDependence:
    def test_phi_at_divergent_join_is_divergent(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret void
}
""")
        info = compute_divergence(f)
        phi = f.block_by_name("m").phis[0]
        # Incoming values are uniform constants, but WHICH one arrives
        # depends on the thread: sync dependence.
        assert info.is_divergent(phi)

    def test_phi_at_uniform_join_stays_uniform(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %c = icmp slt i32 %n, 10
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret void
}
""")
        info = compute_divergence(f)
        phi = f.block_by_name("m").phis[0]
        assert info.is_uniform(phi)

    def test_loop_live_out_temporal_divergence(self):
        # Threads leave the loop at different iterations -> values defined
        # in the loop and used OUTSIDE it are divergent (temporal
        # divergence), while the counter stays uniform for active threads.
        f = parse("""
define void @k(i32 addrspace(1)* %out) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %tid
  br i1 %c, label %h, label %exit
exit:
  %p = getelementptr i32, i32 addrspace(1)* %out, i32 0
  store i32 %ni, i32 addrspace(1)* %p
  ret void
}
""")
        info = compute_divergence(f)
        assert info.has_divergent_branch(f.block_by_name("h"))
        h = f.block_by_name("h")
        ni = h.instructions[1]
        assert ni.name == "ni"
        # %ni is used in %exit, outside the loop: temporally divergent.
        assert info.is_divergent(ni)

    def test_loop_internal_value_stays_uniform(self):
        # The same loop, but nothing escapes: the counter phi is uniform
        # across the still-active threads.
        f = parse("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %tid
  br i1 %c, label %h, label %exit
exit:
  ret void
}
""")
        info = compute_divergence(f)
        phi = f.block_by_name("h").phis[0]
        assert info.is_uniform(phi)

    def test_transitive_branch_divergence(self):
        # A uniform-looking branch whose condition depends on a
        # sync-divergent phi must itself become divergent.
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  %c2 = icmp eq i32 %p, 1
  br i1 %c2, label %x, label %y
x:
  br label %y
y:
  ret void
}
""")
        info = compute_divergence(f)
        assert info.has_divergent_branch(f.block_by_name("m"))
