"""Tests for the GPU divergence analysis."""

from repro.analysis import (
    cached_divergence,
    compute_divergence,
    invalidate_divergence,
)
from repro.analysis.divergence import _join_blocks, _mark_temporal_divergence
from repro.ir import Call, IntrinsicName, Load

from tests.support import build_diamond, parse


class TestSeeds:
    def test_tid_is_divergent(self):
        f = build_diamond()
        info = compute_divergence(f)
        tid = next(i for i in f.instructions()
                   if isinstance(i, Call) and i.callee == IntrinsicName.TID_X)
        assert info.is_divergent(tid)

    def test_arguments_uniform_by_default(self):
        f = build_diamond()
        info = compute_divergence(f)
        assert info.is_uniform(f.args[0])
        assert info.is_uniform(f.args[1])

    def test_explicit_divergent_argument(self):
        f = parse("""
define void @k(i32 %x) {
entry:
  %y = add i32 %x, 1
  ret void
}
""")
        info = compute_divergence(f, divergent_args=[f.args[0]])
        assert info.is_divergent(f.args[0])
        y = f.entry.instructions[0]
        assert info.is_divergent(y)


class TestDataDependence:
    def test_taint_propagates_through_arithmetic(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %a = add i32 %tid, 1
  %b = mul i32 %a, 2
  %u = add i32 %n, 3
  ret void
}
""")
        info = compute_divergence(f)
        entry = f.entry
        tid, a, b, u = entry.instructions[:4]
        assert info.is_divergent(a)
        assert info.is_divergent(b)
        assert info.is_uniform(u)

    def test_load_divergent_iff_pointer_divergent(self):
        f = parse("""
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %dptr = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  %dval = load i32, i32 addrspace(1)* %dptr
  %uptr = getelementptr i32, i32 addrspace(1)* %p, i32 0
  %uval = load i32, i32 addrspace(1)* %uptr
  ret void
}
""")
        info = compute_divergence(f)
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert info.is_divergent(loads[0])
        assert info.is_uniform(loads[1])


class TestBranchClassification:
    def test_divergent_branch_detected(self):
        f = build_diamond()
        info = compute_divergence(f)
        assert info.has_divergent_branch(f.entry)

    def test_uniform_branch_not_divergent(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %c = icmp slt i32 %n, 10
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  ret void
}
""")
        info = compute_divergence(f)
        assert not info.has_divergent_branch(f.entry)
        assert info.divergent_branch_blocks == set()


class TestSyncDependence:
    def test_phi_at_divergent_join_is_divergent(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret void
}
""")
        info = compute_divergence(f)
        phi = f.block_by_name("m").phis[0]
        # Incoming values are uniform constants, but WHICH one arrives
        # depends on the thread: sync dependence.
        assert info.is_divergent(phi)

    def test_phi_at_uniform_join_stays_uniform(self):
        f = parse("""
define void @k(i32 %n) {
entry:
  %c = icmp slt i32 %n, 10
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret void
}
""")
        info = compute_divergence(f)
        phi = f.block_by_name("m").phis[0]
        assert info.is_uniform(phi)

    def test_loop_live_out_temporal_divergence(self):
        # Threads leave the loop at different iterations -> values defined
        # in the loop and used OUTSIDE it are divergent (temporal
        # divergence), while the counter stays uniform for active threads.
        f = parse("""
define void @k(i32 addrspace(1)* %out) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %tid
  br i1 %c, label %h, label %exit
exit:
  %p = getelementptr i32, i32 addrspace(1)* %out, i32 0
  store i32 %ni, i32 addrspace(1)* %p
  ret void
}
""")
        info = compute_divergence(f)
        assert info.has_divergent_branch(f.block_by_name("h"))
        h = f.block_by_name("h")
        ni = h.instructions[1]
        assert ni.name == "ni"
        # %ni is used in %exit, outside the loop: temporally divergent.
        assert info.is_divergent(ni)

    def test_loop_internal_value_stays_uniform(self):
        # The same loop, but nothing escapes: the counter phi is uniform
        # across the still-active threads.
        f = parse("""
define void @k() {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %tid
  br i1 %c, label %h, label %exit
exit:
  ret void
}
""")
        info = compute_divergence(f)
        phi = f.block_by_name("h").phis[0]
        assert info.is_uniform(phi)

    def test_join_blocks_nested_diamonds(self):
        # Two divergent diamonds, one nested in the outer's then-path.
        # Each branch's joins are ITS OWN merge point: the inner merge is
        # reachable from only one outer successor, so it joins only the
        # inner branch; the outer merge is the outer branch's IPDOM.
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  %c2 = icmp slt i32 %tid, 4
  br i1 %c2, label %it, label %if
it:
  br label %im
if:
  br label %im
im:
  %pi = phi i32 [ 1, %it ], [ 2, %if ]
  br label %m
b:
  br label %m
m:
  %po = phi i32 [ %pi, %im ], [ 0, %b ]
  ret void
}
""")
        blocks = {name: f.block_by_name(name) for name in
                  ("entry", "a", "im", "m")}
        assert _join_blocks(blocks["entry"]) == {blocks["m"]}
        assert _join_blocks(blocks["a"]) == {blocks["im"]}
        info = compute_divergence(f)
        assert info.is_divergent(blocks["im"].phis[0])
        assert info.is_divergent(blocks["m"].phis[0])

    def test_join_blocks_cut_at_loop_reconvergence(self):
        # A divergent diamond INSIDE a uniform loop: the joins of the
        # diamond's branch stop at its IPDOM (the latch), never flowing
        # around the backedge into the loop header — the simulator
        # reconverges the warp at the IPDOM, so the header phi stays
        # uniform.
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %l ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %x
body:
  %d = icmp slt i32 %tid, %i
  br i1 %d, label %t, label %f
t:
  br label %l
f:
  br label %l
l:
  %p = phi i32 [ 1, %t ], [ 2, %f ]
  %ni = add i32 %i, 1
  br label %h
x:
  ret void
}
""")
        body, latch, header = (f.block_by_name(n) for n in ("body", "l", "h"))
        assert _join_blocks(body) == {latch}
        info = compute_divergence(f)
        assert info.is_divergent(latch.phis[0])       # the diamond's join
        assert info.is_uniform(header.phis[0])        # NOT tainted via backedge
        assert not info.has_divergent_branch(header)  # uniform exit

    def test_join_blocks_non_conditional(self):
        f = parse("""
define void @k() {
entry:
  br label %x
x:
  ret void
}
""")
        assert _join_blocks(f.entry) == set()

    def test_transitive_branch_divergence(self):
        # A uniform-looking branch whose condition depends on a
        # sync-divergent phi must itself become divergent.
        f = parse("""
define void @k(i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %c = icmp slt i32 %tid, %n
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  %c2 = icmp eq i32 %p, 1
  br i1 %c2, label %x, label %y
x:
  br label %y
y:
  ret void
}
""")
        info = compute_divergence(f)
        assert info.has_divergent_branch(f.block_by_name("m"))


LOOP_LIVE_OUT = """
define void @k(i32 addrspace(1)* %out) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %h ]
  %ni = add i32 %i, 1
  %c = icmp slt i32 %ni, %tid
  br i1 %c, label %h, label %exit
exit:
  %p = getelementptr i32, i32 addrspace(1)* %out, i32 0
  store i32 %ni, i32 addrspace(1)* %p
  ret void
}
"""


class TestTemporalDivergenceUnit:
    """Direct tests of _mark_temporal_divergence, isolated from the
    surrounding fixpoint."""

    def test_live_out_of_divergently_exiting_loop(self):
        f = parse(LOOP_LIVE_OUT)
        h = f.block_by_name("h")
        phi, ni = h.instructions[:2]
        divergent = set()
        # Pretend the fixpoint classified the exiting branch divergent.
        assert _mark_temporal_divergence(f, divergent, {h}) is True
        # Only the value USED outside the loop is temporally divergent;
        # the phi never escapes and stays as-is.
        assert ni in divergent
        assert phi not in divergent

    def test_no_divergent_exit_no_marking(self):
        f = parse(LOOP_LIVE_OUT)
        divergent = set()
        assert _mark_temporal_divergence(f, divergent, set()) is False
        assert divergent == set()

    def test_idempotent_second_call(self):
        f = parse(LOOP_LIVE_OUT)
        h = f.block_by_name("h")
        divergent = set()
        assert _mark_temporal_divergence(f, divergent, {h}) is True
        # Fixpoint discipline: nothing new on the second sweep.
        assert _mark_temporal_divergence(f, divergent, {h}) is False


class TestDivergenceMemo:
    def test_cached_returns_same_object(self):
        f = build_diamond()
        assert cached_divergence(f) is cached_divergence(f)

    def test_invalidate_forces_recompute(self):
        f = build_diamond()
        first = cached_divergence(f)
        invalidate_divergence(f)
        assert cached_divergence(f) is not first

    def test_structural_change_misses_automatically(self):
        from repro.ir import IRBuilder

        f = build_diamond()
        first = cached_divergence(f)
        # Growing the function changes the fingerprint: no stale hit
        # even without an explicit invalidate.
        block = f.add_block("appendix")
        IRBuilder(block).ret()
        assert cached_divergence(f) is not first
