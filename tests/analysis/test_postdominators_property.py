"""Property tests: post-dominators and regions cross-checked against
networkx / brute-force path enumeration on random CFGs."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    compute_postdominator_tree,
    immediate_postdominator,
    is_region,
)
from repro.ir import Function, IRBuilder, const_bool


def _random_cfg(seed_edges, n_blocks):
    f = Function("rand", [], [])
    blocks = [f.add_block(f"n{i}") for i in range(n_blocks)]
    builder = IRBuilder()
    for i, block in enumerate(blocks):
        builder.position_at_end(block)
        choices = seed_edges[i]
        if not choices:
            builder.ret()
        elif len(choices) == 1:
            builder.br(blocks[choices[0]])
        else:
            builder.cond_br(const_bool(True), blocks[choices[0]],
                            blocks[choices[1]])
    g = nx.DiGraph()
    g.add_nodes_from(range(n_blocks))
    for i, block in enumerate(blocks):
        for succ in block.succs:
            g.add_edge(i, int(succ.name[1:]))
    return f, g


@st.composite
def cfg_shapes(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    edges = []
    for i in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            edges.append([])
        elif kind == 1:
            edges.append([draw(st.integers(0, n - 1))])
        else:
            edges.append([draw(st.integers(0, n - 1)),
                          draw(st.integers(0, n - 1))])
    edges[n - 1] = []  # ensure a ret exists
    return n, edges


@given(cfg_shapes())
@settings(max_examples=80, deadline=None)
def test_postdominance_agrees_with_path_enumeration(shape):
    """b postdom a  <=>  every path a -> any exit passes through b
    (within the reachable part, considering only exits reachable from a)."""
    n, edges = shape
    f, g = _random_cfg(edges, n)
    pdt = compute_postdominator_tree(f)
    reachable = nx.descendants(g, 0) | {0}
    exits = [i for i in reachable if not list(g.successors(i))]

    for a in sorted(reachable):
        my_exits = [e for e in exits if e == a or nx.has_path(g, a, e)]
        if not my_exits:
            continue  # a is inside an infinite loop: postdom undefined
        for b in sorted(reachable):
            claimed = pdt.dominates(f.blocks[b], f.blocks[a])
            if a == b:
                assert claimed
                continue
            # Remove b: if some exit is still reachable from a, b does not
            # post-dominate a.
            pruned = g.subgraph(set(g.nodes) - {b})
            escapes = a in pruned and any(
                e in pruned and (e == a or nx.has_path(pruned, a, e))
                for e in my_exits)
            expected = not escapes
            assert claimed == expected, (a, b, edges)


@given(cfg_shapes())
@settings(max_examples=60, deadline=None)
def test_ipdom_is_a_postdominator(shape):
    n, edges = shape
    f, g = _random_cfg(edges, n)
    pdt = compute_postdominator_tree(f)
    reachable = nx.descendants(g, 0) | {0}
    for i in sorted(reachable):
        block = f.blocks[i]
        ipdom = immediate_postdominator(pdt, block)
        if ipdom is not None:
            assert pdt.dominates(ipdom, block)
            assert ipdom is not block


@given(cfg_shapes())
@settings(max_examples=60, deadline=None)
def test_region_edges_are_really_single_entry_exit(shape):
    """Whatever is_region accepts must have no side entries/exits."""
    n, edges = shape
    f, g = _random_cfg(edges, n)
    reachable = nx.descendants(g, 0) | {0}
    blocks = f.blocks
    for e in sorted(reachable):
        for x in sorted(reachable):
            region = is_region(blocks[e], blocks[x])
            if region is None:
                continue
            for node in region.blocks:
                for succ in node.succs:
                    assert succ in region.blocks or succ is region.exit
                if node is region.entry:
                    continue
                for pred in node.preds:
                    assert pred in region.blocks
