"""Tests for natural-loop detection."""

from repro.analysis import compute_loop_info

from tests.support import build_diamond, parse


SIMPLE_LOOP = """
define void @loop(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %ni, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %ni = add i32 %i, 1
  br label %h
exit:
  ret void
}
"""

NESTED_LOOPS = """
define void @nested(i32 %n) {
entry:
  br label %oh
oh:
  %i = phi i32 [ 0, %entry ], [ %ni, %olatch ]
  %oc = icmp slt i32 %i, %n
  br i1 %oc, label %ih, label %exit
ih:
  %j = phi i32 [ 0, %oh ], [ %nj, %ilatch ]
  %ic = icmp slt i32 %j, %n
  br i1 %ic, label %ilatch, label %olatch
ilatch:
  %nj = add i32 %j, 1
  br label %ih
olatch:
  %ni = add i32 %i, 1
  br label %oh
exit:
  ret void
}
"""


class TestSimpleLoop:
    def test_detects_one_loop(self):
        f = parse(SIMPLE_LOOP)
        li = compute_loop_info(f)
        assert len(li) == 1
        loop = li.loops[0]
        assert loop.header is f.block_by_name("h")

    def test_loop_blocks(self):
        f = parse(SIMPLE_LOOP)
        loop = compute_loop_info(f).loops[0]
        names = {b.name for b in loop.blocks}
        assert names == {"h", "body", "latch"}

    def test_latch_and_exits(self):
        f = parse(SIMPLE_LOOP)
        loop = compute_loop_info(f).loops[0]
        assert loop.single_latch is f.block_by_name("latch")
        assert loop.exit_blocks == [f.block_by_name("exit")]
        assert loop.exiting_blocks == [f.block_by_name("h")]

    def test_preheader(self):
        f = parse(SIMPLE_LOOP)
        loop = compute_loop_info(f).loops[0]
        assert loop.preheader is f.block_by_name("entry")

    def test_loop_for_lookup(self):
        f = parse(SIMPLE_LOOP)
        li = compute_loop_info(f)
        assert li.loop_for(f.block_by_name("body")) is li.loops[0]
        assert li.loop_for(f.block_by_name("exit")) is None


class TestNestedLoops:
    def test_two_loops_with_nesting(self):
        f = parse(NESTED_LOOPS)
        li = compute_loop_info(f)
        assert len(li) == 2
        outer = next(l for l in li if l.header.name == "oh")
        inner = next(l for l in li if l.header.name == "ih")
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.parent is None

    def test_depths(self):
        f = parse(NESTED_LOOPS)
        li = compute_loop_info(f)
        outer = next(l for l in li if l.header.name == "oh")
        inner = next(l for l in li if l.header.name == "ih")
        assert outer.depth == 1
        assert inner.depth == 2

    def test_innermost_lookup_prefers_inner(self):
        f = parse(NESTED_LOOPS)
        li = compute_loop_info(f)
        inner = next(l for l in li if l.header.name == "ih")
        assert li.loop_for(f.block_by_name("ilatch")) is inner

    def test_innermost_loops(self):
        f = parse(NESTED_LOOPS)
        li = compute_loop_info(f)
        assert [l.header.name for l in li.innermost_loops()] == ["ih"]

    def test_top_level(self):
        f = parse(NESTED_LOOPS)
        li = compute_loop_info(f)
        assert [l.header.name for l in li.top_level] == ["oh"]


class TestNoLoops:
    def test_diamond_has_no_loops(self):
        f = build_diamond()
        li = compute_loop_info(f)
        assert len(li) == 0
        assert li.top_level == []
