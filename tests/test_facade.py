"""The public ``repro`` facade: compile / launch / meld + import hygiene."""

import inspect
import re
import warnings
from pathlib import Path

import pytest

import repro
from repro._deprecation import reset_warn_registry
from tests.support import build_diamond

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_builder():
    k = repro.KernelBuilder("scale", params=[("data", repro.GLOBAL_I32_PTR),
                                             ("bias", repro.I32)])
    tid = k.thread_id()
    parity = k.and_(tid, k.const(1))
    is_even = k.icmp(repro.ICmpPredicate.EQ, parity, k.const(0))

    def even():
        k.store_at(k.param("data"), tid,
                   k.add(k.mul(k.load_at(k.param("data"), tid), k.const(2)),
                         k.param("bias")))

    def odd():
        k.store_at(k.param("data"), tid,
                   k.add(k.mul(k.load_at(k.param("data"), tid), k.const(3)),
                         k.param("bias")))

    k.if_(is_even, even, odd)
    k.finish()
    return k


class TestCompile:
    def test_level_none_leaves_ir_alone(self):
        k = make_builder()
        before = repro.print_function(k.function)
        report = repro.compile(k, level="none")
        assert repro.print_function(report.function) == before
        assert report.melds == 0

    def test_o3_runs_and_times_passes(self):
        report = repro.compile(make_builder(), level="O3")
        assert report.level == "O3"
        assert report.pass_timings
        assert report.seconds >= 0

    def test_cfm_melds_the_diamond(self):
        report = repro.compile(make_builder(), level="O3", cfm=True)
        assert report.melds == 1
        assert report.cfm_stats.melds[0].selects_inserted >= 1

    def test_cfm_accepts_config(self):
        config = repro.CFMConfig(profitability_threshold=10_000.0)
        report = repro.compile(make_builder(), cfm=config)
        assert report.melds == 0  # threshold too high to meld anything

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown level"):
            repro.compile(make_builder(), level="O2")

    def test_accepts_raw_function(self):
        function = build_diamond(identical=True)
        report = repro.compile(function, level="none", cfm=True)
        assert report.function is function
        assert report.melds == 1


class TestLaunch:
    def test_buffers_and_scalars(self):
        k = make_builder()
        result = repro.launch(k, grid=1, block=4,
                              args={"data": [1, 2, 3, 4], "bias": 10})
        assert result.outputs == {"data": [12, 16, 16, 22]}
        assert result.metrics.cycles > 0

    def test_compile_then_launch_same_numbers(self):
        plain = repro.launch(make_builder(), grid=1, block=4,
                             args={"data": [1, 2, 3, 4], "bias": 10})
        melded_kernel = make_builder()
        repro.compile(melded_kernel, level="O3", cfm=True)
        melded = repro.launch(melded_kernel, grid=1, block=4,
                              args={"data": [1, 2, 3, 4], "bias": 10})
        assert plain.outputs == melded.outputs

    def test_kernel_name_required_for_multi_kernel_modules(self):
        module = repro.Module("m")
        with pytest.raises(ValueError, match="0 kernels"):
            repro.launch(module, grid=1, block=1, args={})

    def test_string_argument_rejected(self):
        with pytest.raises(TypeError, match="scalar or sequence"):
            repro.launch(make_builder(), grid=1, block=4,
                         args={"data": "oops", "bias": 0})


class TestMachineAPI:
    """The redesigned machine-configuration surface: one ``machine=``
    argument everywhere, legacy spellings as warning deprecated aliases,
    duplicated fields rejected with the winning spelling named."""

    ARGS = {"data": [1, 2, 3, 4], "bias": 10}

    def test_facade_exports_machine_vocabulary(self):
        for name in ("MachineConfig", "ReconvergencePolicy",
                     "RECONVERGENCE_POLICIES", "EXECUTORS"):
            assert name in repro.__all__, name

    def test_config_first_signatures(self):
        # ``machine=`` is the canonical parameter on every launch
        # surface; the legacy ``executor=`` alias trails it.
        for fn in (repro.launch, repro.run_kernel):
            params = list(inspect.signature(fn).parameters)
            assert "machine" in params, fn
            assert params.index("machine") < params.index("executor"), fn
        gpu_params = inspect.signature(repro.GPU.__init__).parameters
        assert "machine" in gpu_params

    def test_launch_accepts_machine(self):
        machine = repro.MachineConfig(executor="reference",
                                      reconvergence="min-pc")
        result = repro.launch(make_builder(), grid=1, block=4,
                              args=dict(self.ARGS), machine=machine)
        assert result.outputs == {"data": [12, 16, 16, 22]}

    def test_machine_plus_legacy_kwarg_rejected(self):
        with pytest.raises(ValueError, match="machine= config wins"):
            repro.launch(make_builder(), grid=1, block=4,
                         args=dict(self.ARGS),
                         machine=repro.MachineConfig(), executor="fast")

    def test_gpu_plus_machine_kwargs_rejected(self):
        # The generalized ambiguity check: *any* kwarg duplicating a
        # MachineConfig the GPU already carries is an error naming the
        # winning spelling.
        k = make_builder()
        with repro.GPU(k.module) as gpu:
            for kwargs in ({"machine": repro.MachineConfig()},
                           {"executor": "fast"}):
                with pytest.raises(ValueError,
                                   match="GPU already carries its machine"):
                    repro.launch(k.module, grid=1, block=4,
                                 args=dict(self.ARGS), gpu=gpu, **kwargs)

    def test_legacy_kwargs_warn_once_per_call_site(self):
        reset_warn_registry()
        k = make_builder()

        def legacy_launch():
            return repro.launch(k, grid=1, block=4, args=dict(self.ARGS),
                                executor="fast")

        with pytest.warns(DeprecationWarning, match="executor=.*deprecated"):
            legacy_launch()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            legacy_launch()  # same call site: silent the second time
        with pytest.warns(DeprecationWarning, match="executor=.*deprecated"):
            repro.launch(k, grid=1, block=4, args=dict(self.ARGS),
                         executor="fast")  # fresh call site warns anew

    def test_legacy_spelling_still_works(self):
        reset_warn_registry()
        with pytest.warns(DeprecationWarning):
            result = repro.launch(make_builder(), grid=1, block=4,
                                  args=dict(self.ARGS), executor="reference")
        assert result.outputs == {"data": [12, 16, 16, 22]}

    def test_examples_use_only_config_first_api(self):
        # examples/ are the copy-paste surface: they must not teach the
        # deprecated spellings.
        legacy = re.compile(r"\b(executor|config)\s*=")
        offenders = [
            str(path.relative_to(REPO_ROOT))
            for path in sorted((REPO_ROOT / "examples").glob("*.py"))
            if legacy.search(path.read_text())
        ]
        assert not offenders, (
            f"legacy machine kwargs in examples (use machine=): {offenders}")


class TestMeld:
    def test_meld_returns_stats(self):
        stats = repro.meld(build_diamond(identical=True))
        assert len(stats.melds) == 1

    def test_meld_rejects_non_kernel(self):
        with pytest.raises(TypeError, match="expected a Function"):
            repro.meld(42)


class TestAnalyze:
    def test_returns_divergence_info(self):
        k = make_builder()
        info = repro.analyze(k)
        assert isinstance(info, repro.DivergenceInfo)
        assert info.has_divergent_branch(k.function.entry)

    def test_memo_shared_across_calls(self):
        k = make_builder()
        assert repro.analyze(k) is repro.analyze(k)
        # The facade and the raw cached entry point share one memo.
        assert repro.analyze(k) is repro.cached_divergence(k.function)

    def test_memo_invalidated_by_compile(self):
        k = make_builder()
        before = repro.analyze(k)
        repro.compile(k, level="O3")
        assert repro.analyze(k) is not before

    def test_rejects_non_kernel(self):
        with pytest.raises(TypeError, match="expected a Function"):
            repro.analyze("nope")


class TestLintFacade:
    def test_module_is_callable(self):
        report = repro.lint(build_diamond())
        assert report.ok

    def test_accepts_compile_report_with_decisions(self):
        k = make_builder()
        report = repro.compile(k, cfm=True)
        lint_report = repro.lint(report)
        assert lint_report.ok

    def test_rule_registry_reexported(self):
        assert "barrier-divergence" in {r.id for r in repro.lint.all_rules()}


class TestFacadeSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_key_entry_points_exported(self):
        for name in ("compile", "launch", "meld", "analyze", "lint",
                     "run_cfm", "run_kernel",
                     "PassPipeline", "CFMPass", "GPU", "KernelBuilder"):
            assert name in repro.__all__, name

    @pytest.mark.parametrize("directory", ["examples", "benchmarks"])
    def test_clients_import_only_the_facade(self, directory):
        """examples/ and benchmarks/ must not reach into submodules."""
        deep_import = re.compile(r"^\s*(?:from|import)\s+repro\.",
                                 re.MULTILINE)
        offenders = [
            str(path.relative_to(REPO_ROOT))
            for path in sorted((REPO_ROOT / directory).glob("*.py"))
            if deep_import.search(path.read_text())
        ]
        assert not offenders, (
            f"deep repro.* imports (use the top-level facade): {offenders}")
