"""Correctness tests for every benchmark kernel, unoptimized and at -O3."""

import pytest

from repro.evaluation.runner import execute
from repro.ir import verify_function
from repro.kernels import ALL_BUILDERS, REAL_WORLD_BUILDERS, SYNTHETIC_BUILDERS
from repro.kernels.patterns import PATTERN_BUILDERS
from repro.transforms import optimize


ALL = {**ALL_BUILDERS, **PATTERN_BUILDERS}


@pytest.mark.parametrize("name", sorted(ALL))
def test_kernel_reference_unoptimized(name):
    """Every kernel matches its Python reference without optimization."""
    case = ALL[name](block_size=16, grid_dim=2)
    verify_function(case.function)
    execute(case, seed=11)


@pytest.mark.parametrize("name", sorted(ALL))
def test_kernel_reference_after_o3(name):
    """The -O3 pipeline must preserve semantics for every kernel."""
    case = ALL[name](block_size=16, grid_dim=2)
    optimize(case.function)
    verify_function(case.function)
    execute(case, seed=23)


@pytest.mark.parametrize("name", sorted(SYNTHETIC_BUILDERS))
def test_synthetic_kernels_have_divergence(name):
    from repro.analysis import compute_divergence

    case = SYNTHETIC_BUILDERS[name](block_size=16, grid_dim=1)
    optimize(case.function)
    info = compute_divergence(case.function)
    assert info.divergent_branch_blocks, f"{name} should be divergent"


class TestBitonicProperties:
    def test_sorts_multiple_buckets_independently(self):
        from repro.kernels import build_bitonic

        case = build_bitonic(block_size=32, grid_dim=3)
        run = execute(case, seed=5)
        values = run.outputs["values"]
        for block in range(3):
            bucket = values[block * 32:(block + 1) * 32]
            assert bucket == sorted(bucket)

    def test_block_size_parametric(self):
        from repro.kernels import build_bitonic

        for size in (8, 16, 64):
            case = build_bitonic(block_size=size, grid_dim=1)
            execute(case, seed=size)


class TestLUDDivergenceShape:
    """LUD's divergence must be block-size dependent (§VI-A)."""

    @staticmethod
    def measure(block_size):
        from repro.kernels import build_lud

        case = build_lud(block_size=block_size, grid_dim=1)
        optimize(case.function)
        run = execute(case, seed=3)
        return run.metrics.divergent_branches

    def test_divergent_at_small_blocks(self):
        assert self.measure(16) > 0
        assert self.measure(32) > 0
        assert self.measure(64) > 0

    def test_convergent_at_large_blocks(self):
        assert self.measure(128) == 0
        assert self.measure(256) == 0


class TestMergesortEdgeCases:
    def test_sorted_input(self):
        from repro.kernels import build_mergesort

        case = build_mergesort(block_size=16, grid_dim=1)
        inputs = {"values": list(range(16))}
        from repro.simt import run_kernel

        out, _ = run_kernel(case.module, case.kernel, 1, 16,
                            buffers={"values": list(inputs["values"])})
        assert out["values"] == list(range(16))

    def test_reverse_sorted_input(self):
        from repro.kernels import build_mergesort

        case = build_mergesort(block_size=16, grid_dim=1)
        from repro.simt import run_kernel

        out, _ = run_kernel(case.module, case.kernel, 1, 16,
                            buffers={"values": list(range(16, 0, -1))})
        assert out["values"] == sorted(range(16, 0, -1))

    def test_all_equal_input(self):
        from repro.kernels import build_mergesort

        case = build_mergesort(block_size=16, grid_dim=1)
        from repro.simt import run_kernel

        out, _ = run_kernel(case.module, case.kernel, 1, 16,
                            buffers={"values": [7] * 16})
        assert out["values"] == [7] * 16


class TestDCTEdgeCases:
    def test_zero_plane(self):
        from repro.kernels import build_dct
        from repro.simt import run_kernel

        case = build_dct(block_size=16, grid_dim=1)
        quant = [3] * 64
        out, _ = run_kernel(case.module, case.kernel, 1, 16,
                            buffers={"plane": [0] * 16, "quant": quant})
        # round(0) in any quantizer remains 0... (0 + 1)//3*3 == 0
        assert out["plane"] == [0] * 16

    def test_negative_values_quantize_symmetrically(self):
        from repro.kernels import build_dct
        from repro.simt import run_kernel

        case = build_dct(block_size=4, grid_dim=1)
        quant = [4] * 64
        out, _ = run_kernel(case.module, case.kernel, 1, 4,
                            buffers={"plane": [10, -10, 7, -7],
                                     "quant": quant})
        assert out["plane"][0] == -out["plane"][1]
        assert out["plane"][2] == -out["plane"][3]


class TestFloatDCT:
    """The f32 extension kernel: exercises fcmp/fadd/fdiv/casts through
    the entire pipeline (simulator, O3, CFM)."""

    def test_reference_unoptimized(self):
        from repro.kernels import build_dct_float

        case = build_dct_float(block_size=16, grid_dim=2)
        execute(case, seed=31)

    def test_cfm_melds_float_arms(self):
        from repro.evaluation.runner import compile_cfm
        from repro.kernels import build_dct_float

        case = build_dct_float(block_size=16, grid_dim=2)
        result = compile_cfm(case)
        assert result.cfm_stats.melds
        execute(case, seed=31)

    def test_cfm_differential_on_floats(self):
        from repro.evaluation.runner import compile_baseline, compile_cfm
        from repro.kernels import build_dct_float

        base = build_dct_float(block_size=16, grid_dim=2)
        compile_baseline(base)
        melded = build_dct_float(block_size=16, grid_dim=2)
        compile_cfm(melded)
        b = execute(base, seed=8)
        c = execute(melded, seed=8)
        assert b.outputs == c.outputs
