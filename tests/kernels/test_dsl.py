"""Tests for the structured kernel-construction DSL."""

import pytest

from repro.ir import I32, ICmpPredicate, Phi, verify_function
from repro.kernels.dsl import GLOBAL_I32_PTR, KernelBuilder
from repro.simt import run_kernel


class TestBasics:
    def test_finish_verifies(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        k.store_at(k.param("p"), tid, tid)
        f = k.finish()
        verify_function(f)
        assert f.name == "k"

    def test_double_finish_rejected(self):
        k = KernelBuilder("k")
        k.finish()
        with pytest.raises(RuntimeError):
            k.finish()

    def test_shared_array_registered(self):
        k = KernelBuilder("k")
        shared = k.shared_array("buf", I32, 64)
        assert k.module.globals["buf"] is shared
        assert shared.is_shared

    def test_param_lookup(self):
        k = KernelBuilder("k", params=[("x", I32)])
        assert k.param("x") is k.function.args[0]
        with pytest.raises(KeyError):
            k.param("nope")


class TestIfElse:
    def test_if_generates_phi_for_assigned_var(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        c = k.icmp(ICmpPredicate.SLT, tid, k.const(4))
        v = k.var("v", k.const(0))
        k.if_(c, lambda: k.set(v, k.const(1)), lambda: k.set(v, k.const(2)))
        assert isinstance(v.value, Phi)
        k.store_at(k.param("p"), tid, v.value)
        f = k.finish()
        out, _ = run_kernel(k.module, "k", 1, 8, buffers={"p": [0] * 8})
        assert out["p"] == [1] * 4 + [2] * 4

    def test_if_without_else(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        c = k.icmp(ICmpPredicate.SLT, tid, k.const(2))
        v = k.var("v", k.const(10))
        k.if_(c, lambda: k.set(v, k.const(20)))
        k.store_at(k.param("p"), tid, v.value)
        k.finish()
        out, _ = run_kernel(k.module, "k", 1, 4, buffers={"p": [0] * 4})
        assert out["p"] == [20, 20, 10, 10]

    def test_unassigned_var_needs_no_phi(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        c = k.icmp(ICmpPredicate.SLT, tid, k.const(2))
        v = k.var("v", k.const(5))
        k.if_(c, lambda: None, lambda: None)
        assert not isinstance(v.value, Phi)
        k.finish()


class TestLoops:
    def test_while_counts(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        i = k.var("i", k.const(0))
        total = k.var("total", k.const(0))

        def cond():
            return k.icmp(ICmpPredicate.SLT, i.value, k.const(5))

        def body():
            k.set(total, k.add(total.value, i.value))
            k.set(i, k.add(i.value, k.const(1)))

        k.while_(cond, body)
        k.store_at(k.param("p"), tid, total.value)
        k.finish()
        out, _ = run_kernel(k.module, "k", 1, 2, buffers={"p": [0, 0]})
        assert out["p"] == [10, 10]  # 0+1+2+3+4

    def test_for_range(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        acc = k.var("acc", k.const(0))
        k.for_range("i", k.const(0), k.const(4),
                    lambda iv: k.set(acc, k.add(acc.value, iv)))
        k.store_at(k.param("p"), tid, acc.value)
        k.finish()
        out, _ = run_kernel(k.module, "k", 1, 1, buffers={"p": [0]})
        assert out["p"] == [6]

    def test_nested_loops_with_divergence(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        acc = k.var("acc", k.const(0))

        def outer(i):
            def inner(j):
                c = k.icmp(ICmpPredicate.EQ, k.and_(tid, k.const(1)), k.const(0))
                k.if_(c,
                      lambda: k.set(acc, k.add(acc.value, i)),
                      lambda: k.set(acc, k.add(acc.value, j)))
            k.for_range("j", k.const(0), k.const(2), inner)

        k.for_range("i", k.const(0), k.const(3), outer)
        k.store_at(k.param("p"), tid, acc.value)
        f = k.finish()
        verify_function(f)
        out, _ = run_kernel(k.module, "k", 1, 2, buffers={"p": [0, 0]})
        # even tid: sum of i over 6 iterations = (0+0+1+1+2+2) = 6
        # odd tid: sum of j over 6 iterations = (0+1)*3 = 3
        assert out["p"] == [6, 3]

    def test_loop_trivial_phi_folded(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        fixed = k.var("fixed", k.const(42))  # never reassigned
        i = k.var("i", k.const(0))
        k.while_(lambda: k.icmp(ICmpPredicate.SLT, i.value, k.const(3)),
                 lambda: k.set(i, k.add(i.value, k.const(1))))
        assert not isinstance(fixed.value, Phi)
        k.store_at(k.param("p"), tid, fixed.value)
        k.finish()


class TestHelpers:
    def test_global_thread_id(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        gid = k.global_thread_id()
        k.store_at(k.param("p"), gid, gid)
        k.finish()
        out, _ = run_kernel(k.module, "k", 2, 4, buffers={"p": [0] * 8})
        assert out["p"] == list(range(8))

    def test_load_store_at(self):
        k = KernelBuilder("k", params=[("p", GLOBAL_I32_PTR)])
        tid = k.thread_id()
        v = k.load_at(k.param("p"), tid)
        k.store_at(k.param("p"), tid, k.mul(v, k.const(2)))
        k.finish()
        out, _ = run_kernel(k.module, "k", 1, 4, buffers={"p": [1, 2, 3, 4]})
        assert out["p"] == [2, 4, 6, 8]
