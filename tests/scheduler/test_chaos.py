"""Fault injection for the scheduler worker pool.

``repro.scheduler.worker._TEST_WORKER_CHAOS`` (mirroring the fastpath's
``_TEST_DISPATCH_DELAY`` hook) makes a worker crash, hang past its
timeout, or return a corrupt payload on chosen task indices.  These
tests assert the parent's recovery contracts: jobs complete via retry,
partial metrics deltas merge, and a replacement worker reuses the warm
disk compile cache.  ``TestMemoQuarantine`` covers the latent
crash-retry gap: a task that poisons the in-process lowering memo and
then fails must not leak the poisoned entry into its own retry or any
later task.
"""

import os
import time

import pytest

from repro.evaluation import ParallelRunner, SweepTask, run_task
from repro.kernels import build_bitonic, build_sb1
from repro.obs import current_registry
from repro.scheduler import CHAOS_MODES, Scheduler, Task
from repro.scheduler import worker as scheduler_worker


@pytest.fixture(autouse=True)
def _clean_chaos():
    scheduler_worker._TEST_WORKER_CHAOS.clear()
    yield
    scheduler_worker._TEST_WORKER_CHAOS.clear()


def _arm(index, mode):
    assert mode in CHAOS_MODES
    scheduler_worker._TEST_WORKER_CHAOS[index] = mode


# ---- module-level task functions -------------------------------------------


def describe(payload, ctx):
    return {"pid": os.getpid(), "attempt": ctx.attempt}


def count_ok(payload, ctx):
    current_registry().counter("test_chaos_work_total").inc()
    return payload


def _counter_total(snapshot, name):
    family = (snapshot or {}).get("counters", {}).get(name)
    if not family:
        return 0
    return sum(family["samples"].values())


class TestChaosModes:
    def test_exit_crashes_then_retry_completes(self):
        _arm(0, "exit")
        with Scheduler(workers=1) as sched:
            outcomes = sched.run([Task(describe, i) for i in range(3)])
            snap = sched.metrics_snapshot()
        assert all(o.ok for o in outcomes)
        assert outcomes[0].attempts == 2
        assert outcomes[1].attempts == 1 and outcomes[2].attempts == 1
        assert _counter_total(snap, "repro_sched_tasks_retried_total") == 1
        assert _counter_total(snap, "repro_sched_workers_respawned_total") >= 1

    def test_exit_exhausting_retries_reports_crash(self):
        _arm(0, "exit")
        with Scheduler(workers=1, retries=0) as sched:
            (outcome,) = sched.run([Task(describe, 0)])
        assert not outcome.ok and outcome.crashed
        assert "died without reporting" in outcome.error
        assert f"exit code {scheduler_worker._CHAOS_EXIT_CODE}" \
            in outcome.error

    def test_exit_after_loses_completed_work(self):
        """exit-after runs the task, then dies before reporting — the
        parent must treat it as a crash and retry."""
        _arm(0, "exit-after")
        with Scheduler(workers=1) as sched:
            (outcome,) = sched.run([Task(describe, 0)])
        assert outcome.ok and outcome.attempts == 2

    def test_raise_retries_in_same_worker(self):
        _arm(0, "raise")
        with Scheduler(workers=1) as sched:
            outcomes = sched.run([Task(describe, i) for i in range(2)])
        assert all(o.ok for o in outcomes)
        assert outcomes[0].attempts == 2
        # an in-band failure keeps the worker alive
        assert outcomes[0].value["pid"] == outcomes[1].value["pid"]

    def test_hang_trips_timeout(self):
        _arm(0, "hang")
        start = time.monotonic()
        with Scheduler(workers=1, timeout=1.0) as sched:
            (outcome,) = sched.run([Task(describe, 0)])
        assert outcome.ok and outcome.attempts == 2
        assert time.monotonic() - start < 30

    def test_corrupt_payload_is_typed_failure(self):
        _arm(0, "corrupt")
        with Scheduler(workers=1, retries=0) as sched:
            outcomes = sched.run([Task(describe, i) for i in range(2)])
        assert not outcomes[0].ok
        assert "corrupt payload" in outcomes[0].error
        # the worker itself survives a corrupt send
        assert outcomes[1].ok

    def test_corrupt_payload_retries(self):
        _arm(0, "corrupt")
        with Scheduler(workers=1) as sched:
            (outcome,) = sched.run([Task(describe, 0)])
        assert outcome.ok and outcome.attempts == 2

    def test_partial_metrics_merge_across_crash(self):
        """Deltas from tasks that completed before a crash still fold
        into the pool registry."""
        _arm(1, "exit")
        with Scheduler(workers=2) as sched:
            outcomes = sched.run(
                [Task(count_ok, i, metrics=True) for i in range(4)])
        assert all(o.ok for o in outcomes)
        merged = {}
        total = 0
        for o in outcomes:
            total += _counter_total(o.metrics_delta, "test_chaos_work_total")
        assert total == 4, merged


class TestCrashCacheReuse:
    def test_replacement_worker_reuses_disk_cache(self, tmp_path):
        """A mid-run crash must not cost the warm compile cache: the
        replacement worker (fresh process) replays from disk."""
        cache_dir = str(tmp_path / "cache")
        tasks = [
            SweepTask(kernel="SB1", builder=build_sb1, block_size=16,
                      grid_dim=1, seed=7, cache_dir=cache_dir)
            for _ in range(2)
        ]
        # task 1 runs to completion — warming the disk cache — then its
        # worker dies before reporting; the retry lands in a
        # replacement process and must replay from the warm cache.
        _arm(1, "exit-after")
        results = ParallelRunner(workers=2).run(list(tasks))
        assert all(r.ok for r in results)
        assert results[1].attempts == 2
        disk = results[1].compile_cache_disk
        assert disk is not None and disk["hits"] >= 1
        # and the replayed comparison matches a clean serial run
        serial = run_task(tasks[0], index=0)
        assert results[1].comparison.baseline.cycles \
            == serial.comparison.baseline.cycles
        assert results[1].comparison.melded.cycles \
            == serial.comparison.melded.cycles


# ---- satellite 4: lowering-memo quarantine ---------------------------------

# a worker-process-lifetime kernel case, so a poisoned memo entry would
# survive across tasks if the scheduler did not quarantine on failure
_MEMO_STATE = {}


def _memo_case():
    case = _MEMO_STATE.get("case")
    if case is None:
        from repro.evaluation.runner import compile_baseline
        case = build_sb1(block_size=16, grid_dim=1)
        compile_baseline(case)
        _MEMO_STATE["case"] = case
    return case


def _case_cycles(case, seed=7):
    from repro.evaluation.runner import execute
    return execute(case, seed=seed).metrics.cycles


def poison_memo(case):
    """Seed a *wrong* lowered program for ``case.function`` — the
    fingerprint (keyed on object identities) cannot detect it."""
    from repro.evaluation.runner import compile_baseline
    from repro.simt import DEFAULT_CONFIG
    from repro.simt.lowering import get_program, seed_program
    other = build_bitonic(block_size=16, grid_dim=1)
    compile_baseline(other)
    seed_program(case.function, DEFAULT_CONFIG,
                 get_program(other.function, DEFAULT_CONFIG))


def poison_then_fail(payload, ctx):
    """Attempt 1: compute, poison the memo mid-'lowering', crash.
    Attempt 2 (same worker): recompute — correct iff quarantined."""
    case = _memo_case()
    cycles = _case_cycles(case)
    if ctx.attempt == 1:
        poison_memo(case)
        raise RuntimeError("crashed mid-lowering")
    return cycles


def run_memo_case(payload, ctx):
    return _case_cycles(_memo_case())


class TestMemoQuarantine:
    def test_poison_is_observable_without_quarantine(self):
        """Negative control: the poison this suite injects really does
        change behavior if nothing clears the memo."""
        from repro.evaluation.runner import compile_baseline
        from repro.simt import clear_lowering_memo
        case = build_sb1(block_size=16, grid_dim=1)
        compile_baseline(case)
        clean = _case_cycles(case)
        poison_memo(case)
        try:
            poisoned = _case_cycles(case)
        except Exception:
            poisoned = None  # wrong program may trap outright
        assert poisoned != clean
        clear_lowering_memo()
        assert _case_cycles(case) == clean

    def test_retry_after_poisoning_failure_is_clean(self):
        """The retry of a task that crashed mid-lowering must re-lower
        from IR, not replay the poisoned entry (same worker)."""
        expected = None
        case = build_sb1(block_size=16, grid_dim=1)
        from repro.evaluation.runner import compile_baseline
        compile_baseline(case)
        expected = _case_cycles(case)
        with Scheduler(workers=1) as sched:
            (outcome,) = sched.run([Task(poison_then_fail, None)])
        assert outcome.ok and outcome.attempts == 2
        assert outcome.value == expected

    def test_later_task_in_same_worker_is_clean(self):
        expected = None
        case = build_sb1(block_size=16, grid_dim=1)
        from repro.evaluation.runner import compile_baseline
        compile_baseline(case)
        expected = _case_cycles(case)
        with Scheduler(workers=1, retries=0) as sched:
            outcomes = sched.run([Task(poison_then_fail, None),
                                  Task(run_memo_case, None)])
        assert not outcomes[0].ok  # retries=0: the poisoning crash lands
        assert outcomes[1].ok and outcomes[1].value == expected

    def test_inline_scheduler_quarantines_too(self):
        from repro.evaluation.runner import compile_baseline
        case = build_sb1(block_size=16, grid_dim=1)
        compile_baseline(case)
        expected = _case_cycles(case)
        _MEMO_STATE.clear()
        try:
            with Scheduler(workers=0) as sched:
                (outcome,) = sched.run([Task(poison_then_fail, None)])
            assert outcome.ok and outcome.attempts == 2
            assert outcome.value == expected
        finally:
            _MEMO_STATE.clear()
