"""Randomized property/soak tests for the scheduler.

Seeded random task mixes (successes, deterministic failures, flaky
tasks, sleepers) under random pool shapes (2-4 workers, random
recycling, injected worker crashes).  The properties that must hold for
every mix:

* **no lost or duplicated tasks** — exactly one terminal outcome per
  submitted task, in submission order;
* **determinism of results** — every ok task's value is what a serial
  run would compute;
* **failure containment** — only the tasks built to fail, fail;
* **accounting closes** — completed + failed == submitted.

Marked ``slow``: the CI budget for this file is ~30s.
"""

import random
import time

import pytest

from repro.scheduler import RecyclePolicy, Scheduler, Task
from repro.scheduler import worker as scheduler_worker

pytestmark = pytest.mark.slow


def soak_fn(payload, ctx):
    kind, value = payload
    if kind == "flaky" and ctx.attempt == 1:
        raise RuntimeError(f"flaky {value}")
    if kind == "fail":
        raise ValueError(f"fail {value}")
    if kind == "sleep":
        time.sleep(0.01)
    return value * 3


def _counter_total(snapshot, name):
    family = snapshot.get("counters", {}).get(name)
    if not family:
        return 0
    return sum(family["samples"].values())


@pytest.fixture(autouse=True)
def _clean_chaos():
    scheduler_worker._TEST_WORKER_CHAOS.clear()
    yield
    scheduler_worker._TEST_WORKER_CHAOS.clear()


def _random_mix(rng, count):
    kinds = ("ok", "ok", "ok", "flaky", "fail", "sleep")
    return [(rng.choice(kinds), i) for i in range(count)]


@pytest.mark.parametrize("seed", [0xC0FFEE, 2022, 402])
def test_random_mix_properties(seed):
    rng = random.Random(seed)
    mix = _random_mix(rng, rng.randint(24, 48))
    workers = rng.randint(2, 4)
    recycle = RecyclePolicy(max_tasks=rng.choice([None, 5, 9]))
    # crash a couple of random first attempts out from under the pool
    for index in rng.sample(range(len(mix)), 2):
        if mix[index][0] != "fail":  # keep failure containment decidable
            scheduler_worker._TEST_WORKER_CHAOS[index] = \
                rng.choice(["exit", "raise", "exit-after"])

    with Scheduler(workers=workers, recycle=recycle) as sched:
        outcomes = sched.run([Task(soak_fn, payload) for payload in mix])
        snap = sched.metrics_snapshot()

    # no lost or duplicated tasks, submission order preserved
    assert [o.index for o in outcomes] == list(range(len(mix)))
    for payload, outcome in zip(mix, outcomes):
        kind, value = payload
        if kind == "fail":
            assert not outcome.ok
            assert f"fail {value}" in outcome.error
            assert outcome.attempts == 2
        else:
            assert outcome.ok, (payload, outcome.error)
            assert outcome.value == value * 3
            if kind == "flaky":
                assert outcome.attempts == 2
    completed = _counter_total(snap, "repro_sched_tasks_completed_total")
    failed = _counter_total(snap, "repro_sched_tasks_failed_total")
    assert completed + failed == len(mix)
    assert failed == sum(1 for kind, _ in mix if kind == "fail")


@pytest.mark.parametrize("seed", [7, 99])
def test_submit_storm_with_callbacks(seed):
    """Callback-style submission (the server's path): outcomes land
    exactly once each, whatever order the pool settles them in."""
    rng = random.Random(seed)
    mix = _random_mix(rng, 40)
    got = {}

    with Scheduler(workers=rng.randint(2, 4)) as sched:
        for payload in mix:
            sched.submit(
                soak_fn, payload,
                on_outcome=lambda o: got.setdefault(o.index, []).append(o))
        sched.drain()

    assert sorted(got) == list(range(len(mix)))
    assert all(len(v) == 1 for v in got.values()), "duplicated settlement"
    for index, (kind, value) in enumerate(mix):
        (outcome,) = got[index]
        assert outcome.ok == (kind != "fail")


def test_sustained_load_with_aggressive_recycling():
    """Every-task recycling under load: the pool keeps making progress
    and the folded worker snapshots account for every task served."""
    mix = [("ok", i) for i in range(30)]
    with Scheduler(workers=3, recycle=RecyclePolicy(max_tasks=1)) as sched:
        outcomes = sched.run([Task(soak_fn, p) for p in mix])
    snap = sched.metrics_snapshot()
    assert all(o.ok for o in outcomes)
    assert [o.value for o in outcomes] == [i * 3 for i in range(30)]
    assert _counter_total(snap, "repro_sched_worker_tasks_total") == 30
    assert _counter_total(snap, "repro_sched_workers_recycled_total") >= 27
