"""Tests for the generic task scheduler (``repro.scheduler``):

lifecycle, ordering, retry/timeout/crash contracts, worker recycling,
metrics folding, and graceful shutdown.  Fault injection lives in
``test_chaos.py``; the randomized soak harness in ``test_soak.py``.
"""

import os
import threading
import time

import pytest

from repro.obs import current_registry, use_registry
from repro.scheduler import (
    DEFAULT_RETRIES,
    NO_RECYCLE,
    RecyclePolicy,
    Scheduler,
    SchedulerClosed,
    Task,
    TaskContext,
    TaskOutcome,
    rss_bytes,
)


# ---- module-level task functions (cross the fork boundary) -----------------


def double(payload, ctx):
    return payload * 2


def describe(payload, ctx):
    return {"pid": os.getpid(), "index": ctx.index, "attempt": ctx.attempt,
            "worker": ctx.worker}


def fail_always(payload, ctx):
    raise ValueError(f"nope {payload}")


def fail_first_attempt(payload, ctx):
    if ctx.attempt == 1:
        raise RuntimeError("transient")
    return payload


def sleep_for(payload, ctx):
    time.sleep(payload)
    return "slept"


def count_then_fail(payload, ctx):
    current_registry().counter("test_partial_work_total").inc(payload)
    raise RuntimeError("failed after partial work")


def count_ok(payload, ctx):
    current_registry().counter("test_work_total").inc(payload)
    return payload


def _counter_total(snapshot, name):
    family = snapshot.get("counters", {}).get(name)
    if not family:
        return 0
    return sum(family["samples"].values())


class TestInline:
    """workers=0 runs every task synchronously in-process."""

    def test_run_returns_in_order(self):
        with Scheduler(workers=0) as sched:
            outcomes = sched.run([Task(double, i) for i in range(5)])
        assert [o.value for o in outcomes] == [0, 2, 4, 6, 8]
        assert [o.index for o in outcomes] == list(range(5))
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_inline_runs_in_this_process(self):
        with Scheduler(workers=0) as sched:
            (outcome,) = sched.run([Task(describe, None)])
        assert outcome.value["pid"] == os.getpid()

    def test_error_format_has_no_traceback(self):
        with Scheduler(workers=0) as sched:
            (outcome,) = sched.run([Task(fail_always, 7)])
        assert not outcome.ok
        assert outcome.error == "ValueError: nope 7"
        assert outcome.crashed
        assert outcome.attempts == 1 + DEFAULT_RETRIES

    def test_retry_succeeds_on_second_attempt(self):
        with Scheduler(workers=0) as sched:
            (outcome,) = sched.run([Task(fail_first_attempt, "v")])
        assert outcome.ok and outcome.value == "v"
        assert outcome.attempts == 2

    def test_metrics_delta_collected(self):
        with Scheduler(workers=0) as sched:
            (outcome,) = sched.run([Task(count_ok, 3, metrics=True)])
        assert _counter_total(outcome.metrics_delta, "test_work_total") == 3

    def test_submit_after_close_raises(self):
        sched = Scheduler(workers=0)
        sched.start()
        sched.close()
        with pytest.raises(SchedulerClosed):
            sched.submit(double, 1)


class TestPool:
    def test_run_returns_submission_order(self):
        with Scheduler(workers=2) as sched:
            outcomes = sched.run([Task(double, i) for i in range(8)])
        assert [o.value for o in outcomes] == [i * 2 for i in range(8)]
        assert all(o.ok for o in outcomes)
        assert all(o.worker >= 0 for o in outcomes)

    def test_tasks_run_out_of_process(self):
        with Scheduler(workers=2) as sched:
            outcomes = sched.run([Task(describe, None) for _ in range(4)])
        pids = {o.value["pid"] for o in outcomes}
        assert os.getpid() not in pids

    def test_worker_error_carries_traceback(self):
        with Scheduler(workers=1) as sched:
            (outcome,) = sched.run([Task(fail_always, 1)])
        assert not outcome.ok and outcome.crashed
        assert outcome.error.startswith("ValueError: nope 1")
        assert "Traceback" in outcome.error
        assert outcome.attempts == 1 + DEFAULT_RETRIES

    def test_retry_in_worker(self):
        with Scheduler(workers=1) as sched:
            (outcome,) = sched.run([Task(fail_first_attempt, 9)])
        assert outcome.ok and outcome.value == 9 and outcome.attempts == 2

    def test_timeout_contract(self):
        with Scheduler(workers=1, timeout=0.5, retries=1) as sched:
            (outcome,) = sched.run([Task(sleep_for, 30)])
        assert not outcome.ok
        assert outcome.error == "timed out after 0.5s"
        assert outcome.timed_out and not outcome.crashed
        assert outcome.attempts == 2

    def test_partial_metrics_survive_failure(self):
        """A task that did real work before failing still ships its
        metrics delta (satellite: partial telemetry merge)."""
        with Scheduler(workers=1) as sched:
            (outcome,) = sched.run([Task(count_then_fail, 5, metrics=True)])
        assert not outcome.ok
        assert _counter_total(outcome.metrics_delta,
                              "test_partial_work_total") == 5

    def test_submit_with_callback(self):
        got = []
        done = threading.Event()

        def on_outcome(outcome):
            got.append(outcome)
            done.set()

        with Scheduler(workers=1) as sched:
            index = sched.submit(double, 21, on_outcome=on_outcome)
            assert done.wait(30)
        assert got[0].index == index and got[0].value == 42

    def test_scheduler_metrics(self):
        with Scheduler(workers=2) as sched:
            sched.run([Task(double, i) for i in range(4)]
                      + [Task(fail_always, 0)])
            snap = sched.metrics_snapshot()
        assert _counter_total(snap, "repro_sched_tasks_completed_total") == 4
        assert _counter_total(snap, "repro_sched_tasks_failed_total") == 1
        assert _counter_total(snap, "repro_sched_tasks_retried_total") == 1


class TestRecycling:
    def test_workers_recycle_after_max_tasks(self):
        policy = RecyclePolicy(max_tasks=1)
        with Scheduler(workers=1, recycle=policy) as sched:
            outcomes = sched.run([Task(describe, None) for _ in range(3)])
            snap = sched.metrics_snapshot()
        pids = [o.value["pid"] for o in outcomes]
        assert len(set(pids)) == 3, "each task should see a fresh worker"
        assert _counter_total(snap, "repro_sched_workers_recycled_total") >= 2

    def test_recycled_worker_flushes_snapshot(self):
        """Retiring workers hand their lifetime registry back to the
        parent (satellite: recycling flush)."""
        policy = RecyclePolicy(max_tasks=1)
        with Scheduler(workers=1, recycle=policy) as sched:
            sched.run([Task(double, i) for i in range(2)])
        # final worker's goodbye lands during graceful close
        snap = sched.metrics_snapshot()
        assert _counter_total(snap, "repro_sched_worker_tasks_total") >= 2

    def test_rss_recycle_policy_probe(self):
        assert rss_bytes() > 0
        policy = RecyclePolicy(max_rss_bytes=1)  # always over budget
        with Scheduler(workers=1, recycle=policy) as sched:
            outcomes = sched.run([Task(describe, None) for _ in range(2)])
        pids = [o.value["pid"] for o in outcomes]
        assert len(set(pids)) == 2

    def test_no_recycle_default(self):
        with Scheduler(workers=1, recycle=NO_RECYCLE) as sched:
            outcomes = sched.run([Task(describe, None) for _ in range(4)])
        assert len({o.value["pid"] for o in outcomes}) == 1


class TestShutdown:
    def test_graceful_close_collects_goodbyes(self):
        sched = Scheduler(workers=2)
        sched.start()
        sched.run([Task(double, i) for i in range(4)])
        sched.close(graceful=True)
        snap = sched.metrics_snapshot()
        # worker lifetime counters only arrive via retire/goodbye
        assert _counter_total(snap, "repro_sched_worker_tasks_total") == 4

    def test_abort_close_settles_pending(self):
        outcomes = []
        sched = Scheduler(workers=1)
        sched.start()
        sched.submit(sleep_for, 10, on_outcome=outcomes.append)
        for _ in range(3):
            sched.submit(sleep_for, 10, on_outcome=outcomes.append)
        sched.close(graceful=False)
        assert len(outcomes) == 4
        assert all(not o.ok for o in outcomes)
        assert all("cancelled" in o.error for o in outcomes)

    def test_task_dataclasses(self):
        task = Task(double, 1)
        assert task.payload == 1 and not task.metrics
        ctx = TaskContext(index=3, attempt=2, worker=1)
        assert (ctx.index, ctx.attempt, ctx.worker) == (3, 2, 1)
        outcome = TaskOutcome(index=0, ok=True, value=None, error=None,
                              attempts=1, seconds=0.0, crashed=False,
                              timed_out=False)
        assert outcome.ok
