"""Differential correctness of the full pipeline: for every kernel, any
block size and any random input, `-O3 + CFM + late passes` must compute
exactly what `-O3` computes.

These are the highest-value tests in the repository: they exercise the
entire stack (DSL → IR → analyses → unroller → melder → unpredication →
cleanups → SIMT simulator) and any miscompile anywhere surfaces as an
output mismatch or a verifier/simulator trap.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CFMConfig, run_cfm
from repro.evaluation.runner import compile_baseline, compile_cfm, execute
from repro.ir import verify_function
from repro.kernels import ALL_BUILDERS
from repro.kernels.patterns import PATTERN_BUILDERS


ALL = {**ALL_BUILDERS, **PATTERN_BUILDERS}


def run_both(name, block_size, grid_dim, seed, config=None):
    base_case = ALL[name](block_size=block_size, grid_dim=grid_dim)
    cfm_case = ALL[name](block_size=block_size, grid_dim=grid_dim)
    compile_baseline(base_case)
    compile_cfm(cfm_case, config)
    verify_function(cfm_case.function)
    base = execute(base_case, seed=seed)
    melded = execute(cfm_case, seed=seed)
    assert base.outputs == melded.outputs, f"{name}: CFM changed outputs"
    return base, melded


@pytest.mark.parametrize("name", sorted(ALL))
def test_cfm_preserves_semantics(name):
    run_both(name, block_size=16, grid_dim=2, seed=77)


@pytest.mark.parametrize("name", ["SB1", "SB3-R", "BIT", "PCM"])
@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_cfm_differential_random_inputs(name, seed):
    run_both(name, block_size=16, grid_dim=1, seed=seed)


@given(
    name=st.sampled_from(sorted(ALL)),
    block_exp=st.integers(3, 6),  # block sizes 8..64
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=12, deadline=None)
def test_cfm_differential_random_configs(name, block_exp, seed):
    run_both(name, block_size=2 ** block_exp, grid_dim=1, seed=seed)


@pytest.mark.parametrize("name", ["BIT", "MS", "SB2"])
def test_cfm_without_unpredication_of_pure_runs(name):
    run_both(name, block_size=16, grid_dim=1, seed=3,
             config=CFMConfig(split_pure_runs=False))


@pytest.mark.parametrize("name", ["BIT", "SB3", "PCM"])
def test_cfm_with_optimal_subgraph_alignment(name):
    run_both(name, block_size=16, grid_dim=1, seed=3,
             config=CFMConfig(optimal_subgraph_alignment=True))


@pytest.mark.parametrize("name", ["SB1", "SB2", "SB3", "BIT", "PCM"])
def test_cfm_improves_divergent_kernels(name):
    base, melded = run_both(name, block_size=32, grid_dim=1, seed=9)
    assert melded.metrics.cycles < base.metrics.cycles, \
        f"{name}: expected a speedup"


def test_cfm_is_idempotent_at_fixpoint():
    """After CFM reaches its fixpoint, rerunning melds nothing new."""
    case = ALL["BIT"](block_size=16, grid_dim=1)
    compile_cfm(case)
    stats = run_cfm(case.function)
    assert not stats.melds


def test_cfm_leaves_divergence_free_kernels_alone():
    """A kernel with no divergent branch must be untouched (LUD at large
    blocks remains statically divergent, so use a uniform kernel)."""
    from repro.kernels.dsl import GLOBAL_I32_PTR, KernelBuilder

    k = KernelBuilder("uniform", params=[("p", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    k.store_at(k.param("p"), tid, k.mul(tid, k.const(3)))
    k.finish()
    stats = run_cfm(k.function)
    assert not stats.melds
    assert stats.regions_considered == 0
