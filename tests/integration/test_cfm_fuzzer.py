"""Property-based fuzzing of the CFM pass on randomly generated kernels.

Hypothesis generates kernels with random control-flow shapes (diamonds,
nested if-then regions, sequences of regions) filled with random
instruction mixes over shared and global memory, then checks that
`-O3 + CFM + late passes` computes exactly what the unoptimized kernel
computes, on random inputs.  This explores corners no hand-written
benchmark hits: partially-aligned sides, empty arms' neighbours,
region/single-block mixes, divergence under multiple conditions.
"""

from typing import Callable, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CFMConfig, run_cfm
from repro.ir import I32, ICmpPredicate, verify_function
from repro.kernels.dsl import GLOBAL_I32_PTR, KernelBuilder
from repro.simt import run_kernel
from repro.transforms import (
    eliminate_dead_code,
    optimize,
    simplify_cfg,
    speculate_hammocks,
)

BLOCK = 16

#: small, closed set of operations the generated bodies draw from;
#: each entry: (name, emit(k, x, y) -> Value)
_OPS = [
    ("add", lambda k, x, y: k.add(x, y)),
    ("sub", lambda k, x, y: k.sub(x, y)),
    ("mul", lambda k, x, y: k.mul(x, y)),
    ("xor", lambda k, x, y: k.xor(x, y)),
    ("and", lambda k, x, y: k.and_(x, y)),
    ("or", lambda k, x, y: k.or_(x, y)),
    ("shl1", lambda k, x, y: k.shl(x, k.const(1))),
    ("ashr1", lambda k, x, y: k.ashr(x, k.const(2))),
    ("min", lambda k, x, y: k.smin(x, y)),
    ("max", lambda k, x, y: k.smax(x, y)),
]


@st.composite
def side_specs(draw):
    """One side of a divergent branch: a list of (op indices, guard?)."""
    n_segments = draw(st.integers(1, 2))
    segments = []
    for _ in range(n_segments):
        ops = draw(st.lists(st.integers(0, len(_OPS) - 1), min_size=1,
                            max_size=4))
        guarded = draw(st.booleans())
        threshold = draw(st.integers(-50, 50))
        segments.append((ops, guarded, threshold))
    return segments


@st.composite
def kernel_specs(draw):
    true_side = draw(side_specs())
    false_side = draw(side_specs())
    cond_kind = draw(st.sampled_from(["parity", "half", "stripe"]))
    false_uses_own_array = draw(st.booleans())
    return (true_side, false_side, cond_kind, false_uses_own_array)


def _emit_side(k: KernelBuilder, segments, array, tid) -> None:
    for ops, guarded, threshold in segments:
        value = k.load_at(array, tid)

        def body(value=value, ops=ops):
            acc = value
            for op_index in ops:
                _, emit = _OPS[op_index]
                acc = emit(k, acc, k.const(7 + op_index))
            k.store_at(array, tid, acc)

        if guarded:
            guard = k.icmp(ICmpPredicate.SGT, value, k.const(threshold))
            k.if_(guard, body, name="g")
        else:
            body()


def build_fuzz_kernel(spec) -> KernelBuilder:
    true_side, false_side, cond_kind, false_uses_own = spec
    k = KernelBuilder("fuzz", params=[("a", GLOBAL_I32_PTR),
                                      ("b", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    if cond_kind == "parity":
        cond = k.icmp(ICmpPredicate.EQ, k.and_(tid, k.const(1)), k.const(0))
    elif cond_kind == "half":
        cond = k.icmp(ICmpPredicate.SLT, tid, k.const(BLOCK // 2))
    else:
        cond = k.icmp(ICmpPredicate.EQ, k.and_(tid, k.const(2)), k.const(0))

    a, b = k.param("a"), k.param("b")
    false_array = b if false_uses_own else a

    # When both sides touch the same array the branch partitions the
    # threads, so per-thread slots still have a single writer.
    k.if_(cond,
          lambda: _emit_side(k, true_side, a, tid),
          lambda: _emit_side(k, false_side, false_array, tid),
          name="fuzz")
    k.finish()
    return k


def run_fuzz(spec, seed: int, config=None) -> None:
    rng_values = [(seed * 2654435761 + i * 40503) % 199 - 99
                  for i in range(2 * BLOCK)]
    buffers = {"a": rng_values[:BLOCK], "b": rng_values[BLOCK:]}

    reference = build_fuzz_kernel(spec)
    out_ref, _ = run_kernel(reference.module, "fuzz", 1, BLOCK,
                            buffers={k: list(v) for k, v in buffers.items()})

    melded = build_fuzz_kernel(spec)
    optimize(melded.function)
    run_cfm(melded.function, config)
    simplify_cfg(melded.function)
    speculate_hammocks(melded.function)
    simplify_cfg(melded.function)
    eliminate_dead_code(melded.function)
    verify_function(melded.function)
    out_melded, _ = run_kernel(melded.module, "fuzz", 1, BLOCK,
                               buffers={k: list(v) for k, v in buffers.items()})
    assert out_ref == out_melded, f"CFM miscompiled fuzz kernel {spec!r}"


@given(spec=kernel_specs(), seed=st.integers(0, 2**20))
@settings(max_examples=60, deadline=None)
def test_cfm_fuzzed_kernels(spec, seed):
    run_fuzz(spec, seed)


@given(spec=kernel_specs(), seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_cfm_fuzzed_kernels_no_pure_unpredication(spec, seed):
    run_fuzz(spec, seed, CFMConfig(split_pure_runs=False))


@given(spec=kernel_specs(), seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_cfm_fuzzed_kernels_optimal_alignment(spec, seed):
    run_fuzz(spec, seed, CFMConfig(optimal_subgraph_alignment=True))


@given(spec=kernel_specs(), seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_cfm_fuzzed_kernels_zero_threshold(spec, seed):
    # Meld *everything* meldable, however unprofitable: stress codegen.
    run_fuzz(spec, seed, CFMConfig(profitability_threshold=0.0))
