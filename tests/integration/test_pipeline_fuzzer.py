"""Fuzz the full -O3 pipeline (fold/LICM/unroll/CSE/if-convert/DCE) on
randomly generated kernels with loops, then CFM on top.

Complements test_cfm_fuzzer (which fuzzes branch-only shapes): here the
divergent region sits inside loops — constant-bound (unrollable) or
runtime-bound (rolled, LICM'd) — so the interactions between the
unroller, LICM, CSE and the melder get exercised together.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import run_cfm
from repro.ir import I32, ICmpPredicate, verify_function
from repro.kernels.dsl import GLOBAL_I32_PTR, KernelBuilder
from repro.simt import run_kernel
from repro.transforms import (
    eliminate_dead_code,
    optimize,
    simplify_cfg,
    speculate_hammocks,
)

BLOCK = 8

_OPS = [
    lambda k, x, y: k.add(x, y),
    lambda k, x, y: k.sub(x, y),
    lambda k, x, y: k.xor(x, y),
    lambda k, x, y: k.and_(x, y),
    lambda k, x, y: k.or_(x, y),
    lambda k, x, y: k.smax(x, y),
]


@st.composite
def loop_kernel_specs(draw):
    trip_kind = draw(st.sampled_from(["const", "runtime"]))
    trips = draw(st.integers(1, 4))
    true_ops = draw(st.lists(st.integers(0, len(_OPS) - 1), min_size=1,
                             max_size=3))
    false_ops = draw(st.lists(st.integers(0, len(_OPS) - 1), min_size=1,
                              max_size=3))
    guard_threshold = draw(st.integers(-20, 20))
    use_inner_guard = draw(st.booleans())
    return (trip_kind, trips, true_ops, false_ops, guard_threshold,
            use_inner_guard)


def build_loop_kernel(spec) -> KernelBuilder:
    trip_kind, trips, true_ops, false_ops, threshold, inner_guard = spec
    k = KernelBuilder("fuzzloop", params=[("a", GLOBAL_I32_PTR),
                                          ("b", GLOBAL_I32_PTR),
                                          ("n", I32)])
    tid = k.thread_id()
    bound = k.const(trips) if trip_kind == "const" else k.param("n")
    parity = k.and_(tid, k.const(1))
    is_even = k.icmp(ICmpPredicate.EQ, parity, k.const(0))

    def emit_side(array, ops, salt):
        def side():
            value = k.load_at(array, tid)

            def mutate(value=value):
                acc = value
                for op_index in ops:
                    acc = _OPS[op_index](k, acc, k.const(3 + salt + op_index))
                k.store_at(array, tid, acc)

            if inner_guard:
                guard = k.icmp(ICmpPredicate.SGT, value, k.const(threshold))
                k.if_(guard, mutate, name="g")
            else:
                mutate()

        return side

    def body(_i):
        k.if_(is_even,
              emit_side(k.param("a"), true_ops, 1),
              emit_side(k.param("b"), false_ops, 2),
              name="div")

    k.for_range("i", k.const(0), bound, body)
    k.finish()
    return k


def run_variant(spec, seed, pipeline):
    values = [(seed * 2654435761 + i * 97) % 151 - 75 for i in range(2 * BLOCK)]
    buffers = {"a": values[:BLOCK], "b": values[BLOCK:]}
    built = build_loop_kernel(spec)
    pipeline(built.function)
    verify_function(built.function)
    out, _ = run_kernel(built.module, "fuzzloop", 1, BLOCK,
                        buffers={k: list(v) for k, v in buffers.items()},
                        scalars={"n": 3})
    return out


@given(spec=loop_kernel_specs(), seed=st.integers(0, 2**20))
@settings(max_examples=40, deadline=None)
def test_o3_preserves_semantics(spec, seed):
    reference = run_variant(spec, seed, lambda f: None)
    optimized = run_variant(spec, seed, lambda f: optimize(f))
    assert reference == optimized


@given(spec=loop_kernel_specs(), seed=st.integers(0, 2**20))
@settings(max_examples=40, deadline=None)
def test_o3_plus_cfm_preserves_semantics(spec, seed):
    def full(function):
        optimize(function)
        run_cfm(function)
        simplify_cfg(function)
        speculate_hammocks(function)
        simplify_cfg(function)
        eliminate_dead_code(function)

    reference = run_variant(spec, seed, lambda f: None)
    melded = run_variant(spec, seed, full)
    assert reference == melded
