"""Edge-shape integration tests: nested divergent regions, partial warps,
multi-warp melded kernels, and deep meld fixpoints."""

import pytest

from repro.core import run_cfm
from repro.ir import verify_function
from repro.simt import MachineConfig, run_kernel

from tests.support import parse

NESTED = """
define void @k(i32 addrspace(1)* %a, i32 addrspace(1)* %b) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %bit0 = and i32 %tid, 1
  %outer = icmp eq i32 %bit0, 0
  br i1 %outer, label %t, label %f
t:
  %bit1t = and i32 %tid, 2
  %innert = icmp eq i32 %bit1t, 0
  br i1 %innert, label %t.a, label %t.b
t.a:
  %tap = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %tav = load i32, i32 addrspace(1)* %tap
  %tar = add i32 %tav, 10
  store i32 %tar, i32 addrspace(1)* %tap
  br label %t.m
t.b:
  %tbp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %tbv = load i32, i32 addrspace(1)* %tbp
  %tbr = add i32 %tbv, 20
  store i32 %tbr, i32 addrspace(1)* %tbp
  br label %t.m
t.m:
  br label %m
f:
  %bit1f = and i32 %tid, 2
  %innerf = icmp eq i32 %bit1f, 0
  br i1 %innerf, label %f.a, label %f.b
f.a:
  %fap = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %fav = load i32, i32 addrspace(1)* %fap
  %far = add i32 %fav, 30
  store i32 %far, i32 addrspace(1)* %fap
  br label %f.m
f.b:
  %fbp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %fbv = load i32, i32 addrspace(1)* %fbp
  %fbr = add i32 %fbv, 40
  store i32 %fbr, i32 addrspace(1)* %fbp
  br label %f.m
f.m:
  br label %m
m:
  ret void
}
"""


class TestNestedDivergence:
    def test_nested_regions_meld_to_fixpoint(self):
        f = parse(NESTED)
        stats = run_cfm(f)
        verify_function(f)
        # The outer region melds the two inner if-then-else regions; the
        # melded inner branch is itself divergent and melds next round.
        assert len(stats.melds) >= 2

    def test_nested_meld_semantics(self):
        base = parse(NESTED)
        melded = parse(NESTED)
        run_cfm(melded)
        buffers = {"a": list(range(8)), "b": list(range(50, 58))}
        out1, m1 = run_kernel(base.module, "k", 1, 8,
                              buffers={k: list(v) for k, v in buffers.items()})
        out2, m2 = run_kernel(melded.module, "k", 1, 8,
                              buffers={k: list(v) for k, v in buffers.items()})
        assert out1 == out2
        assert m2.cycles < m1.cycles
        # All four leaf bodies issue their loads/stores together now.
        assert m2.vector_memory_issues < m1.vector_memory_issues


class TestPartialWarps:
    DIVERGENT = """
define void @k(i32 addrspace(1)* %p) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %parity = and i32 %tid, 1
  %c = icmp eq i32 %parity, 0
  br i1 %c, label %a, label %b
a:
  %pa = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 1, i32 addrspace(1)* %pa
  br label %m
b:
  %pb = getelementptr i32, i32 addrspace(1)* %p, i32 %tid
  store i32 2, i32 addrspace(1)* %pb
  br label %m
m:
  ret void
}
"""

    def test_block_dim_not_multiple_of_warp(self):
        f = parse(self.DIVERGENT)
        out, metrics = run_kernel(f.module, "k", 1, 20, buffers={"p": [0] * 20})
        assert out["p"] == [1 if i % 2 == 0 else 2 for i in range(20)]
        # 20 threads with warp 32: one partial warp.
        assert metrics.alu_utilization < 1.0

    def test_single_thread_block(self):
        f = parse(self.DIVERGENT)
        out, metrics = run_kernel(f.module, "k", 1, 1, buffers={"p": [0]})
        assert out["p"] == [1]
        assert metrics.divergent_branches == 0  # one lane cannot diverge

    def test_melded_kernel_on_partial_warp(self):
        base = parse(self.DIVERGENT)
        melded = parse(self.DIVERGENT)
        run_cfm(melded)
        out1, _ = run_kernel(base.module, "k", 1, 13, buffers={"p": [0] * 13})
        out2, _ = run_kernel(melded.module, "k", 1, 13, buffers={"p": [0] * 13})
        assert out1 == out2


class TestMultiWarpMeldedKernels:
    def test_melded_bitonic_across_warps_and_blocks(self):
        import random

        from repro.evaluation.runner import compile_cfm, execute
        from repro.kernels import build_bitonic

        # Bitonic needs power-of-two buckets (tid ^ j indexing): 64
        # threads = 2 warps per block, across 3 blocks.
        case = build_bitonic(block_size=64, grid_dim=3)
        compile_cfm(case)
        execute(case, seed=123)  # the reference checker asserts sortedness
