"""Quickstart: meld a divergent kernel and measure the win.

Builds the paper's motivating shape — an if-then-else whose two sides do
similar work on different data — runs CFM on it, and compares simulated
execution before and after.  Everything here comes from the top-level
``repro`` facade: :func:`repro.meld` to run the melder in place, and
:func:`repro.launch` to execute on the simulated GPU.

Run:  python examples/quickstart.py
"""

import repro


def build_kernel() -> repro.KernelBuilder:
    """if (tid % 2 == 0) a[tid] = 3*a[tid]+1; else b[tid] = 3*b[tid]+7;"""
    k = repro.KernelBuilder("quickstart", params=[("a", repro.GLOBAL_I32_PTR),
                                                  ("b", repro.GLOBAL_I32_PTR)])
    tid = k.thread_id()
    parity = k.and_(tid, k.const(1))
    is_even = k.icmp(repro.ICmpPredicate.EQ, parity, k.const(0))

    def even_side() -> None:
        value = k.load_at(k.param("a"), tid)
        k.store_at(k.param("a"), tid, k.add(k.mul(value, k.const(3)), k.const(1)))

    def odd_side() -> None:
        value = k.load_at(k.param("b"), tid)
        k.store_at(k.param("b"), tid, k.add(k.mul(value, k.const(3)), k.const(7)))

    k.if_(is_even, even_side, odd_side, name="parity")
    k.finish()
    return k


def main() -> None:
    threads = 32
    data_a = list(range(threads))
    data_b = list(range(100, 100 + threads))

    baseline = build_kernel()
    print("=== original kernel ===")
    print(repro.print_function(baseline.function))
    base = repro.launch(baseline, grid=1, block=threads,
                        args={"a": list(data_a), "b": list(data_b)})

    melded = build_kernel()
    stats = repro.meld(melded)
    print("\n=== after control-flow melding ===")
    print(repro.print_function(melded.function))
    print(f"\nmelds performed: {len(stats.melds)} "
          f"(profitability {stats.melds[0].profitability:.2f}, "
          f"{stats.melds[0].selects_inserted} selects)")
    after = repro.launch(melded, grid=1, block=threads,
                         args={"a": list(data_a), "b": list(data_b)})

    assert base.outputs == after.outputs, "melding must not change results"
    print("\n=== simulated execution (one warp of 32 threads) ===")
    print(f"baseline: {base.metrics.summary()}")
    print(f"melded:   {after.metrics.summary()}")
    print(f"\nspeedup: {base.metrics.cycles / after.metrics.cycles:.2f}x, "
          f"outputs identical: {base.outputs == after.outputs}")


if __name__ == "__main__":
    main()
