"""Quickstart: meld a divergent kernel and measure the win.

Builds the paper's motivating shape — an if-then-else whose two sides do
similar work on different data — runs CFM on it, and compares simulated
execution before and after.

Run:  python examples/quickstart.py
"""

from repro.core import run_cfm
from repro.ir import I32, ICmpPredicate, print_function
from repro.kernels.dsl import GLOBAL_I32_PTR, KernelBuilder
from repro.simt import run_kernel


def build_kernel() -> KernelBuilder:
    """if (tid % 2 == 0) a[tid] = 3*a[tid]+1; else b[tid] = 3*b[tid]+7;"""
    k = KernelBuilder("quickstart", params=[("a", GLOBAL_I32_PTR),
                                            ("b", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    parity = k.and_(tid, k.const(1))
    is_even = k.icmp(ICmpPredicate.EQ, parity, k.const(0))

    def even_side() -> None:
        value = k.load_at(k.param("a"), tid)
        k.store_at(k.param("a"), tid, k.add(k.mul(value, k.const(3)), k.const(1)))

    def odd_side() -> None:
        value = k.load_at(k.param("b"), tid)
        k.store_at(k.param("b"), tid, k.add(k.mul(value, k.const(3)), k.const(7)))

    k.if_(is_even, even_side, odd_side, name="parity")
    k.finish()
    return k


def main() -> None:
    threads = 32
    data_a = list(range(threads))
    data_b = list(range(100, 100 + threads))

    baseline = build_kernel()
    print("=== original kernel ===")
    print(print_function(baseline.function))
    out_base, metrics_base = run_kernel(
        baseline.module, "quickstart", grid_dim=1, block_dim=threads,
        buffers={"a": list(data_a), "b": list(data_b)})

    melded = build_kernel()
    stats = run_cfm(melded.function)
    print("\n=== after control-flow melding ===")
    print(print_function(melded.function))
    print(f"\nmelds performed: {len(stats.melds)} "
          f"(profitability {stats.melds[0].profitability:.2f}, "
          f"{stats.melds[0].selects_inserted} selects)")
    out_melded, metrics_melded = run_kernel(
        melded.module, "quickstart", grid_dim=1, block_dim=threads,
        buffers={"a": list(data_a), "b": list(data_b)})

    assert out_base == out_melded, "melding must not change results"
    print("\n=== simulated execution (one warp of 32 threads) ===")
    print(f"baseline: {metrics_base.summary()}")
    print(f"melded:   {metrics_melded.summary()}")
    print(f"\nspeedup: {metrics_base.cycles / metrics_melded.cycles:.2f}x, "
          f"outputs identical: {out_base == out_melded}")


if __name__ == "__main__":
    main()
