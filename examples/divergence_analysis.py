"""Tour of the analysis stack CFM is built on.

For a small divergent kernel this example prints:

* the divergence analysis verdict for every instruction and branch;
* the dominator / post-dominator structure;
* the meldable divergent region (Definition 5) and its SESE subgraph
  decomposition with melding profitabilities (Definition 6 / §IV-C).

Run:  python examples/divergence_analysis.py
"""

from repro import (
    compute_divergence,
    compute_dominator_tree,
    compute_postdominator_tree,
    find_meldable_region,
    immediate_postdominator,
    most_profitable_pair,
    parse_function,
    path_subgraphs,
    print_function,
    simplify_path_subgraphs,
)

KERNEL = """
define void @demo(i32 addrspace(1)* %a, i32 addrspace(1)* %b, i32 %n) {
entry:
  %tid = call i32 @llvm.gpu.tid.x()
  %uniform = add i32 %n, 1
  %c = icmp slt i32 %tid, %uniform
  br i1 %c, label %low, label %high
low:
  %lp = getelementptr i32, i32 addrspace(1)* %a, i32 %tid
  %lv = load i32, i32 addrspace(1)* %lp
  %lc = icmp sgt i32 %lv, 0
  br i1 %lc, label %low.pos, label %low.done
low.pos:
  store i32 0, i32 addrspace(1)* %lp
  br label %low.done
low.done:
  br label %merge
high:
  %hp = getelementptr i32, i32 addrspace(1)* %b, i32 %tid
  %hv = load i32, i32 addrspace(1)* %hp
  %hc = icmp sgt i32 %hv, 0
  br i1 %hc, label %high.pos, label %high.done
high.pos:
  store i32 0, i32 addrspace(1)* %hp
  br label %high.done
high.done:
  br label %merge
merge:
  ret void
}
"""


def main() -> None:
    function = parse_function(KERNEL)
    print(print_function(function))

    print("\n--- divergence analysis ---")
    info = compute_divergence(function)
    for block in function.blocks:
        for instr in block:
            if instr.type.is_void:
                continue
            verdict = "divergent" if info.is_divergent(instr) else "uniform"
            print(f"  %{instr.name:<10s} {verdict}")
    print("  divergent branches:",
          sorted(b.name for b in info.divergent_branch_blocks))

    print("\n--- dominance ---")
    dt = compute_dominator_tree(function)
    pdt = compute_postdominator_tree(function)
    for block in function.blocks:
        idom = dt.idom(block)
        ipdom = immediate_postdominator(pdt, block)
        print(f"  %{block.name:<10s} idom={idom.name if idom else '-':<10s} "
              f"ipdom={ipdom.name if ipdom else '-'}")

    print("\n--- meldable divergent region (Definition 5) ---")
    region = find_meldable_region(function.entry, info, pdt)
    print(f"  region ({region.entry.name}, {region.exit.name}), "
          f"condition %{region.condition.name}")

    true_subs = path_subgraphs(region.true_first, region.exit, pdt)
    false_subs = path_subgraphs(region.false_first, region.exit, pdt)
    # Region simplification gives every subgraph a unique exit block
    # (Algorithm 1's `Simplify`).
    simplify_path_subgraphs(function, true_subs)
    simplify_path_subgraphs(function, false_subs)
    for label, subgraphs in (("true", true_subs), ("false", false_subs)):
        print(f"  {label} path subgraphs:")
        for subgraph in subgraphs:
            kind = "block" if subgraph.is_single_block else "region"
            print(f"    {kind} {subgraph.entry.name}..{subgraph.exit.name} "
                  f"({len(subgraph.blocks)} blocks)")

    print("\n--- most profitable pair (greedy m x n scan) ---")
    pair = most_profitable_pair(true_subs, false_subs)
    print(f"  ({pair.true_subgraph.entry.name}, "
          f"{pair.false_subgraph.entry.name}) FP_S = {pair.profitability:.3f}")
    print("  block mapping O:",
          [(a.name, b.name) for a, b in pair.mapping])


if __name__ == "__main__":
    main()
