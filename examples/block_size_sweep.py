"""Block-size sweep over one benchmark — a miniature Figure 8.

Treats block size as exogenous (as the paper's evaluation does) and asks:
if a programmer has this kernel at a given block size, what happens when
CFM is applied?

Run:  python examples/block_size_sweep.py [kernel] [sizes...]
      python examples/block_size_sweep.py PCM 16 32 64
"""

import sys

from repro import ALL_BUILDERS, compare, geomean


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "LUD"
    sizes = [int(s) for s in sys.argv[2:]] or [16, 32, 64, 128]
    builder = ALL_BUILDERS[kernel]

    print(f"{kernel}: baseline (-O3) vs CFM across block sizes")
    print(f"{'block':>6s} {'speedup':>8s} {'melds':>6s} "
          f"{'alu base':>9s} {'alu cfm':>8s} {'lds base':>9s} {'lds cfm':>8s}")
    speedups = []
    for size in sizes:
        result = compare(builder, block_size=size, name=kernel)
        speedups.append(result.speedup)
        print(f"{size:>6d} {result.speedup:>7.3f}x {result.melds:>6d} "
              f"{result.baseline.alu_utilization:>8.1%} "
              f"{result.melded.alu_utilization:>7.1%} "
              f"{result.baseline.shared_memory_issues:>9d} "
              f"{result.melded.shared_memory_issues:>8d}")
    print(f"\ngeomean speedup: {geomean(speedups):.3f}x")


if __name__ == "__main__":
    main()
