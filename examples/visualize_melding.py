"""Export before/after CFGs of a melding as Graphviz DOT files —
regenerating the paper's Figure 5 panels for any kernel.

Run:  python examples/visualize_melding.py [kernel] [outdir]
      python examples/visualize_melding.py BIT /tmp/cfgs
      dot -Tpdf /tmp/cfgs/BIT_before.dot -o before.pdf
"""

import os
import sys

from repro import (
    ALL_BUILDERS,
    compile_baseline,
    function_to_dot,
    melding_stages_to_dot,
    run_cfm,
)


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "BIT"
    outdir = sys.argv[2] if len(sys.argv) > 2 else "."
    os.makedirs(outdir, exist_ok=True)

    case = ALL_BUILDERS[kernel](block_size=16, grid_dim=1)
    compile_baseline(case)
    before = melding_stages_to_dot(case.function)
    before_path = os.path.join(outdir, f"{kernel}_before.dot")
    with open(before_path, "w") as handle:
        handle.write(before)

    stats = run_cfm(case.function)
    melded_names = set()
    for record in stats.melds:
        melded_names.add(record.true_entry)
        melded_names.add(record.false_entry)
    highlight = [b for b in case.function.blocks if ".m." in b.name]
    after = function_to_dot(case.function, highlight=highlight)
    after_path = os.path.join(outdir, f"{kernel}_after.dot")
    with open(after_path, "w") as handle:
        handle.write(after)

    print(f"{kernel}: {len(stats.melds)} melds")
    print(f"wrote {before_path} (divergent branches outlined red)")
    print(f"wrote {after_path} (melded blocks filled green)")
    print("render with: dot -Tpdf <file>.dot -o <file>.pdf")


if __name__ == "__main__":
    main()
