"""The paper's running example: bitonic sort (Figure 1 / Figure 5).

Shows the full CFM pipeline on the bitonic kernel:

1. the original CFG with its divergent ascending/descending regions;
2. the melded CFG after `run_cfm` (compare with the paper's Figure 5);
3. simulated execution of both, with the counters the paper reports
   (cycles, ALU utilization, LDS instruction count).

Run:  python examples/bitonic_sort.py [block_size]
"""

import random
import sys

from repro import compile_baseline, compile_cfm, print_function, run_kernel
from repro import REAL_WORLD_BUILDERS

build_bitonic = REAL_WORLD_BUILDERS["BIT"]


def run(case, data):
    outputs, metrics = run_kernel(
        case.module, case.kernel, case.grid_dim, case.block_dim,
        buffers={"values": list(data)})
    return outputs["values"], metrics


def main() -> None:
    block_size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    grid_dim = 2
    rng = random.Random(42)
    data = [rng.randrange(10_000) for _ in range(block_size * grid_dim)]

    baseline = build_bitonic(block_size=block_size, grid_dim=grid_dim)
    compile_baseline(baseline)

    melded = build_bitonic(block_size=block_size, grid_dim=grid_dim)
    result = compile_cfm(melded)

    print(f"bitonic sort, {grid_dim} buckets x {block_size} elements")
    print(f"\nCFM melded {len(result.cfm_stats.melds)} subgraph pairs:")
    for record in result.cfm_stats.melds:
        print(f"  ({record.true_entry}, {record.false_entry}) "
              f"FP_S={record.profitability:.2f} "
              f"melded={record.instructions_melded} "
              f"selects={record.selects_inserted}")

    sorted_base, metrics_base = run(baseline, data)
    sorted_melded, metrics_melded = run(melded, data)

    for block in range(grid_dim):
        lo, hi = block * block_size, (block + 1) * block_size
        assert sorted_base[lo:hi] == sorted(data[lo:hi])
    assert sorted_base == sorted_melded, "CFM changed the sort result!"

    print("\nbaseline:", metrics_base.summary())
    print("melded:  ", metrics_melded.summary())
    print(f"\nspeedup              : "
          f"{metrics_base.cycles / metrics_melded.cycles:.3f}x")
    print(f"ALU utilization      : {metrics_base.alu_utilization:.1%} -> "
          f"{metrics_melded.alu_utilization:.1%}")
    print(f"LDS instruction count: {metrics_base.shared_memory_issues} -> "
          f"{metrics_melded.shared_memory_issues} "
          f"({metrics_melded.shared_memory_issues / metrics_base.shared_memory_issues:.2f}x)")
    print("\nMelded kernel CFG (compare with the paper's Figure 5e):")
    print(print_function(melded.function))


if __name__ == "__main__":
    main()
