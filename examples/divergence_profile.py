"""Profile a kernel's dynamic divergence, per branch — the measurement
that motivates CFM (§I): which branches actually serialize warps, how
often, and what melding does about it.

Run:  python examples/divergence_profile.py [kernel] [block_size]
"""

import sys

from repro import (
    ALL_BUILDERS,
    MachineConfig,
    compile_baseline,
    compile_cfm,
    run_kernel,
)


def profile(case, label):
    machine = MachineConfig(profile_branches=True)
    inputs = case.make_buffers(99)
    _, metrics = run_kernel(case.module, case.kernel, case.grid_dim,
                            case.block_dim,
                            buffers={k: list(v) for k, v in inputs.items()},
                            scalars=case.scalars, machine=machine)
    print(f"\n{label}: {metrics.cycles} cycles, "
          f"{metrics.divergent_branches}/{metrics.branches} branch issues divergent")
    rows = sorted(metrics.branch_profile.items(),
                  key=lambda kv: kv[1][1], reverse=True)
    print(f"  {'branch block':<28s} {'execs':>7s} {'divergent':>10s} {'rate':>6s}")
    for name, (execs, divs) in rows[:12]:
        print(f"  %{name:<27s} {execs:>7d} {divs:>10d} {divs/execs:>6.1%}")
    return metrics


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "BIT"
    block_size = int(sys.argv[2]) if len(sys.argv) > 2 else 32

    baseline = ALL_BUILDERS[kernel](block_size=block_size, grid_dim=1)
    compile_baseline(baseline)
    base_metrics = profile(baseline, f"{kernel} baseline (-O3)")

    melded = ALL_BUILDERS[kernel](block_size=block_size, grid_dim=1)
    result = compile_cfm(melded)
    cfm_metrics = profile(melded, f"{kernel} after CFM "
                          f"({len(result.cfm_stats.melds)} melds)")

    print(f"\ndivergent branch issues: {base_metrics.divergent_branches} -> "
          f"{cfm_metrics.divergent_branches}")
    print(f"speedup: {base_metrics.cycles / cfm_metrics.cycles:.3f}x")


if __name__ == "__main__":
    main()
