"""Ablations over CFM's design choices (DESIGN.md §6).

1. **Greedy vs optimal subgraph alignment** — §IV-C argues the greedy
   m×n scan matches the optimal NW alignment on real programs because
   divergent regions contain few subgraphs.
2. **Unpredication on/off for pure runs** — §IV-E/§IV-G: splitting pure
   gap runs is later undone by if-conversion, so performance should not
   depend on it (correctness never does; side-effecting runs always
   split).
3. **Profitability threshold** — Algorithm 1's gate: at threshold ≥ 0.5
   nothing melds (identical profiles score exactly 0.5).
4. **Warp width 32 vs 64** — the paper's GPU uses 64-wide wavefronts;
   melding wins in both configurations.
"""

import pytest

from repro import ALL_BUILDERS, CFMConfig, MachineConfig, compare, geomean

KERNELS = ["SB3", "BIT", "PCM"]


def sweep(config=None, machine=None, block_size=32):
    results = {}
    for name in KERNELS:
        results[name] = compare(ALL_BUILDERS[name], block_size=block_size,
                                grid_dim=1, config=config, machine=machine,
                                name=name)
    return results


@pytest.fixture(scope="module")
def greedy():
    return sweep()


def test_ablation_greedy_vs_optimal_alignment(benchmark, greedy):
    optimal = sweep(CFMConfig(optimal_subgraph_alignment=True))
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print("Ablation: greedy vs optimal subgraph alignment")
    for name in KERNELS:
        g, o = greedy[name], optimal[name]
        print(f"  {name:4s} greedy {g.speedup:.3f}x ({g.melds} melds)   "
              f"optimal {o.speedup:.3f}x ({o.melds} melds)")
        # §IV-C: the greedy approach "also works" — within 5% of optimal.
        assert g.speedup >= o.speedup * 0.95


def test_ablation_unpredication_of_pure_runs(benchmark, greedy):
    no_split = sweep(CFMConfig(split_pure_runs=False))
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print("Ablation: unpredication of pure gap runs (on vs off)")
    for name in KERNELS:
        on, off = greedy[name], no_split[name]
        print(f"  {name:4s} split {on.speedup:.3f}x   "
              f"predicated {off.speedup:.3f}x")
        # The late if-conversion re-predicates pure runs anyway (§IV-G),
        # so the two configurations land close together.
        assert abs(on.speedup - off.speedup) < 0.15


def test_ablation_profitability_threshold(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print("Ablation: profitability threshold")
    rows = []
    for threshold in (0.05, 0.25, 0.45, 0.60):
        result = compare(ALL_BUILDERS["BIT"], block_size=32, grid_dim=1,
                         config=CFMConfig(profitability_threshold=threshold),
                         name="BIT")
        rows.append((threshold, result))
        print(f"  threshold {threshold:.2f}: {result.melds} melds, "
              f"{result.speedup:.3f}x")
    # Identical opcode profiles score exactly 0.5: past that, no melds.
    assert rows[0][1].melds > 0
    assert rows[-1][1].melds == 0
    assert abs(rows[-1][1].speedup - 1.0) < 0.02


def test_ablation_warp_width(benchmark, greedy):
    vega = sweep(machine=MachineConfig(warp_size=64), block_size=64)
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print("Ablation: warp width 32 (default) vs 64 (Vega wavefront)")
    for name in KERNELS:
        print(f"  {name:4s} w32 {greedy[name].speedup:.3f}x   "
              f"w64 {vega[name].speedup:.3f}x")
        # Divergence penalties exist at both widths; melding must win.
        assert vega[name].speedup > 1.05
