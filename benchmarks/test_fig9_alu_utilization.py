"""Figure 9: ALU utilization, baseline vs CFM, at each kernel's
best-improvement block size.

Paper: CFM improves ALU utilization significantly for all benchmarks
except bitonic sort, where non-meldable compares plus added selects can
drag it down (§VI-C).
"""

import pytest

from repro import best_improvement_rows, counters, format_counters


@pytest.fixture(scope="module")
def counter_rows(fig7_data, fig8_data):
    rows, _ = fig7_data
    return counters(best_improvement_rows(rows + fig8_data.rows))


def test_figure9_regenerates(benchmark, counter_rows):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(format_counters(counter_rows))


def test_alu_utilization_improves(counter_rows):
    for row in counter_rows:
        if row.kernel == "BIT":
            # The paper's one exception: allow a drop, bounded.
            assert row.cfm_alu_utilization > row.baseline_alu_utilization - 0.15
            continue
        assert row.cfm_alu_utilization >= row.baseline_alu_utilization - 1e-9, \
            f"{row.kernel}: {row.baseline_alu_utilization:.2f} -> " \
            f"{row.cfm_alu_utilization:.2f}"


def test_divergence_heavy_kernels_gain_most(counter_rows):
    gains = {r.kernel: r.cfm_alu_utilization - r.baseline_alu_utilization
             for r in counter_rows}
    # The melding-friendly synthetic kernels see large absolute gains.
    assert gains["SB1"] > 0.15
    assert gains["SB3"] > 0.15
