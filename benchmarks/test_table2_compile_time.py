"""Table II: compile time with and without CFM for the real benchmarks.

Paper (absolute seconds on HIPCC; we report our Python pipeline):

| kernel | O3     | CFM    | normalized |
|--------|--------|--------|-----------|
| LUD    | 2.3754 | 3.7209 | 1.5664 |
| BIT    | 0.6690 | 0.6663 | 0.9960 |
| DCT    | 0.6178 | 0.6207 | 1.0047 |
| MS     | 0.9633 | 0.9699 | 1.0068 |
| PCM    | 1.0427 | 1.2320 | 1.1816 |

Absolute numbers are not comparable (our "O3" compiles a few hundred IR
instructions in Python; HIPCC compiles a full device module in C++), so
normalized ratios are uniformly larger here.  The reproduction target is
the paper's *explanation* (§VI-E): LUD's overhead is dominated by long
Needleman–Wunsch instruction alignments and PCM's by the m×n subgraph
profitability scan, so those two kernels top the overhead ranking.
"""

import pytest

from repro import format_table2, table2


@pytest.fixture(scope="module")
def rows():
    return table2(block_size=32, repeats=3)


def test_table2_regenerates(benchmark, rows):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(format_table2(rows))


def test_lud_and_pcm_have_highest_overhead(rows):
    by_kernel = {r.kernel: r.normalized for r in rows}
    for cheap in ("DCT", "MS"):
        assert by_kernel["LUD"] > by_kernel[cheap]
        assert by_kernel["PCM"] > by_kernel[cheap]


def test_every_kernel_compiles_under_a_second(rows):
    for row in rows:
        assert row.cfm_seconds < 1.0, f"{row.kernel}: {row.cfm_seconds:.3f}s"
