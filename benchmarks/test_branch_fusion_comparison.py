"""CFM vs branch fusion on the real benchmarks.

The paper's §VI-A states, per kernel, whether branch fusion (Coutinho et
al.) applies: LUD ✓ (diamond once unrolled), DCT ✓, MS ✓ (simple diamond),
BIT ✗ and PCM ✗ (control flow too complex).  This benchmark measures all
five kernels under both transforms and asserts:

* branch fusion only ever matches CFM where the paper says it applies;
* on BIT and PCM branch fusion leaves the headline divergence on the
  table (CFM strictly better);
* CFM is never worse than branch fusion (it subsumes it).
"""

import pytest

from repro import (
    REAL_WORLD_BUILDERS,
    compare,
    compile_baseline,
    eliminate_dead_code,
    execute,
    fuse_branches,
    geomean,
    optimize,
    simplify_cfg,
    speculate_hammocks,
    verify_function,
)

BLOCKS = {"LUD": 16, "BIT": 32, "DCT": 64, "MS": 32, "PCM": 16}
#: §VI-A: can branch fusion fully handle this kernel's divergence?
PAPER_BF_APPLIES = {"LUD": True, "BIT": False, "DCT": True, "MS": True,
                    "PCM": False}


def run_with_branch_fusion(name):
    case = REAL_WORLD_BUILDERS[name](block_size=BLOCKS[name], grid_dim=1)
    optimize(case.function)
    fuse_branches(case.function)
    simplify_cfg(case.function)
    speculate_hammocks(case.function)
    simplify_cfg(case.function)
    eliminate_dead_code(case.function)
    verify_function(case.function)
    return execute(case, seed=2022).metrics


@pytest.fixture(scope="module")
def results():
    rows = {}
    for name in REAL_WORLD_BUILDERS:
        baseline_case = REAL_WORLD_BUILDERS[name](block_size=BLOCKS[name],
                                                  grid_dim=1)
        compile_baseline(baseline_case)
        baseline = execute(baseline_case, seed=2022).metrics
        fusion = run_with_branch_fusion(name)
        cfm = compare(REAL_WORLD_BUILDERS[name], block_size=BLOCKS[name],
                      grid_dim=1, seed=2022, name=name)
        rows[name] = {
            "bf_speedup": baseline.cycles / fusion.cycles,
            "cfm_speedup": cfm.speedup,
        }
    return rows


def test_comparison_regenerates(benchmark, results):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print("CFM vs branch fusion (speedup over the -O3 baseline)")
    print(f"  {'kernel':<6s} {'branch fusion':>14s} {'cfm':>8s} "
          f"{'BF applies (paper)':>20s}")
    for name, row in results.items():
        print(f"  {name:<6s} {row['bf_speedup']:>13.3f}x "
              f"{row['cfm_speedup']:>7.3f}x "
              f"{'yes' if PAPER_BF_APPLIES[name] else 'no':>20s}")


def test_cfm_subsumes_branch_fusion(results):
    for name, row in results.items():
        assert row["cfm_speedup"] >= row["bf_speedup"] - 0.02, name


def test_branch_fusion_misses_complex_kernels(results):
    # BIT and PCM's divergent regions are not diamonds: fusion leaves the
    # bulk of CFM's win on the table.
    for name in ("BIT", "PCM"):
        assert results[name]["cfm_speedup"] > \
            results[name]["bf_speedup"] + 0.10, name


def test_branch_fusion_matches_cfm_on_diamonds(results):
    # Where the paper says fusion applies, it captures most of the win.
    for name in ("LUD", "DCT"):
        assert results[name]["bf_speedup"] >= \
            results[name]["cfm_speedup"] - 0.05, name
