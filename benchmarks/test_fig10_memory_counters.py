"""Figure 10: memory instruction counters (vector/LDS/flat), CFM
normalized to baseline, at the best-improvement block sizes.

Paper: shared-memory (LDS) instruction counts drop sharply for the
synthetic kernels and for BIT/PCM (whose melded regions are full of LDS
ops); the drop is smaller for the -R variants because their memory
instructions do not align perfectly (§VI-D).
"""

import pytest

from repro import best_improvement_rows, counters, format_counters


@pytest.fixture(scope="module")
def counter_rows(fig7_data, fig8_data):
    rows, _ = fig7_data
    return counters(best_improvement_rows(rows + fig8_data.rows))


def test_figure10_regenerates(benchmark, counter_rows):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(format_counters(counter_rows))


def test_lds_counts_drop_for_shared_memory_kernels(counter_rows):
    rows = {r.kernel: r for r in counter_rows}
    for kernel in ("SB1", "SB2", "SB3", "SB1-R", "SB2-R", "SB3-R",
                   "BIT", "PCM"):
        assert rows[kernel].normalized_shared_memory < 0.9, \
            f"{kernel}: {rows[kernel].normalized_shared_memory:.3f}"


def test_exact_variants_drop_more_than_randomized(counter_rows):
    rows = {r.kernel: r for r in counter_rows}
    for base in ("SB1", "SB2", "SB3"):
        assert rows[base].normalized_shared_memory <= \
            rows[f"{base}-R"].normalized_shared_memory + 1e-9


def test_memory_counters_never_increase_materially(counter_rows):
    # §VI-D: LUD's LDS count may rise "slightly due to predication by
    # later passes"; everything else must not regress.
    for row in counter_rows:
        assert row.normalized_vector_memory <= 1.10, row.kernel
        assert row.normalized_shared_memory <= 1.25, row.kernel
        assert row.normalized_flat_memory <= 1.10, row.kernel
