"""Shared fixtures for the figure/table benchmarks.

Sweeps are expensive (every kernel × block size is compiled twice and
simulated twice), so they are computed once per session and shared by the
figure benchmarks that need them.

Set ``REPRO_SWEEP_WORKERS=N`` to fan the session sweeps across N worker
processes (rows are deterministic — identical to the serial run; see
``docs/evaluation.md``).  ``REPRO_SWEEP_TIMEOUT`` optionally bounds each
configuration's wall-clock seconds when running parallel.
"""

import os

import pytest

from repro import figure7, figure8

SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
SWEEP_TIMEOUT = (float(os.environ["REPRO_SWEEP_TIMEOUT"])
                 if "REPRO_SWEEP_TIMEOUT" in os.environ else None)


@pytest.fixture(scope="session")
def fig7_data():
    return figure7(workers=SWEEP_WORKERS, timeout=SWEEP_TIMEOUT)


@pytest.fixture(scope="session")
def fig8_data():
    return figure8(workers=SWEEP_WORKERS, timeout=SWEEP_TIMEOUT)
