"""Shared fixtures for the figure/table benchmarks.

Sweeps are expensive (every kernel × block size is compiled twice and
simulated twice), so they are computed once per session and shared by the
figure benchmarks that need them.
"""

import pytest

from repro.evaluation import figure7, figure8


@pytest.fixture(scope="session")
def fig7_data():
    return figure7()


@pytest.fixture(scope="session")
def fig8_data():
    return figure8()
