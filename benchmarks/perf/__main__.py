"""CLI entry point: ``python -m benchmarks.perf``.

Runs the executor benchmark suite and writes ``BENCH_PR6.json``
(executor speedups plus the cold-vs-warm compile-cache split).  With
``--check`` the thresholds guard is evaluated and a miss exits 1 —
this is what the CI perf-smoke job runs.  ``--cache-dir`` points the
Figure 8 cold/warm measurement at a persistent directory instead of a
throwaway one.

``--history`` skips benchmarking entirely: it loads every committed
``BENCH_PR<N>.json``, prints the cross-PR trend table, and with
``--check`` fails when any headline metric's newest point has decayed
more than ``--max-regression`` below its best historical point (see
:mod:`benchmarks.perf.history`).  No timing runs, so CI can evaluate
the trajectory guard on any machine.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .guard import check_thresholds, load_thresholds
from .history import DEFAULT_MAX_REGRESSION, check_history, load_history, render_history
from .suite import run_suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Benchmark the fast-path executor against the "
                    "reference interpreter and emit BENCH_PR6.json.")
    parser.add_argument("--out", type=Path, default=Path("BENCH_PR6.json"),
                        help="output path (default: ./BENCH_PR6.json)")
    parser.add_argument("--history", action="store_true",
                        help="render the committed BENCH_PR*.json trend "
                             "table instead of benchmarking; with --check, "
                             "fail on trajectory regressions")
    parser.add_argument("--bench-root", type=Path, default=Path("."),
                        metavar="DIR",
                        help="where to look for BENCH_PR*.json "
                             "(default: current directory)")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION, metavar="FRAC",
                        help="history decay tolerated by --history --check "
                             f"(default: {DEFAULT_MAX_REGRESSION})")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent compile-cache directory for the "
                             "figure8 cold/warm measurement (default: a "
                             "temporary directory)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (best-of)")
    parser.add_argument("--difftest-seeds", type=int, default=4,
                        help="difftest oracle seeds to time")
    parser.add_argument("--quick", action="store_true",
                        help="single repeat, 2 difftest seeds (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="evaluate thresholds.json and exit 1 on a miss")
    parser.add_argument("--slack", type=float, default=0.0,
                        help="fractional threshold slack for --check "
                             "(e.g. 0.3 tolerates 30%% under threshold)")
    args = parser.parse_args(argv)

    if args.history:
        history = load_history(args.bench_root)
        print(render_history(history))
        if args.check:
            failures = check_history(history,
                                     max_regression=args.max_regression)
            if failures:
                print("PERF HISTORY GUARD FAILED:", file=sys.stderr)
                for failure in failures:
                    print(f"  {failure}", file=sys.stderr)
                return 1
            print("perf history guard passed "
                  f"({len(history)} BENCH files)")
        return 0

    results = run_suite(repeats=args.repeats,
                        difftest_seeds=args.difftest_seeds,
                        quick=args.quick, cache_dir=args.cache_dir)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    for row in results["micro"]:
        fast = row["executors"]["fast"]["ops_per_second"]
        print(f"micro {row['workload']:>16}: {row['speedup']:5.2f}x "
              f"(fast: {fast:,.0f} ops/s)")
    figure8 = results["macro"]["figure8"]
    print(f"macro figure8: simulate {figure8['simulate_speedup']:.2f}x, "
          f"end-to-end {figure8['end_to_end_speedup']:.2f}x "
          f"(compile {figure8['compile_seconds']:.2f}s)")
    compile_split = figure8["compile"]
    print(f"macro figure8 compile cache: cold "
          f"{compile_split['cold_seconds']:.2f}s, warm "
          f"{compile_split['warm_seconds']:.2f}s "
          f"({compile_split['warm_speedup']:.1f}x; warm end-to-end "
          f"{figure8['end_to_end_speedup_warm']:.2f}x, "
          f"{compile_split['warm_cache']['hits']} hits)")
    difftest = results["macro"]["difftest"]
    print(f"macro difftest: {difftest['speedup']:.2f}x "
          f"({difftest['executors']['fast']['seeds_per_second']:.2f} seeds/s)")
    print(f"wrote {args.out}")

    if args.check:
        failures = check_thresholds(results, load_thresholds(),
                                    slack=args.slack)
        if failures:
            print("PERF GUARD FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("perf guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
