"""Threshold guard over BENCH_PR6 results.

``thresholds.json`` records the minimum fast-over-reference speedup per
micro workload and for the macro measurements.  ``check_thresholds``
compares a suite result against them with a multiplicative ``slack``
(0.3 means a measurement may come in 30% under its threshold before the
guard trips — machine-to-machine noise on CI runners is real).  Parity
(``metrics_identical``) gets no slack: a semantic divergence between
executors is a failure at any speed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

THRESHOLDS_PATH = Path(__file__).with_name("thresholds.json")


class GuardFailure(AssertionError):
    """One or more perf thresholds were missed."""

    def __init__(self, failures: List[str]) -> None:
        self.failures = list(failures)
        super().__init__(
            f"{len(self.failures)} perf threshold(s) missed:\n  "
            + "\n  ".join(self.failures))


def load_thresholds(path: Path = THRESHOLDS_PATH) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_thresholds(results: Dict, thresholds: Dict,
                     slack: float = 0.0) -> List[str]:
    """Return the list of missed thresholds (empty = guard passes)."""
    scale = 1.0 - slack
    failures: List[str] = []

    micro_min = thresholds.get("micro_min_speedup", {})
    by_name = {row["workload"]: row for row in results.get("micro", [])}
    for name, minimum in micro_min.items():
        row = by_name.get(name)
        if row is None:
            failures.append(f"micro:{name}: no measurement in results")
            continue
        if row["speedup"] < minimum * scale:
            failures.append(
                f"micro:{name}: speedup {row['speedup']:.2f}x < "
                f"{minimum:.2f}x (slack {slack:.0%})")

    macro = thresholds.get("macro", {})
    figure8 = results.get("macro", {}).get("figure8")
    if figure8 is not None:
        if not figure8.get("metrics_identical", False):
            failures.append("macro:figure8: executors disagree on metrics")
        # Correctness of the warm replay gets no slack either: a warm
        # compile cache must reproduce the cold pipeline bit for bit.
        if "warm_ir_identical" in figure8 and \
                not figure8["warm_ir_identical"]:
            failures.append("macro:figure8: warm cache replay changed IR")
        minimum = macro.get("figure8_simulate_min_speedup")
        if minimum is not None and \
                figure8["simulate_speedup"] < minimum * scale:
            failures.append(
                f"macro:figure8: simulate speedup "
                f"{figure8['simulate_speedup']:.2f}x < {minimum:.2f}x "
                f"(slack {slack:.0%})")
        minimum = macro.get("figure8_warm_end_to_end_min_speedup")
        warm = figure8.get("end_to_end_speedup_warm")
        if minimum is not None and warm is not None and \
                warm < minimum * scale:
            failures.append(
                f"macro:figure8: warm end-to-end speedup {warm:.2f}x < "
                f"{minimum:.2f}x (slack {slack:.0%})")
    difftest = results.get("macro", {}).get("difftest")
    if difftest is not None:
        minimum = macro.get("difftest_min_speedup")
        if minimum is not None and difftest["speedup"] < minimum * scale:
            failures.append(
                f"macro:difftest: speedup {difftest['speedup']:.2f}x < "
                f"{minimum:.2f}x (slack {slack:.0%})")
    return failures
