"""Micro benchmark kernels, one per µop opcode class.

Each workload is a small unoptimized kernel whose inner loop is
dominated by one executor code path (``OP_COMPUTE2`` int/float,
``OP_SELECT``, ``OP_LOAD``/``OP_STORE`` in global or shared space,
divergent ``TERM_CBR``, φ transfer).  The launch shape is identical
everywhere so throughput numbers are comparable across classes.

Built through the public :class:`repro.KernelBuilder` DSL; the modules
are executed as-built (no ``-O3``), so what the executor runs is exactly
what each builder writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro import GLOBAL_I32_PTR, I32, ICmpPredicate, KernelBuilder
from repro.ir import F32

GRID_DIM = 2
BLOCK_DIM = 64
TRIP = 64  # inner-loop iterations per thread


@dataclass(frozen=True)
class MicroWorkload:
    """One compiled micro kernel plus its launch recipe."""

    name: str
    opcode_class: str
    module: object
    kernel: str
    grid_dim: int
    block_dim: int
    make_buffers: Callable[[], Dict[str, List[int]]]


def _data_buffers() -> Dict[str, List[int]]:
    n = GRID_DIM * BLOCK_DIM
    return {"data": [(i * 7 + 3) % 251 for i in range(n)]}


def _loop(k: KernelBuilder, body) -> None:
    k.for_range("i", k.const(0), k.const(TRIP), body)


def build_int_alu() -> MicroWorkload:
    k = KernelBuilder("perf_int_alu", params=[("data", GLOBAL_I32_PTR)])
    gtid = k.global_thread_id()
    x = k.var("x", k.load_at(k.param("data"), gtid))

    def body(i):
        v = k.get(x)
        v = k.add(k.mul(v, k.const(3)), i)
        v = k.xor(v, k.shl(v, k.const(1)))
        v = k.sub(v, k.ashr(v, k.const(2)))
        k.set(x, k.and_(v, k.const(0xFFFF)))

    _loop(k, body)
    k.store_at(k.param("data"), gtid, k.get(x))
    k.finish()
    return MicroWorkload("int_alu", "compute2-int", k.module, "perf_int_alu",
                         GRID_DIM, BLOCK_DIM, _data_buffers)


def build_float_alu() -> MicroWorkload:
    k = KernelBuilder("perf_float_alu", params=[("data", GLOBAL_I32_PTR)])
    gtid = k.global_thread_id()
    seed = k.load_at(k.param("data"), gtid)
    f = k.var("f", k.cast("sitofp", seed, F32))

    def body(i):
        fi = k.cast("sitofp", i, F32)
        v = k.fadd(k.fmul(k.get(f), k.const(0.5, F32)), fi)
        k.set(f, k.fsub(v, k.fneg(k.const(1.25, F32))))

    _loop(k, body)
    k.store_at(k.param("data"), gtid, k.cast("fptosi", k.get(f), I32))
    k.finish()
    return MicroWorkload("float_alu", "compute2-float", k.module,
                         "perf_float_alu", GRID_DIM, BLOCK_DIM, _data_buffers)


def build_cmp_select() -> MicroWorkload:
    k = KernelBuilder("perf_cmp_select", params=[("data", GLOBAL_I32_PTR)])
    gtid = k.global_thread_id()
    x = k.var("x", k.load_at(k.param("data"), gtid))

    def body(i):
        v = k.get(x)
        lo = k.icmp(ICmpPredicate.SLT, v, k.const(128))
        v = k.select(lo, k.add(v, i), k.sub(v, i))
        odd = k.icmp(ICmpPredicate.NE, k.and_(v, k.const(1)), k.const(0))
        k.set(x, k.select(odd, k.mul(v, k.const(3)), v))

    _loop(k, body)
    k.store_at(k.param("data"), gtid, k.get(x))
    k.finish()
    return MicroWorkload("cmp_select", "icmp+select", k.module,
                         "perf_cmp_select", GRID_DIM, BLOCK_DIM, _data_buffers)


def build_global_memory() -> MicroWorkload:
    k = KernelBuilder("perf_global_memory", params=[("data", GLOBAL_I32_PTR)])
    gtid = k.global_thread_id()
    n = k.const(GRID_DIM * BLOCK_DIM)

    def body(i):
        idx = k.srem(k.add(gtid, i), n)
        v = k.load_at(k.param("data"), idx)
        k.store_at(k.param("data"), gtid, k.add(v, k.const(1)))

    _loop(k, body)
    k.finish()
    return MicroWorkload("global_memory", "load/store-global", k.module,
                         "perf_global_memory", GRID_DIM, BLOCK_DIM,
                         _data_buffers)


def build_shared_memory() -> MicroWorkload:
    k = KernelBuilder("perf_shared_memory", params=[("data", GLOBAL_I32_PTR)])
    tile = k.shared_array("tile", I32, BLOCK_DIM)
    tid = k.thread_id()
    gtid = k.global_thread_id()
    k.store_at(tile, tid, k.load_at(k.param("data"), gtid))
    k.barrier()
    nt = k.block_dim()
    acc = k.var("acc", k.const(0))

    def body(i):
        idx = k.srem(k.add(tid, i), nt)
        k.set(acc, k.add(k.get(acc), k.load_at(tile, idx)))

    _loop(k, body)
    k.store_at(k.param("data"), gtid, k.get(acc))
    k.finish()
    return MicroWorkload("shared_memory", "load/store-shared", k.module,
                         "perf_shared_memory", GRID_DIM, BLOCK_DIM,
                         _data_buffers)


def build_branch_divergent() -> MicroWorkload:
    k = KernelBuilder("perf_branch_divergent",
                      params=[("data", GLOBAL_I32_PTR)])
    tid = k.thread_id()
    gtid = k.global_thread_id()
    x = k.var("x", k.load_at(k.param("data"), gtid))
    odd = k.icmp(ICmpPredicate.NE, k.and_(tid, k.const(1)), k.const(0))

    def body(i):
        def then_side():
            k.set(x, k.add(k.get(x), i))

        def else_side():
            k.set(x, k.xor(k.get(x), i))

        # Condition depends on the lane parity: every warp diverges on
        # every iteration, exercising the reconvergence stack + φ merge.
        k.if_(odd, then_side, else_side)

    _loop(k, body)
    k.store_at(k.param("data"), gtid, k.get(x))
    k.finish()
    return MicroWorkload("branch_divergent", "cbr-divergent+phi", k.module,
                         "perf_branch_divergent", GRID_DIM, BLOCK_DIM,
                         _data_buffers)


def build_phi_loop() -> MicroWorkload:
    k = KernelBuilder("perf_phi_loop", params=[("data", GLOBAL_I32_PTR)])
    gtid = k.global_thread_id()
    x = k.var("x", k.load_at(k.param("data"), gtid))

    # Minimal loop body: the uniform back-edge branch and its φ transfer
    # dominate, measuring TERM_CBR + φ bookkeeping throughput.
    def body(i):
        k.set(x, k.add(k.get(x), k.const(1)))

    _loop(k, body)
    k.store_at(k.param("data"), gtid, k.get(x))
    k.finish()
    return MicroWorkload("phi_loop", "loop-phi", k.module, "perf_phi_loop",
                         GRID_DIM, BLOCK_DIM, _data_buffers)


MICRO_BUILDERS: Dict[str, Callable[[], MicroWorkload]] = {
    "int_alu": build_int_alu,
    "float_alu": build_float_alu,
    "cmp_select": build_cmp_select,
    "global_memory": build_global_memory,
    "shared_memory": build_shared_memory,
    "branch_divergent": build_branch_divergent,
    "phi_loop": build_phi_loop,
}
