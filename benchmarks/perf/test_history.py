"""Tests for the perf-trajectory guard (benchmarks.perf.history).

Pure-data tests: the guard reads committed BENCH files and never times
anything, so these run in milliseconds.
"""

import json

from .history import (
    DEFAULT_MAX_REGRESSION,
    check_history,
    discover_bench_files,
    extract_series,
    load_history,
    render_history,
)


def bench_payload(micro_speedup=5.0, simulate=6.0, end_to_end=1.4,
                  warm=None, difftest=1.3):
    figure8 = {"simulate_speedup": simulate,
               "end_to_end_speedup": end_to_end}
    if warm is not None:
        figure8["end_to_end_speedup_warm"] = warm
    return {
        "schema": "repro.benchmarks.perf/1",
        "micro": [{"workload": "int_alu", "opcode_class": "compute2-int",
                   "speedup": micro_speedup, "executors": {}}],
        "macro": {"figure8": figure8,
                  "difftest": {"speedup": difftest, "seeds": 4,
                               "executors": {}}},
    }


def write_bench(root, number, payload):
    path = root / f"BENCH_PR{number}.json"
    path.write_text(json.dumps(payload))
    return path


class TestDiscoveryAndExtraction:
    def test_discover_orders_by_pr_number(self, tmp_path):
        write_bench(tmp_path, 10, bench_payload())
        write_bench(tmp_path, 2, bench_payload())
        (tmp_path / "BENCH_notes.json").write_text("{}")
        found = discover_bench_files(tmp_path)
        assert [number for number, _ in found] == [2, 10]

    def test_extract_series_headline_metrics(self):
        series = extract_series(bench_payload(warm=7.0))
        assert series == {
            "micro.int_alu": 5.0,
            "figure8.simulate": 6.0,
            "figure8.end_to_end": 1.4,
            "figure8.end_to_end_warm": 7.0,
            "difftest.speedup": 1.3,
        }

    def test_missing_metrics_are_omitted_not_zeroed(self):
        series = extract_series(bench_payload())  # no warm measurement
        assert "figure8.end_to_end_warm" not in series

    def test_committed_bench_files_load(self):
        # The real repo history: PR5 and PR6 are committed at the root.
        history = load_history()
        labels = [label for label, _ in history]
        assert "PR5" in labels and "PR6" in labels
        for _, series in history:
            assert "figure8.simulate" in series


class TestRenderHistory:
    def test_table_has_one_column_per_pr(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload(micro_speedup=4.0))
        write_bench(tmp_path, 2, bench_payload(micro_speedup=5.0))
        table = render_history(load_history(tmp_path))
        assert "PR1" in table and "PR2" in table
        assert "micro.int_alu" in table
        assert "4.00x" in table and "5.00x" in table

    def test_absent_points_render_as_dash(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload())
        write_bench(tmp_path, 2, bench_payload(warm=7.0))
        table = render_history(load_history(tmp_path))
        (warm_row,) = [line for line in table.splitlines()
                       if line.startswith("figure8.end_to_end_warm")]
        assert "-" in warm_row and "7.00x" in warm_row

    def test_empty_history_renders_message(self, tmp_path):
        assert "no BENCH" in render_history(load_history(tmp_path))


class TestCheckHistory:
    def test_flat_trajectory_passes(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload())
        write_bench(tmp_path, 2, bench_payload())
        assert check_history(load_history(tmp_path)) == []

    def test_noise_within_tolerance_passes(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload(micro_speedup=5.0))
        write_bench(tmp_path, 2, bench_payload(
            micro_speedup=5.0 * (1 - DEFAULT_MAX_REGRESSION) + 0.01))
        assert check_history(load_history(tmp_path)) == []

    def test_decay_beyond_tolerance_fails(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload(micro_speedup=5.0))
        write_bench(tmp_path, 2, bench_payload(micro_speedup=2.0))
        failures = check_history(load_history(tmp_path))
        assert len(failures) == 1
        assert "micro.int_alu" in failures[0]
        assert "PR2" in failures[0] and "PR1" in failures[0]

    def test_newest_compares_against_best_not_previous(self, tmp_path):
        # A slow decay: each step within tolerance of its predecessor,
        # but the newest point is far below the *best* — must fail.
        write_bench(tmp_path, 1, bench_payload(micro_speedup=5.0))
        write_bench(tmp_path, 2, bench_payload(micro_speedup=4.0))
        write_bench(tmp_path, 3, bench_payload(micro_speedup=3.2))
        failures = check_history(load_history(tmp_path))
        assert failures and "best historical" in failures[0]

    def test_retired_metric_is_skipped(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload(warm=7.0))
        payload = bench_payload()  # newest file dropped the warm series
        write_bench(tmp_path, 2, payload)
        assert check_history(load_history(tmp_path)) == []

    def test_single_file_never_fails(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload())
        assert check_history(load_history(tmp_path)) == []

    def test_custom_tolerance(self, tmp_path):
        write_bench(tmp_path, 1, bench_payload(micro_speedup=5.0))
        write_bench(tmp_path, 2, bench_payload(micro_speedup=4.0))
        assert check_history(load_history(tmp_path),
                             max_regression=0.25) == []
        assert check_history(load_history(tmp_path), max_regression=0.1)

    def test_committed_history_passes_the_guard(self):
        """CI runs this against the real BENCH_PR*.json series."""
        assert check_history(load_history()) == []


class TestCli:
    def test_history_flag_renders_and_checks(self, tmp_path, capsys):
        from .__main__ import main
        write_bench(tmp_path, 1, bench_payload())
        write_bench(tmp_path, 2, bench_payload())
        assert main(["--history", "--check",
                     "--bench-root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "perf history" in out
        assert "guard passed" in out

    def test_history_check_exits_nonzero_on_decay(self, tmp_path, capsys):
        from .__main__ import main
        write_bench(tmp_path, 1, bench_payload(micro_speedup=5.0))
        write_bench(tmp_path, 2, bench_payload(micro_speedup=1.0))
        assert main(["--history", "--check",
                     "--bench-root", str(tmp_path)]) == 1
        assert "PERF HISTORY GUARD FAILED" in capsys.readouterr().err
