"""Perf-trajectory guard over the committed ``BENCH_*.json`` series.

Each PR that touches executor performance commits a ``BENCH_PR<N>.json``
(written by ``python -m benchmarks.perf``).  The per-file thresholds
guard (:mod:`benchmarks.perf.guard`) catches a regression against fixed
floors; this module catches the slower failure mode — a *trajectory*
regression, where each PR stays above the floor but the trend decays:

* :func:`discover_bench_files` finds every ``BENCH_PR<N>.json`` in the
  repo root, ordered by PR number;
* :func:`extract_series` pulls the comparable headline metrics out of
  each file (micro speedups by workload, figure-8 simulate/end-to-end
  speedups, difftest speedup), tolerating schema growth across PRs —
  a metric absent from an old file is simply absent from its column;
* :func:`render_history` formats the trend table that
  ``python -m benchmarks.perf --history`` prints;
* :func:`check_history` compares the **newest** point of each series
  against the **best historical** point and fails when the newest has
  decayed by more than ``max_regression`` (default 25%) — generous
  enough for machine-to-machine timing noise, tight enough to catch a
  halved executor.

All stdlib, no timing: the guard reads committed measurements, so CI
can run it on any machine without re-benchmarking.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: newest-vs-best-historical decay tolerated before --history --check fails
DEFAULT_MAX_REGRESSION = 0.25

_BENCH_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def discover_bench_files(root: Optional[Path] = None
                         ) -> List[Tuple[int, Path]]:
    """``(pr_number, path)`` for every BENCH_PR<N>.json, PR-ordered."""
    root = root if root is not None else Path(".")
    found = []
    for path in root.glob("BENCH_PR*.json"):
        match = _BENCH_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def extract_series(results: Dict[str, object]) -> Dict[str, float]:
    """The comparable headline metrics of one BENCH file.

    Keys are stable across schema growth; metrics a file does not carry
    are omitted (not zero-filled), so older files contribute shorter
    columns rather than fake regressions.
    """
    series: Dict[str, float] = {}
    for row in results.get("micro", []):
        workload = row.get("workload")
        speedup = row.get("speedup")
        if workload is not None and speedup is not None:
            series[f"micro.{workload}"] = float(speedup)
    macro = results.get("macro", {})
    figure8 = macro.get("figure8", {})
    for key, label in (("simulate_speedup", "figure8.simulate"),
                       ("end_to_end_speedup", "figure8.end_to_end"),
                       ("end_to_end_speedup_warm", "figure8.end_to_end_warm")):
        if key in figure8:
            series[label] = float(figure8[key])
    difftest = macro.get("difftest", {})
    if "speedup" in difftest:
        series["difftest.speedup"] = float(difftest["speedup"])
    return series


def load_history(root: Optional[Path] = None
                 ) -> List[Tuple[str, Dict[str, float]]]:
    """``("PR<N>", series)`` per committed BENCH file, PR-ordered."""
    history = []
    for number, path in discover_bench_files(root):
        with open(path) as handle:
            results = json.load(handle)
        history.append((f"PR{number}", extract_series(results)))
    return history


def _metric_names(history: Sequence[Tuple[str, Dict[str, float]]]
                  ) -> List[str]:
    names: List[str] = []
    for _, series in history:
        for name in series:
            if name not in names:
                names.append(name)
    return names


def render_history(history: Sequence[Tuple[str, Dict[str, float]]]) -> str:
    """The trend table: one metric per row, one committed PR per column."""
    if not history:
        return "no BENCH_PR*.json files found"
    names = _metric_names(history)
    label_width = max(len("metric"), max(len(n) for n in names))
    widths = [max(len(label), 8) for label, _ in history]
    lines = ["perf history (speedup vs reference executor)",
             "  ".join([f"{'metric':<{label_width}}"]
                       + [f"{label:>{width}}"
                          for (label, _), width in zip(history, widths)])]
    for name in names:
        cells = []
        for (_, series), width in zip(history, widths):
            value = series.get(name)
            cell = f"{value:.2f}x" if value is not None else "-"
            cells.append(f"{cell:>{width}}")
        lines.append("  ".join([f"{name:<{label_width}}"] + cells))
    return "\n".join(lines)


def check_history(history: Sequence[Tuple[str, Dict[str, float]]],
                  max_regression: float = DEFAULT_MAX_REGRESSION
                  ) -> List[str]:
    """Failure messages for metrics whose newest point decayed too far.

    Per metric: newest value vs the best value among *earlier* files.
    Metrics the newest file does not carry are skipped (a series can
    end when a measurement is retired), as is everything when fewer
    than two files exist.
    """
    if len(history) < 2:
        return []
    newest_label, newest = history[-1]
    failures = []
    for name in _metric_names(history[:-1]):
        if name not in newest:
            continue
        best_label, best = max(
            ((label, series[name]) for label, series in history[:-1]
             if name in series),
            key=lambda item: item[1])
        floor = best * (1.0 - max_regression)
        if newest[name] < floor:
            failures.append(
                f"{name}: {newest_label} at {newest[name]:.2f}x is more "
                f"than {max_regression:.0%} below the best historical "
                f"point ({best:.2f}x in {best_label})")
    return failures
