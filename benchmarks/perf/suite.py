"""Measurement driver behind ``python -m benchmarks.perf``.

Micro: each :mod:`~benchmarks.perf.workloads` kernel runs on both
executors; throughput is ``metrics.instructions_issued`` over the best
wall-clock of ``repeats`` runs.  Macro: the Figure 8 sweep is replayed
with compilation hoisted out (each arm compiles once, then both
executors simulate the same compiled module), so the compile/simulate
split is measured directly rather than inferred; the sweep compiles
twice against one persistent :class:`~repro.compile_cache.DiskCompileCache`
(cold, then a fresh in-process cache over the same directory) so the
warm-replay speedup is part of the document; plus difftest oracle
throughput in seeds per second per executor.

Every measurement doubles as a parity check — outputs and the full
``Metrics.as_dict()`` are asserted identical across executors before
any number is reported.

This package deliberately reaches below the facade for the macro sweep
(``repro.evaluation.runner``, ``repro.kernels``): splitting compile
from simulate needs the compile entry points the facade does not
export.  Everything else goes through :mod:`repro`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro import MachineConfig, run_kernel

from .workloads import MICRO_BUILDERS, MicroWorkload

EXECUTORS = ("reference", "fast")

#: one machine description per executor under test
MACHINES = {executor: MachineConfig(executor=executor)
            for executor in EXECUTORS}

SCHEMA = "repro.bench/1"


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---- micro ---------------------------------------------------------------


def _run_micro(workload: MicroWorkload, executor: str):
    outputs, metrics = run_kernel(
        workload.module, workload.kernel, workload.grid_dim,
        workload.block_dim, buffers=workload.make_buffers(),
        machine=MACHINES[executor])
    return outputs, metrics


def bench_micro(repeats: int = 3,
                names: Optional[Sequence[str]] = None) -> List[Dict]:
    rows: List[Dict] = []
    for name in (names or MICRO_BUILDERS):
        workload = MICRO_BUILDERS[name]()
        reference: Dict[str, Dict] = {}
        baseline = None
        for executor in EXECUTORS:
            outputs, metrics = _run_micro(workload, executor)
            if baseline is None:
                baseline = (outputs, metrics.as_dict())
            else:
                assert outputs == baseline[0], \
                    f"{name}: executors disagree on outputs"
                assert metrics.as_dict() == baseline[1], \
                    f"{name}: executors disagree on metrics"
            seconds = _time_best(
                lambda e=executor: _run_micro(workload, e), repeats)
            reference[executor] = {
                "seconds": seconds,
                "instructions": metrics.instructions_issued,
                "ops_per_second": metrics.instructions_issued / seconds,
            }
        rows.append({
            "workload": name,
            "opcode_class": workload.opcode_class,
            "executors": reference,
            "speedup": (reference["reference"]["seconds"]
                        / reference["fast"]["seconds"]),
        })
    return rows


# ---- macro: Figure 8 compile/simulate split ------------------------------


def bench_figure8(block_sizes: Optional[Dict[str, List[int]]] = None,
                  repeats: int = 1, cache_dir: Optional[str] = None) -> Dict:
    import tempfile

    from repro import print_module
    from repro.evaluation.experiments import (
        DEFAULT_GRID_DIM, DEFAULT_SEED, REAL_BLOCK_SIZES)
    from repro.evaluation.runner import (
        CompileCache, compile_baseline, compile_cfm, execute)
    from repro.kernels import REAL_WORLD_BUILDERS

    sizes = block_sizes or REAL_BLOCK_SIZES
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = tmp.name

    def compile_all(cache):
        compiled = []  # (label, compiled base case, compiled cfm case)
        start = time.perf_counter()
        for kernel, builder in REAL_WORLD_BUILDERS.items():
            for block_size in sizes[kernel]:
                base = builder(block_size=block_size,
                               grid_dim=DEFAULT_GRID_DIM)
                cfm = builder(block_size=block_size,
                              grid_dim=DEFAULT_GRID_DIM)
                compile_baseline(base, cache=cache)
                compile_cfm(cfm, cache=cache)
                compiled.append((f"{kernel}-{block_size}", base, cfm))
        return compiled, time.perf_counter() - start

    # Cold: empty disk cache, every pipeline runs for real (plus the
    # write-through cost).  Warm: a fresh in-process cache over the same
    # directory — exactly what a new worker process sees — must replay
    # everything from disk and produce bit-identical IR.
    cold_cache = CompileCache(disk=cache_dir)
    cases, compile_seconds = compile_all(cold_cache)
    warm_cache = CompileCache(disk=cache_dir)
    warm_cases, warm_compile_seconds = compile_all(warm_cache)

    def ir_of(compiled):
        return [(label, print_module(base.module), print_module(cfm.module))
                for label, base, cfm in compiled]

    warm_ir_identical = ir_of(warm_cases) == ir_of(cases)
    assert warm_ir_identical, \
        "figure8 sweep: warm cache replay produced different IR"
    assert warm_cache.misses == 0, \
        f"figure8 sweep: warm compile missed {warm_cache.misses} entries"
    if tmp is not None:
        tmp.cleanup()

    executors: Dict[str, Dict] = {}
    fingerprints: Dict[str, List] = {}
    for executor in EXECUTORS:
        rows = []

        def simulate(collect: Optional[List] = None) -> None:
            for label, base, cfm in cases:
                base_run = execute(base, seed=DEFAULT_SEED, check=False,
                                   machine=MACHINES[executor])
                cfm_run = execute(cfm, seed=DEFAULT_SEED, check=False,
                                  machine=MACHINES[executor])
                if collect is not None:
                    collect.append((label,
                                    base_run.outputs, cfm_run.outputs,
                                    base_run.metrics.as_dict(),
                                    cfm_run.metrics.as_dict()))

        simulate(rows)  # warm + collect the parity fingerprint
        seconds = _time_best(simulate, repeats)
        fingerprints[executor] = rows
        executors[executor] = {
            "simulate_seconds": seconds,
            "total_seconds": compile_seconds + seconds,
        }

    metrics_identical = fingerprints["reference"] == fingerprints["fast"]
    assert metrics_identical, \
        "figure8 sweep: executors disagree on outputs or metrics rows"
    fast_simulate = executors["fast"]["simulate_seconds"]
    return {
        "cases": len(cases),
        "compile_seconds": compile_seconds,
        "compile": {
            "cold_seconds": compile_seconds,
            "warm_seconds": warm_compile_seconds,
            "warm_speedup": compile_seconds / warm_compile_seconds,
            "cold_cache": cold_cache.counters(),
            "warm_cache": warm_cache.counters(),
        },
        "executors": executors,
        "simulate_speedup": (executors["reference"]["simulate_seconds"]
                             / executors["fast"]["simulate_seconds"]),
        "end_to_end_speedup": (executors["reference"]["total_seconds"]
                               / executors["fast"]["total_seconds"]),
        # A warm evaluation run (persistent cache + fast executor)
        # against the cold reference pipeline — the Figure 8 re-run cost
        # the persistent cache is meant to kill.
        "end_to_end_speedup_warm": (
            executors["reference"]["total_seconds"]
            / (warm_compile_seconds + fast_simulate)),
        "metrics_identical": metrics_identical,
        "warm_ir_identical": warm_ir_identical,
    }


# ---- macro: difftest throughput ------------------------------------------


def bench_difftest(seeds: Sequence[int] = range(4)) -> Dict:
    from repro.difftest.generator import generate_spec
    from repro.difftest.oracle import run_oracle

    seeds = list(seeds)
    specs = [generate_spec(seed) for seed in seeds]
    executors: Dict[str, Dict] = {}
    for executor in EXECUTORS:
        start = time.perf_counter()
        for spec in specs:
            run_oracle(spec, machine=MACHINES[executor])
        seconds = time.perf_counter() - start
        executors[executor] = {
            "seconds": seconds,
            "seeds_per_second": len(seeds) / seconds,
        }
    return {
        "seeds": len(seeds),
        "executors": executors,
        # Oracle time is compile-dominated (five arms compile per seed),
        # so this ratio hovers near 1; the guard only protects against
        # the fast path being *slower* end to end.
        "speedup": (executors["reference"]["seconds"]
                    / executors["fast"]["seconds"]),
    }


# ---- assembly ------------------------------------------------------------


def run_suite(repeats: int = 3, difftest_seeds: int = 4,
              quick: bool = False,
              cache_dir: Optional[str] = None) -> Dict:
    """Run micro + macro benches and return the BENCH_PR6 document."""
    if quick:
        repeats = min(repeats, 1)
        difftest_seeds = min(difftest_seeds, 2)
    return {
        "schema": SCHEMA,
        "repeats": repeats,
        "micro": bench_micro(repeats=repeats),
        "macro": {
            "figure8": bench_figure8(repeats=repeats, cache_dir=cache_dir),
            "difftest": bench_difftest(seeds=range(difftest_seeds)),
        },
    }
