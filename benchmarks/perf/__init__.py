"""Executor performance benchmark suite (``python -m benchmarks.perf``).

Measures the fast-path µop executor against the reference tree-walking
interpreter and emits ``BENCH_PR6.json``:

* **micro** — per-opcode-class kernels (int ALU, float ALU,
  compare+select, global/shared memory, divergent branches, φ loops)
  reporting executor throughput in instructions issued per second;
* **macro** — the Figure 8 real-benchmark sweep wall-clock split into
  compile vs. simulate seconds per executor (compiled twice against a
  persistent compile cache, so the cold-vs-warm replay speedup is
  measured too), plus difftest oracle seeds per second per executor;
* **guard** — thresholds from ``thresholds.json`` evaluated against the
  measurements (CI fails when the fast path regresses).

Both executors run the same compiled modules, so every micro/macro
measurement doubles as a parity check: metrics are asserted
bit-identical before any timing is reported.
"""

from .guard import GuardFailure, check_thresholds, load_thresholds
from .suite import run_suite

__all__ = ["GuardFailure", "check_thresholds", "load_thresholds", "run_suite"]
