"""Mutation test for the perf guard.

A threshold guard that never fires is worse than none: it green-lights
regressions forever.  So this suite injects a *real* slowdown into the
fast executor's dispatch loop (the ``_TEST_DISPATCH_DELAY`` hook in
:mod:`repro.simt.fastpath`) and asserts the guard trips on the degraded
measurement — plus deterministic unit checks of the comparison logic on
synthetic result documents.
"""

from __future__ import annotations

import pytest

import repro.simt.fastpath as fastpath

from .guard import GuardFailure, check_thresholds, load_thresholds
from .suite import bench_micro


def _micro_results(rows):
    return {"micro": rows}


def test_guard_passes_on_healthy_measurement():
    rows = bench_micro(repeats=1, names=["int_alu"])
    thresholds = {"micro_min_speedup": {"int_alu":
                  load_thresholds()["micro_min_speedup"]["int_alu"]}}
    # Generous slack: this asserts the healthy fast path clears the bar,
    # not that this machine is as fast as the one that set the numbers.
    failures = check_thresholds(_micro_results(rows), thresholds, slack=0.5)
    assert failures == []


def test_guard_trips_on_injected_dispatch_slowdown(monkeypatch):
    # 1ms per executed block ≈ hundreds of ms over the int_alu loop —
    # far below any plausible threshold, without touching semantics.
    monkeypatch.setattr(fastpath, "_TEST_DISPATCH_DELAY", 0.001)
    rows = bench_micro(repeats=1, names=["int_alu"])
    assert rows[0]["speedup"] < 1.0, \
        "delay hook had no effect; is the fast path still using it?"
    failures = check_thresholds(_micro_results(rows), load_thresholds(),
                                slack=0.3)
    assert any(f.startswith("micro:int_alu") for f in failures)


def test_injected_slowdown_does_not_change_results(monkeypatch):
    baseline = bench_micro(repeats=1, names=["phi_loop"])[0]
    monkeypatch.setattr(fastpath, "_TEST_DISPATCH_DELAY", 0.0005)
    slowed = bench_micro(repeats=1, names=["phi_loop"])[0]
    # bench_micro asserts output/metrics parity internally; instruction
    # counts surviving unchanged shows the hook is timing-only.
    assert (slowed["executors"]["fast"]["instructions"]
            == baseline["executors"]["fast"]["instructions"])


def test_check_thresholds_missing_measurement():
    failures = check_thresholds(
        _micro_results([]), {"micro_min_speedup": {"int_alu": 2.0}})
    assert failures == ["micro:int_alu: no measurement in results"]


def test_check_thresholds_macro_guards():
    results = {
        "micro": [],
        "macro": {
            "figure8": {"metrics_identical": False,
                        "simulate_speedup": 1.2},
            "difftest": {"speedup": 0.5},
        },
    }
    thresholds = {"macro": {"figure8_simulate_min_speedup": 3.0,
                            "difftest_min_speedup": 0.8}}
    failures = check_thresholds(results, thresholds)
    assert len(failures) == 3
    assert any("disagree on metrics" in f for f in failures)
    assert any(f.startswith("macro:figure8: simulate") for f in failures)
    assert any(f.startswith("macro:difftest") for f in failures)


def test_check_thresholds_warm_cache_guards():
    figure8 = {"metrics_identical": True, "simulate_speedup": 6.0,
               "warm_ir_identical": False, "end_to_end_speedup_warm": 1.1}
    results = {"micro": [], "macro": {"figure8": figure8}}
    thresholds = {"macro": {"figure8_warm_end_to_end_min_speedup": 3.0}}
    failures = check_thresholds(results, thresholds)
    assert any("warm cache replay changed IR" in f for f in failures)
    assert any("warm end-to-end speedup 1.10x" in f for f in failures)

    figure8.update(warm_ir_identical=True, end_to_end_speedup_warm=7.5)
    assert check_thresholds(results, thresholds) == []


def test_check_thresholds_slack_scales_the_bar():
    results = _micro_results(
        [{"workload": "int_alu", "speedup": 1.9, "executors": {}}])
    thresholds = {"micro_min_speedup": {"int_alu": 2.5}}
    assert check_thresholds(results, thresholds, slack=0.0) != []
    assert check_thresholds(results, thresholds, slack=0.3) == []


def test_guard_failure_formats_every_miss():
    with pytest.raises(GuardFailure) as excinfo:
        raise GuardFailure(["micro:a: slow", "macro:b: slower"])
    assert "2 perf threshold(s) missed" in str(excinfo.value)
    assert "micro:a: slow" in str(excinfo.value)
