"""Figure 8: real-world benchmark speedups over the block-size sweeps.

Paper: 1.15× geomean over all benchmark × block-size variants; the only
(statistically insignificant) slowdown is DCT; BIT and PCM improve the
most; LUD improves only at the block sizes where it is divergent; the
'+'-marked best-baseline block size never regresses under CFM, and
GM-best ≥ GM.
"""

import pytest

from repro import format_figure8, geomean


def test_figure8_regenerates(benchmark, fig8_data):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(format_figure8(fig8_data))

    assert fig8_data.geomean_all > 1.0
    for row in fig8_data.rows:
        assert row.speedup > 0.93, f"{row.label} regressed: {row.speedup:.3f}"


def test_bit_and_pcm_lead(fig8_data):
    best = {}
    for row in fig8_data.rows:
        best[row.kernel] = max(best.get(row.kernel, 0.0), row.speedup)
    # §VI-B: "The highest relative improvement ... bitonic sort and PCM".
    leaders = sorted(best, key=best.get, reverse=True)[:3]
    assert "BIT" in leaders
    assert "PCM" in leaders
    assert best["DCT"] == min(best.values())


def test_lud_divergence_is_block_size_dependent(fig8_data):
    lud = {r.block_size: r.speedup for r in fig8_data.rows if r.kernel == "LUD"}
    divergent = [lud[b] for b in lud if b <= 64]
    convergent = [lud[b] for b in lud if b >= 128]
    assert max(divergent) > 1.1
    assert all(0.97 <= s <= 1.03 for s in convergent)


def test_best_baseline_blocks_never_regress(fig8_data):
    for row in fig8_data.rows:
        if fig8_data.best_baseline_block[row.kernel] == row.block_size:
            assert row.speedup > 0.97, \
                f"{row.kernel}+ block {row.block_size}: {row.speedup:.3f}"
