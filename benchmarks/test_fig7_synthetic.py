"""Figure 7: synthetic benchmark speedups (SB1/2/3 and -R variants).

Paper: CFM gives a 1.32× geomean speedup over the block-size sweep; the
-R variants improve less than their exact counterparts; SB3/SB3-R improve
the most because multiple subgraph pairs meld.

Run with ``pytest benchmarks/test_fig7_synthetic.py --benchmark-only -s``
to see the regenerated figure data.
"""

import pytest

from repro import format_speedups, geomean


def test_figure7_regenerates(benchmark, fig7_data):
    rows, gm = fig7_data
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(format_speedups(rows, "Figure 7: synthetic benchmark speedups"))

    # Shape assertions (see DESIGN.md §4 / EXPERIMENTS.md).
    assert gm > 1.05, "geomean speedup must be clearly positive"
    by_key = {(r.kernel, r.block_size): r.speedup for r in rows}
    blocks = sorted({r.block_size for r in rows})
    for base in ("SB1", "SB2", "SB3"):
        for block in blocks:
            assert by_key[(base, block)] >= by_key[(f"{base}-R", block)] - 1e-9

    best_per_kernel = {}
    for row in rows:
        best_per_kernel[row.kernel] = max(
            best_per_kernel.get(row.kernel, 0.0), row.speedup)
    # SB3 melds multiple pairs and improves the most among exact variants.
    assert best_per_kernel["SB3"] >= best_per_kernel["SB1"] - 1e-9
    assert best_per_kernel["SB3"] >= best_per_kernel["SB2"] - 1e-9


def test_figure7_no_slowdowns(fig7_data):
    rows, _ = fig7_data
    for row in rows:
        assert row.speedup > 0.95, f"{row.label} regressed: {row.speedup:.3f}"
