"""Table I: which technique melds which control-flow pattern.

Paper's matrix:

| pattern                                  | tail merging | branch fusion | CFM |
|------------------------------------------|:---:|:---:|:---:|
| diamond, identical instruction sequences |  ✓  |  ✓  |  ✓  |
| diamond, distinct instruction sequences  |  ✗  |  ✓  |  ✓  |
| complex control flow                     |  ✗  |  ✗  |  ✓  |
"""

import pytest

from repro import format_table1, table1


@pytest.fixture(scope="module")
def rows():
    return table1()


def test_table1_regenerates(benchmark, rows):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(format_table1(rows))


def test_matrix_matches_paper(rows):
    expected = {
        ("diamond-identical", "tail-merging"): True,
        ("diamond-identical", "branch-fusion"): True,
        ("diamond-identical", "cfm"): True,
        ("diamond-distinct", "tail-merging"): False,
        ("diamond-distinct", "branch-fusion"): True,
        ("diamond-distinct", "cfm"): True,
        ("complex", "tail-merging"): False,
        ("complex", "branch-fusion"): False,
        ("complex", "cfm"): True,
    }
    actual = {(r.pattern, r.technique): r.melds for r in rows}
    assert actual == expected


def test_every_transform_is_sound(rows):
    for row in rows:
        assert row.outputs_correct, f"{row.pattern}/{row.technique} miscompiled"
