"""The public facade: :func:`compile`, :func:`launch`, :func:`meld`.

Everything an external user (or an internal client like the differential
tester, the examples and the benchmark suite) needs is reachable from
``import repro`` — no deep imports into ``repro.ir`` / ``repro.core`` /
``repro.simt`` internals required::

    import repro

    k = repro.KernelBuilder("scale", params=[("data", repro.GLOBAL_I32_PTR)])
    ...build the kernel...
    report = repro.compile(k, level="O3", cfm=True)
    result = repro.launch(k.module, grid=1, block=32, args={"data": values})

Each facade entry point accepts any "kernel-like" object — a raw
:class:`~repro.ir.Function`, a :class:`~repro.kernels.KernelBuilder`, or
a :class:`~repro.kernels.KernelCase` — and transforms the underlying IR
in place, mirroring how a real driver owns the module it compiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis import DivergenceInfo, cached_divergence
from repro.compile_cache import CompileCache, cfm_pipeline_id
from repro.core import CFMConfig, CFMPass, CFMStats
from repro.ir import Function, Module, Type, I32, print_module, verify_function
from repro.kernels.common import KernelCase
from repro.kernels.dsl import KernelBuilder
from repro.obs import current_tracer, emit_pass_timing
from repro.simt import (
    DEFAULT_CONFIG,
    GPU,
    Buffer,
    MachineConfig,
    Metrics,
    lower_symbolic,
    resolve_machine,
)
from repro.transforms import PassTiming, late_pipeline, optimize

KernelLike = Union[Function, KernelBuilder, KernelCase]

#: recognized ``compile(level=...)`` values
COMPILE_LEVELS = ("none", "O3")


def _as_function(kernel: KernelLike) -> Function:
    if isinstance(kernel, Function):
        return kernel
    if isinstance(kernel, (KernelBuilder, KernelCase)):
        return kernel.function
    raise TypeError(
        f"expected a Function, KernelBuilder or KernelCase, got {kernel!r}")


def _as_module(module: Union[Module, KernelLike]) -> Module:
    if isinstance(module, Module):
        return module
    if isinstance(module, (KernelBuilder, KernelCase)):
        return module.module
    if isinstance(module, Function):
        if module.module is None:
            raise ValueError(f"function @{module.name} belongs to no module")
        return module.module
    raise TypeError(f"expected a Module or kernel-like object, got {module!r}")


@dataclass
class CompileReport:
    """Outcome of one :func:`compile` call."""

    function: Function
    level: str
    #: melding statistics when ``cfm`` was requested, else None
    cfm_stats: Optional[CFMStats] = None
    seconds: float = 0.0
    #: per-pass executions, in order (O3 fixpoint, then CFM + late cleanups)
    pass_timings: List[PassTiming] = field(default_factory=list)
    #: the whole result was replayed from a compile cache; ``seconds``
    #: and ``pass_timings`` report the original run that produced it
    cached: bool = False

    @property
    def melds(self) -> int:
        return len(self.cfm_stats.melds) if self.cfm_stats else 0


def compile(kernel: KernelLike, level: str = "O3",
            cfm: Union[bool, CFMConfig] = False,
            verify: bool = True,
            cache: Optional[CompileCache] = None,
            machine: Optional[MachineConfig] = None) -> CompileReport:
    """Compile ``kernel`` in place and return a :class:`CompileReport`.

    ``level="O3"`` runs the baseline pipeline (the paper's HIPCC ``-O3``
    stand-in) to a fixpoint; ``level="none"`` leaves the IR untouched.
    ``cfm=True`` (or a :class:`CFMConfig` for tuned melding) then inserts
    the CFM pass plus the §V-A late cleanups — exactly the evaluation
    harness's ``-O3 + CFM`` arm.

    With a :class:`~repro.compile_cache.CompileCache` the whole pipeline
    result is keyed on the kernel's printed IR: a hit swaps an
    independently parsed optimized module into the builder/case (the
    report's ``cached`` flag is set and ``seconds`` replays the original
    run's cost), and the lowered µop program for ``machine`` (default:
    the default machine) is pre-seeded so the first launch skips
    lowering too.  Raw
    :class:`~repro.ir.Function` inputs are compiled normally — the
    in-place contract leaves nothing to swap.
    """
    if level not in COMPILE_LEVELS:
        raise ValueError(
            f"unknown level {level!r}; expected one of {COMPILE_LEVELS}")
    function = _as_function(kernel)
    machine = machine if machine is not None else DEFAULT_CONFIG

    config = cfm if isinstance(cfm, CFMConfig) else None
    cacheable = (cache is not None and level == "O3"
                 and isinstance(kernel, (KernelBuilder, KernelCase))
                 and function.module is not None)
    key = None
    if cacheable:
        pipeline_id = cfm_pipeline_id(config) if cfm else "o3"
        key = CompileCache.key(pipeline_id, print_module(function.module))
        hit = cache.lookup(key, machine=machine)
        if hit is not None:
            kernel.module = hit.module
            replayed = hit.module.functions[function.name]
            if isinstance(kernel, KernelBuilder):
                kernel.function = replayed
            return CompileReport(
                function=replayed, level=level, cfm_stats=hit.cfm_stats,
                seconds=hit.seconds + hit.cfm_seconds,
                pass_timings=hit.timings, cached=True)

    timings: List[PassTiming] = []
    stats: Optional[CFMStats] = None
    tracer = current_tracer()

    start = time.perf_counter()
    with tracer.span(f"compile:{function.name}", cat="compile") as span:
        if level == "O3":
            pipeline = optimize(function)
            timings.extend(pipeline.timings)
        if cfm:
            cfm_pass = CFMPass(config)
            stats = cfm_pass.run(function).stats
            timing = PassTiming(cfm_pass.name, stats.seconds, stats.changed)
            timings.append(timing)
            if tracer.enabled:
                emit_pass_timing(timing, tracer)
            late = late_pipeline()
            late.run(function)
            timings.extend(late.timings)
        span.set(level=level, cfm=bool(cfm),
                 melds=len(stats.melds) if stats else 0)
    seconds = time.perf_counter() - start

    if verify:
        verify_function(function)
    if cacheable:
        program = lower_symbolic(function, machine.latency)
        cache.store(key, function.module, seconds, timings,
                    program=program, machine=machine,
                    cfm_stats=stats)
    return CompileReport(function=function, level=level, cfm_stats=stats,
                         seconds=seconds, pass_timings=timings)


@dataclass
class LaunchResult:
    """Outcome of one :func:`launch`: final buffer contents + counters."""

    outputs: Dict[str, List[int]]
    metrics: Metrics


def launch(module: Union[Module, KernelLike], grid: int, block: int,
           args: Mapping[str, object],
           kernel: Optional[str] = None,
           machine: Optional[MachineConfig] = None,
           element_types: Optional[Mapping[str, Type]] = None,
           gpu: Optional[GPU] = None,
           trace_label: Optional[str] = None,
           executor: Optional[str] = None) -> LaunchResult:
    """Launch a kernel over ``grid`` blocks of ``block`` threads.

    ``args`` maps parameter names to scalars (Python ints/floats) or
    buffer contents (any non-string sequence; copied to device memory and
    read back into :attr:`LaunchResult.outputs`).  ``kernel`` defaults to
    the module's only function.  Pass an existing :class:`GPU` (see
    ``GPU.reset``) to reuse one machine across many launches.

    ``machine`` (a :class:`MachineConfig`) is the whole machine
    description — executor, reconvergence policy, latency model.  An
    existing ``gpu`` already carries its machine, so combining ``gpu=``
    with ``machine=`` (or with any kwarg that duplicates a
    ``MachineConfig`` field, like the deprecated ``executor=``) is
    rejected as ambiguous.

    Under ``repro.trace(...)`` the launch records per-warp divergence
    events on its own trace process, named ``trace_label`` (default
    ``launch:<kernel>``).
    """
    module = _as_module(module)
    if gpu is not None:
        for name, value in (("machine", machine), ("executor", executor)):
            if value is not None:
                raise ValueError(
                    f"launch(gpu=..., {name}=...) is ambiguous: the GPU "
                    f"already carries its machine, which wins; construct "
                    f"it as GPU(module, machine) instead")
    if kernel is None:
        names = list(module.functions)
        if len(names) != 1:
            raise ValueError(
                f"module has {len(names)} kernels ({', '.join(names)}); "
                f"pass kernel=<name>")
        kernel = names[0]

    device = gpu if gpu is not None else GPU(
        module, resolve_machine(machine, executor=executor, where="launch"))
    bound: Dict[str, object] = {}
    handles: Dict[str, Buffer] = {}
    for name, value in args.items():
        if isinstance(value, Buffer):
            bound[name] = value
        elif isinstance(value, (str, bytes)):
            raise TypeError(f"argument {name!r} must be a scalar or sequence")
        elif isinstance(value, Sequence):
            etype = (element_types or {}).get(name, I32)
            handles[name] = device.alloc(name, etype, list(value))
            bound[name] = handles[name]
        else:
            bound[name] = value
    metrics = device.launch(kernel, grid, block, bound,
                            trace_label=trace_label)
    outputs = {name: handle.data for name, handle in handles.items()}
    return LaunchResult(outputs=outputs, metrics=metrics)


def meld(kernel: KernelLike, config: Optional[CFMConfig] = None) -> CFMStats:
    """Run the paper's CFM pass (alone, no -O3 / late cleanups) on
    ``kernel`` in place and return its :class:`CFMStats`."""
    return CFMPass(config).run(_as_function(kernel)).stats


def analyze(kernel: KernelLike) -> DivergenceInfo:
    """Divergence analysis of ``kernel`` (§II-B), memoized per function.

    The same per-function memo backs the CFM pass and the lint rules, so
    ``repro.analyze(k)`` right after ``repro.compile`` / ``repro.lint``
    reuses their fixpoint instead of re-running it (and vice versa).
    The memo is invalidated whenever a pipeline pass changes the IR.
    """
    return cached_divergence(_as_function(kernel))
