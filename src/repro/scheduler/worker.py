"""Worker-process side of the generic task scheduler.

A worker is a *persistent* process: it is forked once, then serves many
tasks over a duplex pipe until the parent stops it, its recycle policy
trips, or it dies.  Contrast with the pre-refactor ParallelRunner, which
paid a full process spawn per task — the scheduler amortizes process
startup, interpreter warm-up and module imports across tasks, at the
price of *in-process state now outliving a task*.  Two consequences:

* **recycling** — after ``RecyclePolicy.max_tasks`` tasks or once the
  process RSS exceeds ``RecyclePolicy.max_rss_bytes``, the worker
  retires itself (flushing its worker-lifetime metrics snapshot in the
  goodbye message) and the parent forks a fresh replacement, so slow
  memory growth can never accumulate unboundedly;
* **quarantine** — a task that raises may have left process-global
  caches half-written (most sharply the launch-time lowering memo,
  whose fingerprints are keyed on object *identities* and therefore
  cannot detect a poisoned entry).  After any task failure the worker
  clears those memos before accepting the next task, so a crashing task
  cannot poison a later task's — or a retry's — cache state
  (``tests/scheduler/test_chaos.py::TestMemoQuarantine``).

Fault injection: ``_TEST_WORKER_CHAOS`` (mirroring
``repro.simt.fastpath._TEST_DISPATCH_DELAY``) maps a scheduler task
index to a chaos mode applied on that task's **first attempt only**, so
the retry path being exercised can actually succeed:

* ``"exit"``          — hard-kill the worker before running the task;
* ``"exit-after"``    — run the task (side effects like disk compile
  cache writes land), then die before reporting;
* ``"raise"``         — fail the task with an in-band Python exception;
* ``"hang"``          — sleep far past any sane timeout;
* ``"corrupt"``       — run the task, then report a malformed message.

Never set outside tests (the CLI exposes it as the ``--chaos`` flag for
the CI ``serve-smoke`` job's kill-a-worker-mid-run step).
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Optional

#: task index -> chaos mode, consulted on attempt 1 only.  Forked
#: workers inherit the parent's value, so tests set it before the
#: scheduler starts.
_TEST_WORKER_CHAOS: Dict[int, str] = {}

CHAOS_MODES = ("exit", "exit-after", "raise", "hang", "corrupt")

#: exit code for chaos-killed workers (distinguishable in error text)
_CHAOS_EXIT_CODE = 13


@dataclass(frozen=True)
class TaskContext:
    """What a task callable learns about its own execution."""

    index: int
    attempt: int
    worker: int


def rss_bytes() -> Optional[int]:
    """Resident set size of this process, or None where unknowable.

    Stdlib-only: reads ``/proc/self/statm`` (Linux).  On platforms
    without procfs, RSS-based recycling silently disables itself —
    ``max_tasks`` recycling still works everywhere.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return pages * (os.sysconf("SC_PAGESIZE") if hasattr(os, "sysconf")
                    else 4096)


def _quarantine() -> None:
    """Reset process-global caches after a failed task.

    The lowering memo's fingerprints are identity-keyed, so a poisoned
    entry (planted by a task that crashed mid-lowering) is
    indistinguishable from a valid one — drop everything and re-lower.
    Import is local so the scheduler stays usable for tasks that never
    touch the simulator.
    """
    try:
        from repro.simt import clear_lowering_memo
    except ImportError:  # pragma: no cover - simt always present here
        return
    clear_lowering_memo()


def _maybe_chaos_before(index: int, attempt: int) -> None:
    if attempt != 1:
        return
    mode = _TEST_WORKER_CHAOS.get(index)
    if mode == "exit":
        os._exit(_CHAOS_EXIT_CODE)
    elif mode == "raise":
        raise RuntimeError(f"chaos: injected worker exception (task {index})")
    elif mode == "hang":
        time.sleep(3600)


def worker_main(worker_id: int, slot: int, conn, max_tasks: Optional[int],
                max_rss_bytes: Optional[int]) -> None:
    """Serve tasks from ``conn`` until stopped, recycled, or killed.

    Messages in: ``("task", index, attempt, fn, payload, metrics)`` and
    ``("stop",)``.  Messages out: ``("result", index, attempt, ok,
    value, error, seconds, metrics_delta, retiring)`` after each task —
    ``retiring`` rides on the result so the parent never dispatches to a
    worker that is about to leave — then ``("retire", snapshot)`` when
    the recycle policy trips, or ``("goodbye", snapshot)`` in answer to
    a stop; both carry the worker-lifetime metrics snapshot so recycling
    never loses telemetry.
    """
    from repro.obs import MetricsRegistry, use_registry

    lifetime = MetricsRegistry()
    tasks_total = lifetime.counter(
        "repro_sched_worker_tasks_total",
        "Tasks served, by worker slot and outcome")
    rss_gauge = lifetime.gauge(
        "repro_sched_worker_rss_bytes",
        "Resident set size sampled after each task, by worker slot")
    served = 0

    def goodbye(kind: str) -> None:
        try:
            conn.send((kind, lifetime.snapshot()))
        except (BrokenPipeError, OSError):  # parent already gone
            pass
        finally:
            conn.close()

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died; nothing left to serve
            return
        if message[0] == "stop":
            goodbye("goodbye")
            return
        _, index, attempt, fn, payload, metrics = message
        start = time.perf_counter()
        ok, value, error, delta = True, None, None, None
        registry = MetricsRegistry() if metrics else None
        try:
            _maybe_chaos_before(index, attempt)
            ctx = TaskContext(index=index, attempt=attempt, worker=worker_id)
            if registry is not None:
                with use_registry(registry):
                    value = fn(payload, ctx)
            else:
                value = fn(payload, ctx)
        except BaseException as exc:  # noqa: BLE001 — report, never die silently
            ok, value = False, None
            error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            # A task that annotated its own partial snapshot (see
            # run_task) wins; otherwise whatever this registry caught.
            delta = getattr(exc, "_metrics_delta", None)
            if delta is None and registry is not None:
                delta = registry.snapshot()
            _quarantine()
        if ok and registry is not None:
            delta = registry.snapshot()
        seconds = time.perf_counter() - start
        served += 1
        tasks_total.labels(slot=str(slot),
                           outcome="ok" if ok else "error").inc()
        rss = rss_bytes()
        if rss is not None:
            rss_gauge.labels(slot=str(slot)).set(rss)

        retiring = (max_tasks is not None and served >= max_tasks) or (
            max_rss_bytes is not None and rss is not None
            and rss >= max_rss_bytes)

        mode = _TEST_WORKER_CHAOS.get(index) if attempt == 1 else None
        if mode == "exit-after":
            os._exit(_CHAOS_EXIT_CODE)
        try:
            if mode == "corrupt":
                conn.send(("result", index))  # malformed on purpose
                retiring = False  # stay alive so the retry has a worker
            else:
                conn.send(("result", index, attempt, ok, value, error,
                           seconds, delta, retiring))
        except (BrokenPipeError, OSError):
            return
        except Exception:  # unpicklable task value: report the failure
            try:
                conn.send(("result", index, attempt, False, None,
                           "TypeError: task returned an unpicklable value\n",
                           seconds, delta, retiring))
            except (BrokenPipeError, OSError):
                return

        if retiring:
            goodbye("retire")
            return
