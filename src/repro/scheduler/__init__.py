"""``repro.scheduler`` — generic persistent-worker task scheduling.

The reusable process-pool layer extracted from the evaluation harness:
:class:`Scheduler` runs picklable ``fn(payload, ctx)`` tasks over
long-lived forked workers with deterministic result ordering, per-attempt
timeouts, crash-retry, and policy-driven worker recycling
(:class:`RecyclePolicy`).  Job-specific layers sit on top:
:class:`repro.evaluation.ParallelRunner` adapts figure-sweep tasks, and
:mod:`repro.serve` multiplexes whole job streams from network clients.

Test hooks: ``repro.scheduler.worker._TEST_WORKER_CHAOS`` injects
crashes, hangs and corrupt payloads by task index (see that module's
docstring); it is surfaced as ``python -m repro.serve serve --chaos``
for the CI kill-a-worker smoke test.
"""

from .core import (
    DEFAULT_RETRIES,
    NO_RECYCLE,
    RecyclePolicy,
    Scheduler,
    SchedulerClosed,
    Task,
    TaskOutcome,
)
from .worker import CHAOS_MODES, TaskContext, rss_bytes

__all__ = [
    "CHAOS_MODES",
    "DEFAULT_RETRIES",
    "NO_RECYCLE",
    "RecyclePolicy",
    "Scheduler",
    "SchedulerClosed",
    "Task",
    "TaskContext",
    "TaskOutcome",
    "rss_bytes",
]
