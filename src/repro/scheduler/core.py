"""Parent-side generic task scheduler over a persistent worker pool.

This is the reusable half of what ``evaluation/parallel.py`` used to do
monolithically: a :class:`Scheduler` owns N long-lived worker processes
(forked once, serving many tasks each) and a dispatcher thread, and runs
arbitrary :class:`Task` callables with

* **deterministic ordering** — :meth:`Scheduler.run` returns outcomes in
  submission order regardless of completion order;
* **per-attempt timeout** — a task past its wall-clock budget has its
  worker terminated and is retried in a replacement;
* **crash recovery** — a worker that dies mid-task (or reports a corrupt
  payload) is respawned and the task retried, up to ``retries`` extra
  attempts;
* **graceful recycling** — workers self-retire per
  :class:`RecyclePolicy` (after N tasks or M bytes RSS), flushing their
  lifetime metrics snapshot, and the pool replaces them transparently.

Task callables must be **module-level functions** (they cross a pickle
boundary) with signature ``fn(payload, ctx) -> value``; ``ctx`` is a
:class:`~repro.scheduler.worker.TaskContext` carrying the task's index,
attempt number and worker id.  Values and payloads must pickle.

``workers=0`` is **inline mode**: tasks execute synchronously in the
calling process (the serial reference path the determinism tests compare
against).  Inline failures report ``"Type: message"`` without a
traceback — matching the historical serial ParallelRunner contract —
while worker failures append the remote traceback.

The scheduler keeps its own self-telemetry in :attr:`Scheduler.registry`
(``repro_sched_*`` families, deliberately namespaced apart from the
``repro_eval_*`` counters so serial-vs-parallel snapshot identity over
evaluation metrics is unaffected); retired and stopped workers' lifetime
snapshots are folded in as they leave, so recycling never loses
telemetry.  Job-layer consumers live above this: see
:class:`repro.evaluation.ParallelRunner` for sweeps and
:mod:`repro.serve` for the long-running job service.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.obs import MetricsRegistry, use_registry

from .worker import TaskContext, _quarantine, worker_main

#: crashed / timed-out / corrupt task attempts are retried this many times
DEFAULT_RETRIES = 1

#: how long a graceful stop waits for each worker's goodbye snapshot
_STOP_GRACE_SECONDS = 5.0

OutcomeCallback = Callable[["TaskOutcome"], None]


class SchedulerClosed(RuntimeError):
    """Raised by :meth:`Scheduler.submit` after :meth:`Scheduler.close`."""


@dataclass(frozen=True)
class RecyclePolicy:
    """When a worker should retire in favor of a fresh process.

    ``max_tasks`` counts tasks served; ``max_rss_bytes`` is checked
    against ``/proc/self/statm`` after each task (no-op on platforms
    without procfs).  ``None`` disables that trigger; the default
    disables both.
    """

    max_tasks: Optional[int] = None
    max_rss_bytes: Optional[int] = None


NO_RECYCLE = RecyclePolicy()


@dataclass(frozen=True)
class Task:
    """One unit of work: a picklable module-level callable + payload."""

    fn: Callable[[Any, TaskContext], Any]
    payload: Any = None
    #: run under a fresh repro.obs.MetricsRegistry; its snapshot rides
    #: back on TaskOutcome.metrics_delta (partial on failure)
    metrics: bool = False


@dataclass
class TaskOutcome:
    """Terminal result of one task, after any retries."""

    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    #: the task's process raised or died instead of reporting cleanly
    crashed: bool = False
    #: the final attempt was terminated at the wall-clock timeout
    timed_out: bool = False
    #: id of the worker that produced the terminal attempt (-1 if none)
    worker: int = -1
    #: metrics snapshot from the task's registry (see Task.metrics), or
    #: whatever the task attached to its exception (``_metrics_delta``)
    metrics_delta: Optional[Dict[str, object]] = None


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass
class _Busy:
    index: int
    task: Task
    attempt: int
    callback: Optional[OutcomeCallback]
    started: float  # monotonic


@dataclass
class _WorkerHandle:
    process: Any
    conn: Any
    slot: int
    id: int
    busy: Optional[_Busy] = None
    retiring: bool = False


class Scheduler:
    """Run :class:`Task` objects over a pool of persistent workers.

    ``timeout`` is per task *attempt*, in seconds; ``None`` disables it.
    Inline mode (``workers=0``) cannot preempt a running task, so the
    timeout is advisory there — exactly as in the old serial runner.
    Usable as a context manager (graceful close on exit).
    """

    def __init__(self, workers: int = 1, timeout: Optional[float] = None,
                 retries: int = DEFAULT_RETRIES,
                 recycle: RecyclePolicy = NO_RECYCLE) -> None:
        self.workers = max(0, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.recycle = recycle
        #: scheduler self-telemetry + folded worker-lifetime snapshots
        self.registry = MetricsRegistry()
        #: concurrency-slot id -> busy seconds (rebuilt per run())
        self.slot_busy: Dict[int, float] = {}
        self._ctx = _mp_context()
        self._lock = threading.Lock()
        self._idle_cv = threading.Condition(self._lock)
        self._pending: Deque = deque()  # (index, Task, attempt, callback)
        self._live: List[_WorkerHandle] = []
        self._thread: Optional[threading.Thread] = None
        self._wake_r: Optional[int] = None
        self._wake_w: Optional[int] = None
        self._next_index = 0
        self._next_worker_id = 0
        self._inflight = 0
        self._started = False
        self._closing = False
        self._abort = False

    # ---- lifecycle --------------------------------------------------------

    def start(self) -> "Scheduler":
        if self._started:
            return self
        self._started = True
        if self.workers == 0:
            return self
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_w, False)
        for slot in range(self.workers):
            self._spawn(slot)
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-scheduler", daemon=True)
        self._thread.start()
        return self

    def close(self, graceful: bool = True) -> None:
        """Stop the pool.

        Graceful: finish every queued and in-flight task, collect each
        worker's goodbye metrics snapshot, then join.  Non-graceful:
        terminate workers immediately; queued and in-flight tasks settle
        as failures (``error="cancelled: scheduler shut down"``).
        """
        with self._lock:
            if not self._started or self._closing:
                self._closing = True
                return
            self._closing = True
            self._abort = not graceful
        if self.workers == 0:
            return
        self._wake()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close(graceful=exc_info[0] is None)

    # ---- submission -------------------------------------------------------

    def submit(self, fn: Callable[[Any, TaskContext], Any],
               payload: Any = None, metrics: bool = False,
               on_outcome: Optional[OutcomeCallback] = None) -> int:
        """Queue one task; returns its scheduler-wide index.

        ``on_outcome`` fires exactly once with the terminal
        :class:`TaskOutcome` — from the dispatcher thread in pool mode,
        synchronously before ``submit`` returns in inline mode.
        """
        if not self._started:
            raise RuntimeError("Scheduler.submit before start()")
        task = fn if isinstance(fn, Task) else Task(fn, payload, metrics)
        with self._lock:
            if self._closing:
                raise SchedulerClosed("scheduler is shutting down")
            index = self._next_index
            self._next_index += 1
            self._inflight += 1
            if self.workers > 0:
                self._pending.append((index, task, 1, on_outcome))
        if self.workers == 0:
            self._run_inline(index, task, on_outcome)
        else:
            self._wake()
        return index

    def drain(self) -> None:
        """Block until every submitted task has settled."""
        with self._idle_cv:
            while self._inflight:
                self._idle_cv.wait()

    def run(self, tasks: Sequence[Task],
            on_outcome: Optional[OutcomeCallback] = None
            ) -> List[TaskOutcome]:
        """Submit a batch and return outcomes in submission order.

        ``on_outcome`` additionally fires per terminal outcome in
        completion order (progress reporting).
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if not self._started:
            self.start()
        outcomes: Dict[int, TaskOutcome] = {}
        done = threading.Event()
        lock = threading.Lock()

        def collect(outcome: TaskOutcome) -> None:
            with lock:
                outcomes[outcome.index] = outcome
                finished = len(outcomes) == len(tasks)
            if on_outcome is not None:
                on_outcome(outcome)
            if finished:
                done.set()

        indices = [self.submit(task, on_outcome=collect) for task in tasks]
        done.wait()
        return [outcomes[index] for index in indices]

    # ---- telemetry --------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """The scheduler's ``repro_sched_*`` registry, as a snapshot."""
        return self.registry.snapshot()

    def _count(self, name: str, help: str, amount: int = 1) -> None:
        self.registry.counter(name, help).inc(amount)

    def _settled(self, outcome: TaskOutcome,
                 callback: Optional[OutcomeCallback]) -> None:
        if outcome.ok:
            self._count("repro_sched_tasks_completed_total",
                        "Tasks that settled successfully")
        else:
            self._count("repro_sched_tasks_failed_total",
                        "Tasks that failed after exhausting retries")
        if outcome.attempts > 1:
            self._count("repro_sched_tasks_retried_total",
                        "Extra attempts beyond each task's first",
                        outcome.attempts - 1)
        if outcome.timed_out:
            self._count("repro_sched_tasks_timed_out_total",
                        "Task attempts terminated at the wall-clock timeout")
        if outcome.crashed:
            self._count("repro_sched_tasks_crashed_total",
                        "Tasks whose worker raised or died mid-flight")
        if callback is not None:
            callback(outcome)
        with self._idle_cv:
            self._inflight -= 1
            self._idle_cv.notify_all()

    # ---- inline mode ------------------------------------------------------

    def _run_inline(self, index: int, task: Task,
                    callback: Optional[OutcomeCallback]) -> None:
        attempt = 1
        while True:
            start = time.perf_counter()
            registry = MetricsRegistry() if task.metrics else None
            ctx = TaskContext(index=index, attempt=attempt, worker=0)
            try:
                if registry is not None:
                    with use_registry(registry):
                        value = task.fn(task.payload, ctx)
                else:
                    value = task.fn(task.payload, ctx)
                outcome = TaskOutcome(
                    index=index, ok=True, value=value, attempts=attempt,
                    seconds=time.perf_counter() - start, worker=0,
                    metrics_delta=(registry.snapshot()
                                   if registry is not None else None))
                break
            except Exception as exc:  # noqa: BLE001
                _quarantine()
                if attempt > self.retries:
                    delta = getattr(exc, "_metrics_delta", None)
                    if delta is None and registry is not None:
                        delta = registry.snapshot()
                    outcome = TaskOutcome(
                        index=index, ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt,
                        seconds=time.perf_counter() - start,
                        crashed=True, worker=0, metrics_delta=delta)
                    break
                attempt += 1
        self.slot_busy[0] = self.slot_busy.get(0, 0.0) + outcome.seconds
        self._settled(outcome, callback)

    # ---- pool internals (dispatcher thread unless noted) ------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except (BlockingIOError, OSError):
            pass  # dispatcher already has a wake-up pending

    def _spawn(self, slot: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, slot, child_conn, self.recycle.max_tasks,
                  self.recycle.max_rss_bytes),
            daemon=True)
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process=process, conn=parent_conn,
                               slot=slot, id=worker_id)
        self._live.append(handle)
        self.registry.gauge("repro_sched_workers_alive",
                            "Worker processes currently in the pool"
                            ).set(len(self._live))
        return handle

    def _reap(self, handle: _WorkerHandle, respawn: bool) -> None:
        """Remove a dead/dying worker; optionally refill its slot."""
        if handle in self._live:
            self._live.remove(handle)
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join()
        self.registry.gauge("repro_sched_workers_alive",
                            "Worker processes currently in the pool"
                            ).set(len(self._live))
        if respawn:
            self._count("repro_sched_workers_respawned_total",
                        "Replacement workers forked into the pool")
            self._spawn(handle.slot)

    def _release_slot(self, handle: _WorkerHandle) -> None:
        busy = handle.busy
        handle.busy = None
        if busy is not None:
            self.slot_busy[handle.slot] = (
                self.slot_busy.get(handle.slot, 0.0)
                + time.monotonic() - busy.started)

    def _fail_or_retry(self, busy: _Busy, error: str, worker_id: int,
                       crashed: bool = False, timed_out: bool = False,
                       seconds: Optional[float] = None,
                       metrics_delta: Optional[Dict[str, object]] = None
                       ) -> None:
        if busy.attempt <= self.retries:
            with self._lock:
                self._pending.appendleft(
                    (busy.index, busy.task, busy.attempt + 1, busy.callback))
            return
        self._settled(TaskOutcome(
            index=busy.index, ok=False, error=error, attempts=busy.attempt,
            seconds=(seconds if seconds is not None
                     else time.monotonic() - busy.started),
            crashed=crashed, timed_out=timed_out, worker=worker_id,
            metrics_delta=metrics_delta), busy.callback)

    def _dispatch(self) -> None:
        while True:
            idle = next((w for w in self._live
                         if w.busy is None and not w.retiring), None)
            if idle is None:
                break
            with self._lock:
                if not self._pending or self._abort:
                    break
                index, task, attempt, callback = self._pending.popleft()
            idle.busy = _Busy(index=index, task=task, attempt=attempt,
                              callback=callback, started=time.monotonic())
            try:
                idle.conn.send(("task", index, attempt, task.fn,
                                task.payload, task.metrics))
            except (BrokenPipeError, OSError):
                # Worker died while idle; put the task back untouched
                # (same attempt — the task never ran) and refill the slot.
                busy, idle.busy = idle.busy, None
                with self._lock:
                    self._pending.appendleft(
                        (busy.index, busy.task, busy.attempt, busy.callback))
                self._reap(idle, respawn=True)
        with self._lock:
            depth = len(self._pending)
        self.registry.gauge("repro_sched_queue_depth",
                            "Tasks admitted but not yet dispatched"
                            ).set(depth)

    def _on_retire(self, handle: _WorkerHandle, respawn: bool) -> None:
        """Collect the retire/goodbye snapshot from a leaving worker."""
        try:
            message = handle.conn.recv()
            if message[0] in ("retire", "goodbye"):
                self.registry.merge(message[1])
        except (EOFError, OSError, IndexError):
            pass
        self._count("repro_sched_workers_recycled_total",
                    "Workers that self-retired per the recycle policy")
        self._reap(handle, respawn=respawn)

    def _on_message(self, handle: _WorkerHandle) -> None:
        try:
            message = handle.conn.recv()
        except (EOFError, OSError):
            busy = handle.busy
            self._release_slot(handle)
            handle.process.join()
            exitcode = handle.process.exitcode
            with self._lock:
                keep_pool = not self._closing or bool(self._pending) \
                    or busy is not None
            self._reap(handle, respawn=keep_pool)
            if busy is not None:
                self._fail_or_retry(
                    busy,
                    "worker process died without reporting "
                    f"(exit code {exitcode})",
                    handle.id, crashed=True)
            return
        kind = message[0]
        if kind in ("retire", "goodbye"):  # death while idle (rare path)
            if len(message) > 1:
                self.registry.merge(message[1])
            self._reap(handle, respawn=not self._closing)
            return
        busy = handle.busy
        self._release_slot(handle)
        if busy is None:
            return  # stray message from a worker we already timed out
        if len(message) != 9:
            # Satellite-1 "corrupt" chaos mode lands here: the payload
            # is unusable but the worker's message framing is intact,
            # so keep the worker and retry the task.
            self._fail_or_retry(
                busy, "worker returned a corrupt payload", handle.id,
                crashed=True)
            return
        (_, index, attempt, ok, value, error, seconds, delta,
         retiring) = message
        if retiring:
            handle.retiring = True
        if ok:
            self._settled(TaskOutcome(
                index=index, ok=True, value=value, attempts=attempt,
                seconds=seconds, worker=handle.id, metrics_delta=delta),
                busy.callback)
        else:
            self._fail_or_retry(busy, error, handle.id, crashed=True,
                                seconds=seconds, metrics_delta=delta)
        if retiring:
            with self._lock:
                keep_pool = not self._closing or bool(self._pending)
            self._on_retire(handle, respawn=keep_pool)

    def _check_timeouts(self) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for handle in list(self._live):
            busy = handle.busy
            if busy is None or now - busy.started <= self.timeout:
                continue
            handle.process.terminate()
            self._release_slot(handle)
            with self._lock:
                keep_pool = not self._closing or bool(self._pending) \
                    or busy.attempt <= self.retries
            self._reap(handle, respawn=keep_pool)
            self._fail_or_retry(busy, f"timed out after {self.timeout:g}s",
                                handle.id, timed_out=True,
                                seconds=now - busy.started)

    def _loop(self) -> None:
        while True:
            with self._lock:
                abort = self._abort
            if abort:
                self._abort_all()
                return
            self._dispatch()
            with self._lock:
                closing = self._closing
                has_pending = bool(self._pending)
            any_busy = any(w.busy is not None for w in self._live)
            if closing and not has_pending and not any_busy:
                break
            wait_for: Optional[float] = None
            if self.timeout is not None and any_busy:
                now = time.monotonic()
                wait_for = max(0.0, min(
                    w.busy.started + self.timeout - now
                    for w in self._live if w.busy is not None))
            waitables: List[Any] = [w.conn for w in self._live]
            waitables.append(self._wake_r)
            ready = _connection_wait(waitables, timeout=wait_for)
            if self._wake_r in ready:
                os.read(self._wake_r, 65536)
            for handle in [w for w in self._live if w.conn in ready]:
                self._on_message(handle)
            self._check_timeouts()
        self._stop_workers()

    def _abort_all(self) -> None:
        """Non-graceful shutdown: kill workers, fail everything queued."""
        for handle in list(self._live):
            handle.process.terminate()
            busy = handle.busy
            self._release_slot(handle)
            self._reap(handle, respawn=False)
            if busy is not None:
                self._settled(TaskOutcome(
                    index=busy.index, ok=False,
                    error="cancelled: scheduler shut down",
                    attempts=busy.attempt,
                    seconds=time.monotonic() - busy.started,
                    worker=handle.id), busy.callback)
        while True:
            with self._lock:
                if not self._pending:
                    break
                index, task, attempt, callback = self._pending.popleft()
            self._settled(TaskOutcome(
                index=index, ok=False,
                error="cancelled: scheduler shut down",
                attempts=attempt), callback)
        self._close_wake_pipe()

    def _stop_workers(self) -> None:
        """Graceful: ask each worker to leave, collect goodbye snapshots."""
        for handle in list(self._live):
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                self._reap(handle, respawn=False)
        deadline = time.monotonic() + _STOP_GRACE_SECONDS
        while self._live:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            ready = _connection_wait([w.conn for w in self._live],
                                     timeout=remaining)
            if not ready:
                break
            for handle in [w for w in self._live if w.conn in ready]:
                try:
                    message = handle.conn.recv()
                    if message[0] in ("goodbye", "retire"):
                        self.registry.merge(message[1])
                except (EOFError, OSError, IndexError):
                    pass
                self._reap(handle, respawn=False)
        for handle in list(self._live):  # stragglers past the grace window
            handle.process.terminate()
            self._reap(handle, respawn=False)
        self._close_wake_pipe()

    def _close_wake_pipe(self) -> None:
        for fd in (self._wake_r, self._wake_w):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._wake_r = self._wake_w = None
