"""Wire protocol of the ``repro.serve`` job server.

Newline-delimited JSON (NDJSON) over a TCP socket: every message —
either direction — is one JSON object on one line, UTF-8 encoded.
Nothing is framed beyond the newline, so ``telnet``/``nc`` sessions work
for debugging and the protocol survives any buffering boundary.

Client → server operations (``"op"`` key):

``submit``
    ``{"op": "submit", "id": "<client-chosen id>", "job": {"kind":
    "<job type>", "params": {...}}, "metrics": bool, "stream": bool}``
    — enqueue one job.  ``id`` is echoed on every event for this job so
    one connection can interleave jobs.  ``metrics`` asks for the job's
    merged metrics snapshot on the ``done`` event; ``stream`` asks for
    per-task ``task`` events as results land (completion order).
``ping``
    liveness probe; answered with ``pong``.
``metrics``
    server-wide metrics; answered with a ``metrics`` event carrying the
    JSON snapshot and the Prometheus text rendering.
``shutdown``
    ``{"op": "shutdown", "mode": "graceful"|"now"}`` — graceful drains
    in-flight jobs first; ``now`` cancels them.

Server → client events (``"event"`` key): ``hello`` (on connect),
``accepted``, ``task``, ``done``, ``rejected``, ``error``, ``pong``,
``metrics``, ``bye``.  ``rejected``/``error`` carry a machine-readable
``code`` from :data:`ERROR_CODES` — quota and backpressure rejections
are *typed*, never silent stalls.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: protocol identifier sent in the hello event; bump on breaking change
PROTOCOL = "repro.serve/1"

#: machine-readable rejection/error codes
ERROR_CODES = (
    "bad-request",     # unparsable line or malformed message
    "unknown-job",     # job kind not in the registry
    "invalid-params",  # job kind known, params rejected by its spec
    "quota-exceeded",  # client has too many tasks in flight
    "queue-full",      # admission queue at capacity (when_full="reject")
    "shutting-down",   # server no longer accepts submissions
    "internal",        # unexpected server-side failure
)

#: client operations
OPS = ("submit", "ping", "metrics", "shutdown")

#: server events
EVENTS = ("hello", "accepted", "task", "done", "rejected", "error",
          "pong", "metrics", "bye")


class ProtocolError(ValueError):
    """A line that does not decode to a valid protocol message."""

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol message as an NDJSON line (UTF-8, trailing ``\\n``).

    ``sort_keys`` keeps the wire bytes deterministic for a given
    message, which the CI smoke test relies on when diffing row output
    against a serial run.
    """
    return (json.dumps(message, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one NDJSON line into a message dict (tolerates blank lines
    by raising :class:`ProtocolError`, never returning None)."""
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        raise ProtocolError("empty line")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def check_op(message: Dict[str, Any]) -> str:
    """Validate and return the ``op`` of a client message."""
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    return op


def rejection(job_id: Any, code: str, error: str) -> Dict[str, Any]:
    """A ``rejected`` event (typed, per :data:`ERROR_CODES`)."""
    assert code in ERROR_CODES, code
    return {"event": "rejected", "id": job_id, "code": code, "error": error}
