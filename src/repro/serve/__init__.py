"""``repro.serve`` — the long-running compile-and-simulate job service.

An asyncio TCP server (:class:`JobServer`) accepting kernel-compile,
launch, figure-sweep, difftest-campaign and lint-sweep jobs over a
newline-delimited-JSON protocol (:mod:`repro.serve.protocol`), fanning
them out over a shared :class:`repro.scheduler.Scheduler` worker pool,
and streaming per-job rows plus trace spans and metrics deltas back to
clients.  Admission is bounded (queue cap + per-client quotas, both
rejected with typed codes), workers recycle per policy, and the PR-6
disk compile cache is shared across the whole pool.

Run it: ``python -m repro.serve serve --workers 4``; talk to it with
:class:`ServeClient` or ``python -m repro.serve submit``.  See
``docs/serve.md`` for the protocol schema and operational knobs.
"""

from .client import JobRejected, ServeClient, ServeError
from .jobs import JOB_KINDS, JobSpec, make_job
from .protocol import ERROR_CODES, PROTOCOL, ProtocolError
from .server import JobServer, ServerConfig
from .testing import ServerThread

__all__ = [
    "ERROR_CODES",
    "JOB_KINDS",
    "JobRejected",
    "JobServer",
    "JobSpec",
    "PROTOCOL",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ServerThread",
    "make_job",
]
