"""The ``repro.serve`` job server.

:class:`JobServer` is a long-running asyncio TCP server speaking the
NDJSON protocol of :mod:`repro.serve.protocol`.  Jobs
(:mod:`repro.serve.jobs`) expand into tasks on one shared
:class:`repro.scheduler.Scheduler` worker pool; results stream back to
each client as its tasks settle, in completion order, with the
position-ordered row list on the final ``done`` event.

Admission control sits between the socket and the pool:

* a **bounded queue** — at most ``queue_limit`` admitted-but-unfinished
  tasks server-wide; an over-limit submission is rejected with the typed
  ``queue-full`` code (``when_full="reject"``) or parks until capacity
  frees (``when_full="block"``) — never a silent stall;
* a **per-client quota** — at most ``client_quota`` in-flight tasks per
  connection, rejected with ``quota-exceeded``.

Observability: the server keeps a ``repro_serve_*`` metrics registry
(jobs, tasks, rejections, connected clients) alongside the scheduler's
``repro_sched_*`` registry and the per-job deltas aggregated across
jobs; the ``metrics`` op — and the optional plaintext HTTP listener on
``prom_port`` — exposes the union in Prometheus text format.  A
:class:`repro.obs.Tracer` records job/task lifecycle instants and is
written to ``trace_file`` at shutdown.

The disk compile cache is shared across all workers: ``cache_dir``
exports ``REPRO_COMPILE_CACHE`` *before* the pool forks, so every worker
— including replacements forked after a crash — inherits the same warm
cache.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import MetricsRegistry, Tracer
from repro.scheduler import (
    DEFAULT_RETRIES,
    RecyclePolicy,
    Scheduler,
    SchedulerClosed,
)

from .jobs import JobSpec, make_job
from .protocol import (
    PROTOCOL,
    ProtocolError,
    check_op,
    decode,
    encode,
    rejection,
)

#: Chrome-trace pid lane for server lifecycle events
_SERVE_PID = 7


@dataclass
class ServerConfig:
    """Knobs of one :class:`JobServer` (see ``docs/serve.md``)."""

    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (read it back from JobServer.address)
    port: int = 0
    workers: int = 2
    #: per task attempt, seconds (None = no timeout)
    timeout: Optional[float] = None
    retries: int = DEFAULT_RETRIES
    #: recycle a worker after serving this many tasks
    recycle_tasks: Optional[int] = None
    #: recycle a worker once its RSS exceeds this many bytes
    recycle_rss_bytes: Optional[int] = None
    #: server-wide cap on admitted-but-unfinished tasks
    queue_limit: int = 256
    #: "reject" (typed queue-full rejection) or "block" (park the submit)
    when_full: str = "reject"
    #: per-connection cap on in-flight tasks (None = unlimited)
    client_quota: Optional[int] = 128
    #: disk compile cache shared by all workers (exports
    #: REPRO_COMPILE_CACHE before the pool forks)
    cache_dir: Optional[str] = None
    #: write the server's Chrome trace here at shutdown
    trace_file: Optional[str] = None
    #: write the final merged Prometheus snapshot here at shutdown
    prom_file: Optional[str] = None
    #: plaintext HTTP /metrics listener (None = disabled)
    prom_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.when_full not in ("reject", "block"):
            raise ValueError(
                f"when_full must be 'reject' or 'block', got {self.when_full!r}")
        if self.workers < 1:
            raise ValueError("JobServer needs at least one worker")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")


@dataclass
class _Client:
    name: str
    writer: asyncio.StreamWriter
    lock: asyncio.Lock
    inflight: int = 0
    closed: bool = False


@dataclass
class _Job:
    id: str
    client_id: Any  # client-chosen, echoed verbatim
    client: _Client
    spec: JobSpec
    outcomes: List[Any]
    remaining: int
    started: float  # event-loop time
    stream: bool
    want_metrics: bool
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)


class JobServer:
    """One server instance; drive it with :meth:`run` (a coroutine)."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.scheduler = Scheduler(
            workers=self.config.workers, timeout=self.config.timeout,
            retries=self.config.retries,
            recycle=RecyclePolicy(max_tasks=self.config.recycle_tasks,
                                  max_rss_bytes=self.config.recycle_rss_bytes))
        #: repro_serve_* self-telemetry
        self.registry = MetricsRegistry()
        #: per-job metric deltas aggregated across finished jobs
        self.job_metrics = MetricsRegistry()
        self.tracer = Tracer()
        #: (host, port) once listening
        self.address: Optional[tuple] = None
        self.prom_address: Optional[tuple] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._prom_server: Optional[asyncio.base_events.Server] = None
        self._admission: Optional[asyncio.Condition] = None
        self._admitted = 0
        self._accepting = True
        self._graceful = True
        self._stopping: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._jobs: Dict[str, _Job] = {}
        self._active_jobs = 0
        self._next_client = 0
        self._next_job = 0

    # ---- lifecycle --------------------------------------------------------

    async def run(self, ready: Optional[asyncio.Event] = None) -> None:
        """Listen and serve until a ``shutdown`` op stops the server.

        ``ready`` (if given) is set once :attr:`address` is bound.
        """
        if self.config.cache_dir is not None:
            # Before the pool forks: every worker — and every replacement
            # forked later — inherits the same persistent compile cache.
            os.environ["REPRO_COMPILE_CACHE"] = self.config.cache_dir
        self._loop = asyncio.get_running_loop()
        self._admission = asyncio.Condition()
        self._stopping = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        if self.config.prom_port is not None:
            self._prom_server = await asyncio.start_server(
                self._handle_prom, self.config.host, self.config.prom_port)
            self.prom_address = self._prom_server.sockets[0].getsockname()[:2]
        self.tracer.instant("serve:listening", cat="serve", pid=_SERVE_PID,
                            args={"address": list(self.address)})
        if ready is not None:
            ready.set()
        try:
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._prom_server is not None:
                self._prom_server.close()
                await self._prom_server.wait_closed()
            # Blocking close off the loop thread: graceful collects each
            # worker's goodbye metrics snapshot into scheduler.registry.
            graceful = self._graceful
            await self._loop.run_in_executor(
                None, lambda: self.scheduler.close(graceful))
            self.tracer.instant("serve:stopped", cat="serve", pid=_SERVE_PID)
            if self.config.trace_file:
                self.tracer.write(self.config.trace_file)
            if self.config.prom_file:
                self.merged_registry().write_prom(self.config.prom_file)

    def merged_registry(self) -> MetricsRegistry:
        """Server + scheduler + aggregated job metrics, one registry."""
        merged = MetricsRegistry()
        merged.merge(self.registry)
        merged.merge(self.scheduler.metrics_snapshot())
        merged.merge(self.job_metrics)
        return merged

    # ---- connection handling ----------------------------------------------

    async def _send(self, client: _Client, message: Dict[str, Any]) -> None:
        if client.closed:
            return
        async with client.lock:
            try:
                client.writer.write(encode(message))
                await client.writer.drain()
            except (ConnectionError, RuntimeError):
                client.closed = True

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._next_client += 1
        client = _Client(name=f"client-{self._next_client}", writer=writer,
                         lock=asyncio.Lock())
        clients = self.registry.gauge("repro_serve_clients",
                                      "Currently connected clients").labels()
        clients.inc()
        self.registry.counter("repro_serve_clients_total",
                              "Client connections accepted").inc()
        await self._send(client, {
            "event": "hello", "protocol": PROTOCOL,
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "when_full": self.config.when_full,
            "client_quota": self.config.client_quota,
        })
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode(line)
                    op = check_op(message)
                except ProtocolError as exc:
                    await self._send(client, {
                        "event": "error", "code": exc.code,
                        "error": str(exc)})
                    continue
                if op == "submit":
                    await self._op_submit(client, message)
                elif op == "ping":
                    await self._send(client, {"event": "pong"})
                elif op == "metrics":
                    merged = self.merged_registry()
                    await self._send(client, {
                        "event": "metrics",
                        "snapshot": merged.snapshot(),
                        "prom": merged.render_prom()})
                elif op == "shutdown":
                    await self._op_shutdown(client, message)
        finally:
            client.closed = True
            clients.dec()
            try:
                writer.close()
            except Exception:
                pass

    # ---- submit -----------------------------------------------------------

    async def _op_submit(self, client: _Client,
                         message: Dict[str, Any]) -> None:
        client_job_id = message.get("id")

        async def reject(code: str, error: str) -> None:
            self.registry.counter(
                "repro_serve_jobs_rejected_total",
                "Jobs refused admission, by typed code"
            ).labels(code=code).inc()
            await self._send(client, rejection(client_job_id, code, error))

        if not self._accepting:
            await reject("shutting-down", "server is shutting down")
            return
        job_field = message.get("job")
        if not isinstance(job_field, dict):
            await reject("bad-request", "submit needs a 'job' object")
            return
        try:
            spec = make_job(job_field.get("kind"), job_field.get("params"))
            tasks = spec.tasks()
        except ProtocolError as exc:
            await reject(exc.code, str(exc))
            return
        count = len(tasks)
        quota = self.config.client_quota
        if quota is not None and client.inflight + count > quota:
            await reject(
                "quota-exceeded",
                f"job needs {count} tasks; client has {client.inflight} "
                f"in flight of a {quota}-task quota")
            return
        async with self._admission:
            if self._admitted + count > self.config.queue_limit:
                if self.config.when_full == "reject":
                    await reject(
                        "queue-full",
                        f"job needs {count} tasks; queue has "
                        f"{self.config.queue_limit - self._admitted} of "
                        f"{self.config.queue_limit} slots free")
                    return
                while (self._admitted + count > self.config.queue_limit
                       and self._accepting):
                    await self._admission.wait()
                if not self._accepting:
                    await reject("shutting-down", "server is shutting down")
                    return
            self._admitted += count
            self.registry.gauge(
                "repro_serve_admitted_tasks",
                "Tasks admitted but not yet settled").set(self._admitted)
        client.inflight += count

        self._next_job += 1
        job = _Job(id=f"job-{self._next_job}", client_id=client_job_id,
                   client=client, spec=spec, outcomes=[None] * count,
                   remaining=count, started=self._loop.time(),
                   stream=bool(message.get("stream", False)),
                   want_metrics=bool(message.get("metrics", False)))
        self._jobs[job.id] = job
        self._active_jobs += 1
        self._idle.clear()
        self.registry.counter(
            "repro_serve_jobs_total", "Jobs accepted, by kind"
        ).labels(kind=spec.kind).inc()
        self.tracer.instant(f"job:{job.id}:accepted", cat="serve",
                            pid=_SERVE_PID,
                            args={"kind": spec.kind, "tasks": count})

        loop = self._loop

        def make_callback(position: int):
            def callback(outcome) -> None:  # scheduler dispatcher thread
                loop.call_soon_threadsafe(self._outcome_ready, job.id,
                                          position, outcome)
            return callback

        try:
            for position, task in enumerate(tasks):
                self.scheduler.submit(task, on_outcome=make_callback(position))
        except SchedulerClosed:
            # Settle whatever never reached the pool; submitted tasks
            # will settle through their callbacks as usual.
            for position in range(count):
                if job.outcomes[position] is None:
                    self._outcome_ready(job.id, position, None)
            await reject("shutting-down", "server is shutting down")
            return
        await self._send(client, {
            "event": "accepted", "id": client_job_id, "job_id": job.id,
            "kind": spec.kind, "tasks": count})

    # ---- outcome plumbing (event-loop thread) -----------------------------

    def _outcome_ready(self, job_id: str, position: int, outcome) -> None:
        self._loop.create_task(self._settle(job_id, position, outcome))

    async def _settle(self, job_id: str, position: int, outcome) -> None:
        job = self._jobs.get(job_id)
        if job is None or job.outcomes[position] is not None:
            return
        sentinel = outcome if outcome is not None else _CANCELLED
        job.outcomes[position] = sentinel
        job.remaining -= 1
        job.client.inflight -= 1
        async with self._admission:
            self._admitted -= 1
            self.registry.gauge(
                "repro_serve_admitted_tasks",
                "Tasks admitted but not yet settled").set(self._admitted)
            self._admission.notify_all()
        ok = outcome is not None and outcome.ok
        self.registry.counter(
            "repro_serve_tasks_total", "Job tasks settled, by outcome"
        ).labels(outcome="ok" if ok else "error").inc()
        if job.stream:
            event: Dict[str, Any] = {
                "event": "task", "id": job.client_id, "job_id": job.id,
                "position": position, "ok": ok,
            }
            if ok:
                event["row"] = job.spec.row(outcome.value)
            else:
                event["error"] = (outcome.error if outcome is not None
                                  else "cancelled: scheduler shut down")
            if outcome is not None:
                event["attempts"] = outcome.attempts
                event["seconds"] = outcome.seconds
                event["worker"] = outcome.worker
            await self._send(job.client, event)
        if job.remaining == 0:
            await self._finish(job)

    async def _finish(self, job: _Job) -> None:
        del self._jobs[job.id]
        wall = self._loop.time() - job.started
        outcomes = [None if o is _CANCELLED else o for o in job.outcomes]
        rows: List[Optional[Dict[str, Any]]] = []
        errors: List[Dict[str, Any]] = []
        for position, outcome in enumerate(outcomes):
            if outcome is not None and outcome.ok:
                rows.append(job.spec.row(outcome.value))
            else:
                rows.append(None)
                errors.append({
                    "position": position,
                    "error": (outcome.error if outcome is not None
                              else "cancelled: scheduler shut down"),
                    "attempts": outcome.attempts if outcome is not None else 0,
                    "crashed": bool(outcome and outcome.crashed),
                    "timed_out": bool(outcome and outcome.timed_out),
                })
        job.spec.finalize(outcomes, job.registry, wall)
        self.job_metrics.merge(job.registry)
        done: Dict[str, Any] = {
            "event": "done", "id": job.client_id, "job_id": job.id,
            "kind": job.spec.kind, "ok": not errors, "rows": rows,
            "errors": errors, "tasks": len(outcomes), "seconds": wall,
            "attempts": [o.attempts if o is not None else 0
                         for o in outcomes],
        }
        if job.want_metrics:
            done["metrics"] = job.registry.snapshot()
        trace_events = getattr(job.spec, "trace_events", None)
        if trace_events is not None:
            events = trace_events(outcomes)
            if events:
                done["trace"] = events
        self.tracer.instant(f"job:{job.id}:done", cat="serve",
                            pid=_SERVE_PID,
                            args={"ok": not errors, "seconds": wall})
        await self._send(job.client, done)
        self._active_jobs -= 1
        if self._active_jobs == 0:
            self._idle.set()

    # ---- shutdown ---------------------------------------------------------

    async def _op_shutdown(self, client: _Client,
                           message: Dict[str, Any]) -> None:
        mode = message.get("mode", "graceful")
        if mode not in ("graceful", "now"):
            await self._send(client, {
                "event": "error", "code": "bad-request",
                "error": f"unknown shutdown mode {mode!r}"})
            return
        await self._send(client, {"event": "bye", "mode": mode})
        self._accepting = False
        async with self._admission:
            self._admission.notify_all()  # unpark blocked submits
        self._graceful = mode == "graceful"
        self._loop.create_task(self._shutdown(self._graceful))

    async def _shutdown(self, graceful: bool) -> None:
        if not graceful:
            # Cancels queued + in-flight tasks; their outcomes settle as
            # failures, which drains every job below.
            await self._loop.run_in_executor(
                None, lambda: self.scheduler.close(False))
        await self._idle.wait()
        self._stopping.set()

    # ---- Prometheus HTTP listener -----------------------------------------

    async def _handle_prom(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Minimal plaintext HTTP: any request gets the current merged
        snapshot in Prometheus text format v0.0.4."""
        try:
            while True:  # consume request head
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = self.merged_registry().render_prom().encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass


class _Cancelled:
    """Placeholder for a task settled by a non-graceful shutdown."""


_CANCELLED = _Cancelled()
