"""In-process server hosting for tests and embedders.

:class:`ServerThread` runs a :class:`~repro.serve.JobServer` on a
dedicated thread with its own event loop, exposing the bound address
synchronously — so a test (or the soak harness) can start a real server,
connect :class:`~repro.serve.ServeClient` instances against it, and tear
it down, all without subprocesses:

    with ServerThread(ServerConfig(workers=2)) as address:
        with ServeClient(*address) as client:
            done = client.run_job("difftest", {"count": 3})

Teardown prefers a client-driven graceful shutdown (so in-flight jobs
drain and worker goodbye snapshots fold in) and falls back to forcing
the loop if the server never comes up.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from .client import ServeClient
from .server import JobServer, ServerConfig


class ServerThread:
    """Run a JobServer on a background thread; context-managed."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 startup_timeout: float = 30.0) -> None:
        self.server = JobServer(config)
        self._startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-serve", daemon=True)

    def _main(self) -> None:
        async def body() -> None:
            ready = asyncio.Event()

            async def flag() -> None:
                await ready.wait()
                self._ready.set()

            flagger = asyncio.ensure_future(flag())
            try:
                await self.server.run(ready=ready)
            finally:
                flagger.cancel()

        try:
            asyncio.run(body())
        except BaseException as exc:  # noqa: BLE001 — surface in start()
            self._error = exc
            self._ready.set()

    def start(self) -> Tuple[str, int]:
        """Start the server; returns the bound ``(host, port)``."""
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        assert self.server.address is not None
        return self.server.address

    def stop(self, mode: str = "graceful", join_timeout: float = 60.0) -> None:
        """Shut the server down via the protocol and join the thread."""
        if not self._thread.is_alive():
            return
        if self.server.address is not None:
            # A short socket timeout covers the already-shutting-down
            # case: the TCP handshake can still land in the dead
            # listener's backlog, where no hello will ever arrive.
            try:
                with ServeClient(*self.server.address, timeout=5) as client:
                    client.shutdown(mode)
            except Exception:
                pass
        self._thread.join(join_timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop")

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        return self.server.address

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
