"""Job types of the ``repro.serve`` server.

A **job** is what a client submits; a job expands into one or more
scheduler :class:`~repro.scheduler.Task` objects (its *tasks*), each of
which produces one JSON-able **row**.  The server streams rows back as
tasks settle and sends the full, position-ordered row list on the
``done`` event — so a job's row output is deterministic however the
pool interleaved it.

Five built-in kinds, registered in :data:`JOB_KINDS`:

``compile``
    one task per kernel: build + compile at an opt level from
    :data:`repro.lint.LINT_LEVELS`; rows report block/instruction counts
    and CFM meld decisions.
``launch``
    one task per kernel: compile the ``-O3`` baseline and execute it,
    reporting cycles and divergence counters.
``sweep``
    one task per ``(kernel, block size)`` — exactly a figure sweep row
    (:func:`repro.evaluation.run_task` underneath), reporting the same
    speedup fields :func:`repro.evaluation.run_sweep` computes.  Rows
    are bit-identical to a serial ``python -m repro.evaluation`` run,
    and the job's merged metrics delta reuses
    :func:`repro.evaluation.fold_sweep_metrics` so the snapshot matches
    a serial collect too.
``difftest``
    one task per seed: the full differential oracle
    (:func:`repro.difftest.run_oracle`) over the generated kernel.
``lint``
    one task per ``(kernel, level)``: compile-then-lint
    (:func:`repro.lint.lint_at_level`), reporting diagnostics.

Payloads are plain tuples/dicts and the task functions are module-level
— both requirements of the fork/pickle boundary — and kernels cross the
wire **by name**, resolved against :data:`repro.kernels.ALL_BUILDERS`
inside the worker, so no closures are ever pickled.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.evaluation.parallel import (
    SweepTask,
    TaskResult,
    fold_sweep_metrics,
    run_task,
)
from repro.obs import use_registry
from repro.scheduler import Task

from .protocol import ProtocolError

#: job kind -> JobSpec subclass (filled at module bottom)
JOB_KINDS: Dict[str, type] = {}

#: sweeps/difftests above these sizes are rejected as invalid-params —
#: a job is a unit of admission, and the queue cap reasons in tasks
MAX_TASKS_PER_JOB = 512


class JobParamError(ProtocolError):
    """Params rejected by a job spec (wire code ``invalid-params``)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="invalid-params")


def _require(params: Dict[str, Any], key: str, kind: type,
             default: Any = None) -> Any:
    value = params.get(key, default)
    if value is default and default is not None:
        return default
    if not isinstance(value, kind):
        raise JobParamError(
            f"param {key!r} must be {kind.__name__}, got {type(value).__name__}")
    return value


def _kernel_names(params: Dict[str, Any]) -> List[str]:
    from repro.kernels import ALL_BUILDERS
    names = params.get("kernels")
    if names is None:
        raise JobParamError("param 'kernels' (list of names) is required")
    if not isinstance(names, list) or not names or \
            not all(isinstance(n, str) for n in names):
        raise JobParamError("param 'kernels' must be a non-empty name list")
    unknown = [n for n in names if n not in ALL_BUILDERS]
    if unknown:
        raise JobParamError(
            f"unknown kernels {unknown}; known: {sorted(ALL_BUILDERS)}")
    return names


# ---------------------------------------------------------------------------
# worker-side task functions (module-level: they cross the fork boundary)


def _builder(name: str) -> Callable:
    from repro.kernels import ALL_BUILDERS
    return ALL_BUILDERS[name]


def _sweep_fn(payload: Dict[str, Any], ctx) -> TaskResult:
    task = SweepTask(
        kernel=payload["kernel"], builder=_builder(payload["kernel"]),
        block_size=payload["block_size"], grid_dim=payload["grid_dim"],
        seed=payload["seed"], cache_dir=payload.get("cache_dir"),
        trace=payload.get("trace", False), metrics=True)
    # position within the job, not the scheduler-wide index — rows keep
    # job-relative numbering however many jobs share the pool
    return run_task(task, index=payload["position"], attempts=ctx.attempt)


def _compile_fn(payload: Dict[str, Any], ctx) -> Dict[str, Any]:
    from repro.lint.api import compile_at_level
    name, level = payload["kernel"], payload["level"]
    case = _builder(name)(block_size=payload["block_size"],
                          grid_dim=payload["grid_dim"])
    decisions = compile_at_level(case.function, level)
    function = case.function
    return {
        "kernel": name,
        "level": level,
        "blocks": len(list(function.blocks)),
        "instructions": sum(len(list(b.instructions))
                            for b in function.blocks),
        "melds": sum(1 for d in (decisions or [])
                     if getattr(d, "action", "") == "melded"),
    }


def _launch_fn(payload: Dict[str, Any], ctx) -> Dict[str, Any]:
    from repro.evaluation.runner import compile_baseline, execute
    name = payload["kernel"]
    case = _builder(name)(block_size=payload["block_size"],
                          grid_dim=payload["grid_dim"])
    compile_baseline(case)
    run = execute(case, seed=payload["seed"])
    metrics = run.metrics
    return {
        "kernel": name,
        "block_size": payload["block_size"],
        "cycles": metrics.cycles,
        "branches": metrics.branches,
        "divergent_branches": metrics.divergent_branches,
    }


def _difftest_fn(payload: Dict[str, Any], ctx) -> Dict[str, Any]:
    from repro.difftest import generate_spec, run_oracle
    seed = payload["seed"]
    spec = generate_spec(seed, block_dim=payload["block_dim"],
                         grid_dim=payload["grid_dim"])
    verdict = run_oracle(spec)
    return {
        "seed": seed,
        "ok": verdict.ok,
        "failures": [str(f) for f in verdict.failures],
    }


def _lint_fn(payload: Dict[str, Any], ctx) -> Dict[str, Any]:
    from repro.lint.api import lint_at_level
    name, level = payload["kernel"], payload["level"]
    case = _builder(name)(block_size=payload["block_size"],
                          grid_dim=payload["grid_dim"])
    report = lint_at_level(case, level)
    return {
        "kernel": name,
        "level": level,
        "ok": report.ok,
        "diagnostics": [
            f"{d.severity} {d.rule} {d.location}: {d.message}"
            for d in report.diagnostics],
    }


# ---------------------------------------------------------------------------
# job specs


class JobSpec:
    """One submitted job: validated params → scheduler tasks → rows."""

    kind = "abstract"

    def __init__(self, params: Dict[str, Any]) -> None:
        self.params = params

    def tasks(self) -> List[Task]:
        """Scheduler tasks, in job-position order."""
        raise NotImplementedError

    def row(self, value: Any) -> Dict[str, Any]:
        """A task's return value as a JSON-able row."""
        return value

    def finalize(self, outcomes: Sequence[Any], registry,
                 wall_seconds: float) -> None:
        """Fold the job's telemetry into its registry.

        Default: merge each outcome's metrics delta in position order
        (deterministic — the same order a serial run would emit them).
        """
        for outcome in outcomes:
            if outcome is not None and outcome.metrics_delta:
                registry.merge(outcome.metrics_delta)

    def _check_size(self, count: int) -> None:
        if count > MAX_TASKS_PER_JOB:
            raise JobParamError(
                f"job expands to {count} tasks; cap is {MAX_TASKS_PER_JOB}")
        if count == 0:
            raise JobParamError("job expands to zero tasks")


class SweepJob(JobSpec):
    """Figure-style speedup sweep over (kernel, block size) pairs.

    Params: ``kernels`` (names), ``block_sizes`` (list, or per-kernel
    dict of lists; defaults to the figure-7/8 sweep sizes), ``seed``,
    ``grid_dim``, ``trace`` (capture Chrome-trace events per task).
    """

    kind = "sweep"

    def __init__(self, params: Dict[str, Any]) -> None:
        super().__init__(params)
        from repro.evaluation.experiments import (
            DEFAULT_GRID_DIM,
            DEFAULT_SEED,
            REAL_BLOCK_SIZES,
            SYNTHETIC_BLOCK_SIZES,
        )
        self.kernels = _kernel_names(params)
        self.seed = _require(params, "seed", int, DEFAULT_SEED)
        self.grid_dim = _require(params, "grid_dim", int, DEFAULT_GRID_DIM)
        self.trace = bool(params.get("trace", False))
        sizes = params.get("block_sizes")
        if sizes is None:
            self.block_sizes = {
                name: REAL_BLOCK_SIZES.get(name, SYNTHETIC_BLOCK_SIZES)
                for name in self.kernels}
        elif isinstance(sizes, list):
            self.block_sizes = {name: list(sizes) for name in self.kernels}
        elif isinstance(sizes, dict):
            missing = [n for n in self.kernels if n not in sizes]
            if missing:
                raise JobParamError(f"block_sizes missing kernels {missing}")
            self.block_sizes = {name: list(sizes[name])
                                for name in self.kernels}
        else:
            raise JobParamError("block_sizes must be a list or a dict")
        self.pairs = [(name, size) for name in self.kernels
                      for size in self.block_sizes[name]]
        self._check_size(len(self.pairs))

    def tasks(self) -> List[Task]:
        import os
        cache_dir = os.environ.get("REPRO_COMPILE_CACHE")
        if cache_dir in (None, "", "off"):
            cache_dir = None
        return [
            Task(_sweep_fn, {
                "kernel": name, "block_size": size, "seed": self.seed,
                "grid_dim": self.grid_dim, "position": position,
                "cache_dir": cache_dir, "trace": self.trace,
            })
            for position, (name, size) in enumerate(self.pairs)]

    def row(self, value: TaskResult) -> Dict[str, Any]:
        comparison = value.comparison
        return {
            "kernel": value.kernel,
            "block_size": value.block_size,
            "speedup": comparison.speedup,
            "baseline_cycles": comparison.baseline.cycles,
            "cfm_cycles": comparison.melded.cycles,
            "melds": comparison.melds,
        }

    def trace_events(self, outcomes: Sequence[Any]
                     ) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        for outcome in outcomes:
            result = getattr(outcome, "value", None)
            if result is not None and result.trace_events:
                events.extend(result.trace_events)
        return events

    def finalize(self, outcomes: Sequence[Any], registry,
                 wall_seconds: float) -> None:
        """Reuse the sweep engine's fold so a served sweep's snapshot is
        family-for-family what :class:`~repro.evaluation.ParallelRunner`
        would have produced (deterministic metrics bit-identical)."""
        results: List[TaskResult] = []
        for position, outcome in enumerate(outcomes):
            if outcome is None:
                continue
            if outcome.ok:
                results.append(outcome.value)
            else:
                name, size = self.pairs[position]
                results.append(TaskResult(
                    index=position, kernel=name, block_size=size,
                    error=outcome.error, attempts=outcome.attempts,
                    seconds=outcome.seconds,
                    metrics_delta=outcome.metrics_delta,
                    crashed=outcome.crashed))
        with use_registry(registry):
            fold_sweep_metrics(results, wall_seconds)


class CompileJob(JobSpec):
    """Compile kernels at one opt level; rows report IR shape + melds.

    Params: ``kernels``, ``level`` (one of
    :data:`repro.lint.LINT_LEVELS`, default ``o3-cfm``), ``block_size``,
    ``grid_dim``.
    """

    kind = "compile"

    def __init__(self, params: Dict[str, Any]) -> None:
        super().__init__(params)
        from repro.lint.api import LINT_LEVELS
        self.kernels = _kernel_names(params)
        self.level = _require(params, "level", str, "o3-cfm")
        if self.level not in LINT_LEVELS:
            raise JobParamError(
                f"unknown level {self.level!r}; expected one of {LINT_LEVELS}")
        self.block_size = _require(params, "block_size", int, 32)
        self.grid_dim = _require(params, "grid_dim", int, 2)
        self._check_size(len(self.kernels))

    def tasks(self) -> List[Task]:
        return [Task(_compile_fn, {
            "kernel": name, "level": self.level,
            "block_size": self.block_size, "grid_dim": self.grid_dim,
        }, metrics=True) for name in self.kernels]


class LaunchJob(JobSpec):
    """Compile the ``-O3`` baseline and execute it on the simulator.

    Params: ``kernels``, ``block_size``, ``grid_dim``, ``seed``.
    """

    kind = "launch"

    def __init__(self, params: Dict[str, Any]) -> None:
        super().__init__(params)
        self.kernels = _kernel_names(params)
        self.block_size = _require(params, "block_size", int, 32)
        self.grid_dim = _require(params, "grid_dim", int, 2)
        self.seed = _require(params, "seed", int, 1234)
        self._check_size(len(self.kernels))

    def tasks(self) -> List[Task]:
        return [Task(_launch_fn, {
            "kernel": name, "block_size": self.block_size,
            "grid_dim": self.grid_dim, "seed": self.seed,
        }, metrics=True) for name in self.kernels]


class DifftestJob(JobSpec):
    """Differential-oracle campaign: one task per generator seed.

    Params: ``seeds`` (explicit list) or ``count`` + ``start``;
    ``block_dim``, ``grid_dim``.
    """

    kind = "difftest"

    def __init__(self, params: Dict[str, Any]) -> None:
        super().__init__(params)
        seeds = params.get("seeds")
        if seeds is not None:
            if not isinstance(seeds, list) or \
                    not all(isinstance(s, int) for s in seeds):
                raise JobParamError("param 'seeds' must be a list of ints")
            self.seeds = seeds
        else:
            count = _require(params, "count", int, 10)
            start = _require(params, "start", int, 0)
            self.seeds = list(range(start, start + count))
        self.block_dim = _require(params, "block_dim", int, 16)
        self.grid_dim = _require(params, "grid_dim", int, 2)
        self._check_size(len(self.seeds))

    def tasks(self) -> List[Task]:
        return [Task(_difftest_fn, {
            "seed": seed, "block_dim": self.block_dim,
            "grid_dim": self.grid_dim,
        }, metrics=True) for seed in self.seeds]


class LintJob(JobSpec):
    """Compile-then-lint sweep over (kernel, level) pairs.

    Params: ``kernels``, ``levels`` (default every lint level),
    ``block_size``, ``grid_dim``.
    """

    kind = "lint"

    def __init__(self, params: Dict[str, Any]) -> None:
        super().__init__(params)
        from repro.lint.api import LINT_LEVELS
        self.kernels = _kernel_names(params)
        levels = params.get("levels", list(LINT_LEVELS))
        if not isinstance(levels, list) or not levels or \
                not all(isinstance(lv, str) for lv in levels):
            raise JobParamError("param 'levels' must be a non-empty list")
        unknown = [lv for lv in levels if lv not in LINT_LEVELS]
        if unknown:
            raise JobParamError(
                f"unknown levels {unknown}; expected from {LINT_LEVELS}")
        self.levels = levels
        self.block_size = _require(params, "block_size", int, 32)
        self.grid_dim = _require(params, "grid_dim", int, 2)
        self.pairs = [(k, lv) for k in self.kernels for lv in self.levels]
        self._check_size(len(self.pairs))

    def tasks(self) -> List[Task]:
        return [Task(_lint_fn, {
            "kernel": name, "level": level,
            "block_size": self.block_size, "grid_dim": self.grid_dim,
        }, metrics=True) for name, level in self.pairs]


JOB_KINDS.update({
    spec.kind: spec
    for spec in (SweepJob, CompileJob, LaunchJob, DifftestJob, LintJob)
})


def make_job(kind: Any, params: Optional[Dict[str, Any]]) -> JobSpec:
    """Instantiate a registered job spec; raises :class:`ProtocolError`
    with the right wire code for unknown kinds / bad params."""
    if not isinstance(kind, str) or kind not in JOB_KINDS:
        raise ProtocolError(
            f"unknown job kind {kind!r}; known: {sorted(JOB_KINDS)}",
            code="unknown-job")
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise JobParamError("job params must be an object")
    return JOB_KINDS[kind](params)
