"""``python -m repro.serve`` — run or drive the job server.

Subcommands::

    serve      start a server (foreground) and print its address
    submit     submit one job to a running server and print the result
    metrics    fetch a running server's Prometheus snapshot
    shutdown   stop a running server (graceful by default)

The ``serve --chaos INDEX:MODE`` flag arms the scheduler's
fault-injection hook (``repro.scheduler.worker._TEST_WORKER_CHAOS``) —
the CI ``serve-smoke`` job uses it to kill a worker mid-run and assert
the sweep still finishes bit-identical to a serial run.  Modes:
exit, exit-after, raise, hang, corrupt.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .client import JobRejected, ServeClient
from .jobs import JOB_KINDS
from .server import JobServer, ServerConfig


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="start a job server (foreground)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks an ephemeral port (printed on stdout)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--timeout", type=float, default=None,
                   help="per task attempt, seconds")
    p.add_argument("--retries", type=int, default=1)
    p.add_argument("--recycle-tasks", type=int, default=None,
                   help="retire a worker after N tasks")
    p.add_argument("--recycle-rss-mb", type=float, default=None,
                   help="retire a worker above M MiB resident")
    p.add_argument("--queue-limit", type=int, default=256)
    p.add_argument("--when-full", choices=("reject", "block"),
                   default="reject")
    p.add_argument("--client-quota", type=int, default=128,
                   help="max in-flight tasks per connection (0 = unlimited)")
    p.add_argument("--cache-dir", default=None,
                   help="disk compile cache shared by all workers")
    p.add_argument("--trace-file", default=None,
                   help="write the server Chrome trace here at shutdown")
    p.add_argument("--prom-file", default=None,
                   help="write the final Prometheus snapshot here at shutdown")
    p.add_argument("--prom-port", type=int, default=None,
                   help="HTTP /metrics listener port")
    p.add_argument("--ready-file", default=None,
                   help="write 'host port' here once listening")
    p.add_argument("--chaos", action="append", default=[],
                   metavar="INDEX:MODE",
                   help="inject a worker fault on a task index (repeatable)")


def _add_client_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.chaos:
        from repro.scheduler import CHAOS_MODES
        from repro.scheduler import worker as scheduler_worker
        for spec in args.chaos:
            index, _, mode = spec.partition(":")
            if mode not in CHAOS_MODES:
                print(f"--chaos: unknown mode {mode!r} "
                      f"(expected {CHAOS_MODES})", file=sys.stderr)
                return 2
            scheduler_worker._TEST_WORKER_CHAOS[int(index)] = mode
    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        timeout=args.timeout, retries=args.retries,
        recycle_tasks=args.recycle_tasks,
        recycle_rss_bytes=(int(args.recycle_rss_mb * 1024 * 1024)
                           if args.recycle_rss_mb else None),
        queue_limit=args.queue_limit, when_full=args.when_full,
        client_quota=args.client_quota or None,
        cache_dir=args.cache_dir, trace_file=args.trace_file,
        prom_file=args.prom_file, prom_port=args.prom_port)
    server = JobServer(config)

    async def main() -> None:
        ready = asyncio.Event()

        async def announce() -> None:
            await ready.wait()
            host, port = server.address
            print(f"listening on {host}:{port}", flush=True)
            if server.prom_address is not None:
                print(f"metrics on http://{server.prom_address[0]}:"
                      f"{server.prom_address[1]}/metrics", flush=True)
            if args.ready_file:
                with open(args.ready_file, "w") as handle:
                    handle.write(f"{host} {port}\n")

        task = asyncio.ensure_future(announce())
        try:
            await server.run(ready=ready)
        finally:
            task.cancel()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    params = json.loads(args.params) if args.params else {}
    with ServeClient(args.host, args.port) as client:
        try:
            done = client.run_job(args.kind, params, metrics=args.metrics,
                                  stream=args.stream,
                                  on_task=(lambda e: print(
                                      json.dumps(e), file=sys.stderr))
                                  if args.stream else None)
        except JobRejected as exc:
            print(json.dumps({"rejected": exc.code, "error": str(exc)}),
                  file=sys.stderr)
            return 1
    text = json.dumps(done, indent=None if args.compact else 2,
                      sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0 if done.get("ok") else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    with ServeClient(args.host, args.port) as client:
        event = client.metrics()
    if args.format == "prom":
        sys.stdout.write(event.get("prom", ""))
    else:
        print(json.dumps(event.get("snapshot", {}), indent=2, sort_keys=True))
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    with ServeClient(args.host, args.port) as client:
        client.shutdown("now" if args.now else "graceful")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="compile-and-simulate job service")
    sub = parser.add_subparsers(dest="command", required=True)
    _add_serve(sub)

    p = sub.add_parser("submit", help="submit one job and wait for it")
    _add_client_common(p)
    p.add_argument("--kind", required=True, choices=sorted(JOB_KINDS))
    p.add_argument("--params", default=None,
                   help="job params as a JSON object")
    p.add_argument("--metrics", action="store_true",
                   help="include the job's merged metrics snapshot")
    p.add_argument("--stream", action="store_true",
                   help="print per-task events to stderr as they land")
    p.add_argument("--out", default=None,
                   help="write the done event here instead of stdout")
    p.add_argument("--compact", action="store_true")

    p = sub.add_parser("metrics", help="fetch server metrics")
    _add_client_common(p)
    p.add_argument("--format", choices=("json", "prom"), default="prom")

    p = sub.add_parser("shutdown", help="stop a running server")
    _add_client_common(p)
    p.add_argument("--now", action="store_true",
                   help="cancel in-flight jobs instead of draining")

    args = parser.parse_args(argv)
    handler = {"serve": _cmd_serve, "submit": _cmd_submit,
               "metrics": _cmd_metrics, "shutdown": _cmd_shutdown}
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
