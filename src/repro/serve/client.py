"""Blocking client for the ``repro.serve`` NDJSON protocol.

:class:`ServeClient` wraps one TCP connection: ``submit()`` enqueues a
job and returns immediately; ``wait()`` reads events — interleaved
across however many jobs this connection has in flight — until the
requested job settles.  Rejections surface as :class:`JobRejected` with
the server's typed code, so callers can distinguish quota pressure from
protocol mistakes.

The CLI (``python -m repro.serve submit``) and the test-suite both drive
the server through this class; it has no asyncio dependency on purpose —
any thread (or a shell pipeline via the CLI) can talk to the server.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, List, Optional

from .protocol import decode, encode


class ServeError(RuntimeError):
    """Connection-level failure (server vanished, protocol breach)."""


class JobRejected(ServeError):
    """The server refused a job with a typed code (see ERROR_CODES)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class ServeClient:
    """One connection to a :class:`~repro.serve.JobServer`."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = None) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        #: job id -> terminal done/rejected event
        self._settled: Dict[str, Dict[str, Any]] = {}
        #: job id -> streamed task events (in arrival order)
        self.task_events: Dict[str, List[Dict[str, Any]]] = {}
        self.hello = self._read()
        if self.hello.get("event") != "hello":
            raise ServeError(f"expected hello, got {self.hello}")

    # ---- wire -------------------------------------------------------------

    def _read(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return decode(line)

    def _write(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(encode(message))

    def _pump(self) -> Dict[str, Any]:
        """Read one event, filing job-scoped ones; returns the event."""
        event = self._read()
        kind = event.get("event")
        job_id = event.get("id")
        if kind == "task":
            self.task_events.setdefault(job_id, []).append(event)
        elif kind in ("done", "rejected"):
            self._settled[job_id] = event
        return event

    # ---- job API ----------------------------------------------------------

    def submit(self, kind: str, params: Optional[Dict[str, Any]] = None,
               job_id: Optional[str] = None, metrics: bool = False,
               stream: bool = False) -> str:
        """Enqueue a job; returns its client-side id (pass to wait)."""
        if job_id is None:
            self._next_id += 1
            job_id = f"j{self._next_id}"
        self._write({"op": "submit", "id": job_id,
                     "job": {"kind": kind, "params": params or {}},
                     "metrics": metrics, "stream": stream})
        return job_id

    def wait(self, job_id: str,
             on_task: Optional[Callable[[Dict[str, Any]], None]] = None
             ) -> Dict[str, Any]:
        """Block until ``job_id`` settles; returns its ``done`` event.

        ``on_task`` fires for each of this job's streamed ``task``
        events (including any that arrived while waiting on other
        jobs).  Raises :class:`JobRejected` on a typed rejection.
        """
        delivered = 0
        while job_id not in self._settled:
            self._pump()
            if on_task is not None:
                events = self.task_events.get(job_id, ())
                for event in events[delivered:]:
                    on_task(event)
                delivered = len(events)
        if on_task is not None:
            for event in self.task_events.get(job_id, ())[delivered:]:
                on_task(event)
        event = self._settled.pop(job_id)
        if event["event"] == "rejected":
            raise JobRejected(event.get("code", "internal"),
                              event.get("error", ""))
        return event

    def run_job(self, kind: str, params: Optional[Dict[str, Any]] = None,
                metrics: bool = False, stream: bool = False,
                on_task: Optional[Callable[[Dict[str, Any]], None]] = None
                ) -> Dict[str, Any]:
        """submit + wait in one call."""
        return self.wait(self.submit(kind, params, metrics=metrics,
                                     stream=stream), on_task=on_task)

    # ---- control ops ------------------------------------------------------

    def ping(self) -> bool:
        self._write({"op": "ping"})
        while True:
            if self._pump().get("event") == "pong":
                return True

    def metrics(self) -> Dict[str, Any]:
        """Server-wide metrics: ``{"snapshot": ..., "prom": ...}``."""
        self._write({"op": "metrics"})
        while True:
            event = self._pump()
            if event.get("event") == "metrics":
                return event

    def shutdown(self, mode: str = "graceful") -> None:
        self._write({"op": "shutdown", "mode": mode})
        while True:
            if self._pump().get("event") == "bye":
                return

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
