"""Reproduction of DARM/CFM: Control-Flow Melding for SIMT Thread
Divergence Reduction (CGO 2022).

``import repro`` is the public API.  The facade entry points —
:func:`repro.compile`, :func:`repro.launch`, :func:`repro.meld`,
:func:`repro.analyze` (divergence analysis) and the callable
:mod:`repro.lint` package (semantic diagnostics) — cover the whole
compile-analyze-run story, and everything else a client needs
(the kernel DSL, the benchmark builders, the evaluation harness, the
Table-I baselines, pass infrastructure, printer/parser/verifier) is
re-exported here; ``__all__`` below is the supported surface.  Clients
— including this repo's own ``examples/``, ``benchmarks/`` and the
:mod:`repro.difftest` fuzzer — do not import ``repro.ir`` /
``repro.core`` / ``repro.simt`` internals directly.

Internal layout:

* :mod:`repro.ir` — from-scratch SSA IR (the LLVM substitute);
* :mod:`repro.analysis` — dominators, regions, loops, divergence analysis;
* :mod:`repro.transforms` — standard passes (SimplifyCFG, DCE, unrolling);
* :mod:`repro.core` — the paper's contribution: the CFM melding pass;
* :mod:`repro.simt` — warp-level SIMT simulator with pluggable
  reconvergence policies (IPDOM stack, stack-less min-PC);
* :mod:`repro.baselines` — tail merging and branch fusion comparators;
* :mod:`repro.kernels` — the paper's benchmark kernels in a builder DSL;
* :mod:`repro.evaluation` — harness regenerating every table and figure;
* :mod:`repro.difftest` — differential fuzzing of all of the above;
* :mod:`repro.lint` — divergence-aware static diagnostics (barrier
  divergence, shared-memory races, meld legality) with a CLI;
* :mod:`repro.obs` — span-based tracing (compile passes, melding
  decisions, warp divergence) behind :func:`repro.trace`, plus the
  aggregate-metrics registry (counters/gauges/histograms with
  Prometheus exposition) behind :func:`repro.collect_metrics`;
* :mod:`repro.scheduler` — generic multiprocess task scheduler
  (queueing, retry, timeouts, crash recovery, worker recycling) that
  the sweep engine and the job server share;
* :mod:`repro.serve` — long-running compile-and-simulate job server
  (``python -m repro.serve``) speaking an NDJSON socket protocol.
"""

__version__ = "1.1.0"

from repro.ir import (
    Function,
    Module,
    I1,
    I32,
    ICmpPredicate,
    VerificationError,
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_function,
)
from repro.ir.dot import function_to_dot, melding_stages_to_dot
from repro.analysis import (
    DivergenceInfo,
    cached_divergence,
    compute_divergence,
    compute_dominator_tree,
    compute_postdominator_tree,
    immediate_postdominator,
    invalidate_divergence,
)
from repro.transforms import (
    FixpointError,
    Pass,
    PassPipeline,
    PassResult,
    PassTiming,
    eliminate_dead_code,
    late_pipeline,
    o3_pipeline,
    optimize,
    simplify_cfg,
    speculate_hammocks,
)
from repro.core import (
    CFMConfig,
    CFMPass,
    CFMStats,
    find_meldable_region,
    most_profitable_pair,
    path_subgraphs,
    run_cfm,
    simplify_path_subgraphs,
)
from repro.baselines import (
    BranchFusionPass,
    TailMergingPass,
    fuse_branches,
    merge_tails,
)
from repro.kernels import (
    ALL_BUILDERS,
    EXTRA_BUILDERS,
    GLOBAL_I32_PTR,
    REAL_WORLD_BUILDERS,
    SHARED_I32_PTR,
    SYNTHETIC_BUILDERS,
    KernelBuilder,
    KernelCase,
)
from repro.simt import (
    DEFAULT_CONFIG,
    EXECUTORS,
    GPU,
    RECONVERGENCE_POLICIES,
    Buffer,
    MachineConfig,
    Metrics,
    ReconvergencePolicy,
    SimulationError,
    run_kernel,
)
from repro.compile_cache import (
    CACHE_ENV_VAR,
    DiskCompileCache,
    cfm_pipeline_id,
)
from repro.scheduler import (
    NO_RECYCLE,
    RecyclePolicy,
    Scheduler,
    SchedulerClosed,
    Task,
    TaskOutcome,
)
from repro.serve import (
    JobServer,
    ServeClient,
    ServerConfig,
)
from repro.evaluation import (
    Comparison,
    CompileCache,
    best_improvement_rows,
    compare,
    compile_baseline,
    compile_cfm,
    counters,
    execute,
    figure7,
    figure8,
    figures9_and_10,
    format_counters,
    format_figure8,
    format_speedups,
    format_table1,
    format_table2,
    geomean,
    run_sweep,
    table1,
    table2,
)
from repro.facade import (
    COMPILE_LEVELS,
    CompileReport,
    LaunchResult,
    analyze,
    compile,
    launch,
    meld,
)
# ``repro.lint`` is both a subpackage and a callable facade verb: the
# import binds the (callable) module object as the ``lint`` attribute.
from repro import lint
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullTracer,
    Tracer,
    collect_metrics,
    current_registry,
    current_tracer,
    trace,
    use_registry,
)

__all__ = [
    # facade verbs
    "compile", "launch", "meld", "analyze", "lint",
    "CompileReport", "LaunchResult", "COMPILE_LEVELS",
    # observability (repro.obs)
    "trace", "Tracer", "NullTracer", "current_tracer",
    "MetricsRegistry", "NULL_REGISTRY", "current_registry",
    "use_registry", "collect_metrics",
    # IR essentials
    "Function", "Module", "I1", "I32", "ICmpPredicate",
    "print_function", "print_module", "parse_function", "parse_module",
    "verify_function", "VerificationError",
    "function_to_dot", "melding_stages_to_dot",
    # analyses
    "DivergenceInfo", "compute_divergence", "cached_divergence",
    "invalidate_divergence", "compute_dominator_tree",
    "compute_postdominator_tree", "immediate_postdominator",
    # pass infrastructure & standard transforms
    "Pass", "PassResult", "PassPipeline", "PassTiming", "FixpointError",
    "optimize", "o3_pipeline", "late_pipeline",
    "simplify_cfg", "speculate_hammocks", "eliminate_dead_code",
    # CFM
    "CFMConfig", "CFMPass", "CFMStats", "run_cfm",
    "find_meldable_region", "most_profitable_pair",
    "path_subgraphs", "simplify_path_subgraphs",
    # baselines
    "merge_tails", "fuse_branches", "TailMergingPass", "BranchFusionPass",
    # kernels & DSL
    "KernelBuilder", "KernelCase", "GLOBAL_I32_PTR", "SHARED_I32_PTR",
    "ALL_BUILDERS", "SYNTHETIC_BUILDERS", "REAL_WORLD_BUILDERS",
    "EXTRA_BUILDERS",
    # simulator
    "GPU", "Buffer", "run_kernel", "MachineConfig", "Metrics",
    "SimulationError", "DEFAULT_CONFIG", "EXECUTORS",
    "ReconvergencePolicy", "RECONVERGENCE_POLICIES",
    # evaluation harness
    "CACHE_ENV_VAR", "DiskCompileCache", "cfm_pipeline_id",
    "compare", "Comparison", "CompileCache", "compile_baseline",
    "compile_cfm", "execute", "geomean", "run_sweep",
    "table1", "table2", "figure7", "figure8", "figures9_and_10",
    "counters", "best_improvement_rows",
    "format_table1", "format_table2", "format_speedups", "format_figure8",
    "format_counters",
    # scheduler & job server
    "Scheduler", "SchedulerClosed", "Task", "TaskOutcome",
    "RecyclePolicy", "NO_RECYCLE",
    "JobServer", "ServerConfig", "ServeClient",
    "__version__",
]
