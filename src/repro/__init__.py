"""Reproduction of DARM/CFM: Control-Flow Melding for SIMT Thread
Divergence Reduction (CGO 2022).

Top-level layout:

* :mod:`repro.ir` — from-scratch SSA IR (the LLVM substitute);
* :mod:`repro.analysis` — dominators, regions, loops, divergence analysis;
* :mod:`repro.transforms` — standard passes (SimplifyCFG, DCE, unrolling);
* :mod:`repro.core` — the paper's contribution: the CFM melding pass;
* :mod:`repro.simt` — warp-level SIMT simulator with IPDOM reconvergence;
* :mod:`repro.baselines` — tail merging and branch fusion comparators;
* :mod:`repro.kernels` — the paper's benchmark kernels in a builder DSL;
* :mod:`repro.evaluation` — harness regenerating every table and figure.
"""

__version__ = "1.0.0"
