"""Type system for the SSA IR.

The type system mirrors the subset of LLVM types the CFM paper relies on:
fixed-width integers (``i1`` for booleans up to ``i64``), IEEE floats, and
pointers qualified with an *address space*.  Address spaces matter for the
evaluation: the paper's Figure 10 counts memory instructions by the space
they target (vector/global, LDS/shared, flat), so pointers carry that
information through the whole pipeline.

All types are interned: constructing ``IntType(32)`` twice yields the same
object, so types compare (and hash) by identity.
"""

from __future__ import annotations

from typing import Dict, Tuple


class Type:
    """Base class for all IR types."""

    def __eq__(self, other: object) -> bool:  # interned: identity equality
        return self is other

    def __hash__(self) -> int:
        return id(self)

    # Interned objects are atomic: copying must preserve identity, or
    # identity-based equality breaks (and ``__new__`` interning rejects
    # the copy protocol's argument-less reconstruction).
    def __copy__(self) -> "Type":
        return self

    def __deepcopy__(self, memo) -> "Type":
        return self

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.bits == 1


class VoidType(Type):
    """The type of instructions that produce no value (e.g. ``store``)."""

    _instance: "VoidType" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"


class LabelType(Type):
    """The type of basic-block references (branch targets)."""

    _instance: "LabelType" = None

    def __new__(cls) -> "LabelType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "label"


class IntType(Type):
    """A fixed-width two's-complement integer type, ``i<bits>``."""

    _cache: Dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits <= 0:
            raise ValueError(f"integer width must be positive, got {bits}")
        inst = cls._cache.get(bits)
        if inst is None:
            inst = super().__new__(cls)
            inst.bits = bits
            cls._cache[bits] = inst
        return inst

    def __repr__(self) -> str:
        return f"i{self.bits}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    @property
    def unsigned_max(self) -> int:
        return (1 << self.bits) - 1


class FloatType(Type):
    """An IEEE-754 floating point type, ``f32`` or ``f64``."""

    _cache: Dict[int, "FloatType"] = {}

    def __new__(cls, bits: int) -> "FloatType":
        if bits not in (32, 64):
            raise ValueError(f"float width must be 32 or 64, got {bits}")
        inst = cls._cache.get(bits)
        if inst is None:
            inst = super().__new__(cls)
            inst.bits = bits
            cls._cache[bits] = inst
        return inst

    def __repr__(self) -> str:
        return "float" if self.bits == 32 else "double"


class AddressSpace:
    """Address-space constants, numbered as in the AMDGPU backend.

    ``FLAT`` pointers may address either global or shared memory; the
    simulator resolves them dynamically, and the metrics layer counts them
    as *flat* instructions (Figure 10 of the paper).
    """

    FLAT = 0
    GLOBAL = 1
    SHARED = 3

    _names = {FLAT: "flat", GLOBAL: "global", SHARED: "shared"}

    @classmethod
    def name(cls, space: int) -> str:
        return cls._names.get(space, f"as{space}")


class PointerType(Type):
    """A pointer to ``pointee`` in a given address space."""

    _cache: Dict[Tuple[Type, int], "PointerType"] = {}

    def __new__(cls, pointee: Type, space: int = AddressSpace.FLAT) -> "PointerType":
        key = (pointee, space)
        inst = cls._cache.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.pointee = pointee
            inst.space = space
            cls._cache[key] = inst
        return inst

    def __repr__(self) -> str:
        if self.space == AddressSpace.FLAT:
            return f"{self.pointee!r}*"
        return f"{self.pointee!r} addrspace({self.space})*"


# Commonly used singletons.
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def pointer(pointee: Type, space: int = AddressSpace.FLAT) -> PointerType:
    """Convenience constructor for :class:`PointerType`."""
    return PointerType(pointee, space)
