"""Basic blocks: ordered instruction lists that double as branch targets.

A :class:`BasicBlock` is a :class:`~repro.ir.values.Value` of label type so
it can be referenced (by name) in printed IR.  CFG edges are owned by the
terminator :class:`~repro.ir.instructions.Branch` instructions; this module
keeps the derived predecessor lists consistent whenever instructions are
inserted or removed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from .types import LABEL
from .values import Value
from .instructions import Branch, Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock(Value):
    """A maximal straight-line instruction sequence ending in a terminator."""

    def __init__(self, name: str = "") -> None:
        super().__init__(LABEL, name)
        self.parent: Optional["Function"] = None
        self._instructions: List[Instruction] = []
        self._preds: List["BasicBlock"] = []

    # ---- structure ---------------------------------------------------------

    @property
    def instructions(self) -> List[Instruction]:
        return list(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __bool__(self) -> bool:
        # A block is always truthy, even when (transiently) empty;
        # without this, __len__ would make empty blocks falsy and
        # None-checks written as `a or b` would silently misfire.
        return True

    @property
    def terminator(self) -> Optional[Instruction]:
        if self._instructions and self._instructions[-1].is_terminator:
            return self._instructions[-1]
        return None

    @property
    def phis(self) -> List[Phi]:
        result = []
        for instr in self._instructions:
            if not isinstance(instr, Phi):
                break
            result.append(instr)
        return result

    def first_non_phi(self) -> Optional[Instruction]:
        for instr in self._instructions:
            if not isinstance(instr, Phi):
                return instr
        return None

    @property
    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self._instructions if not isinstance(i, Phi)]

    # ---- CFG -----------------------------------------------------------------

    @property
    def preds(self) -> List["BasicBlock"]:
        """Predecessor blocks (unique, in edge-creation order)."""
        return list(self._preds)

    @property
    def succs(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Branch):
            # Deduplicate while preserving order (a conditional branch may
            # transiently have both edges to the same block).
            seen: List[BasicBlock] = []
            for succ in term.successors:
                if succ not in seen:
                    seen.append(succ)
            return seen
        return []

    @property
    def single_pred(self) -> Optional["BasicBlock"]:
        return self._preds[0] if len(self._preds) == 1 else None

    @property
    def single_succ(self) -> Optional["BasicBlock"]:
        succs = self.succs
        return succs[0] if len(succs) == 1 else None

    # ---- mutation ---------------------------------------------------------

    def append(self, instr: Instruction) -> Instruction:
        """Append ``instr``; links CFG edges if it is a branch."""
        if self.terminator is not None:
            raise RuntimeError(f"block {self.name} already has a terminator")
        instr.parent = self
        self._instructions.append(instr)
        if isinstance(instr, Branch):
            instr._link_successors()
        return instr

    def insert_before_terminator(self, instr: Instruction) -> Instruction:
        term = self.terminator
        if term is None:
            return self.append(instr)
        instr.parent = self
        self._instructions.insert(len(self._instructions) - 1, instr)
        return instr

    def insert_after_phis(self, instr: Instruction) -> Instruction:
        """Insert ``instr`` as the first non-φ instruction."""
        index = 0
        for i, existing in enumerate(self._instructions):
            if not isinstance(existing, Phi):
                index = i
                break
        else:
            index = len(self._instructions)
        instr.parent = self
        self._instructions.insert(index, instr)
        return instr

    def _insert_before(self, anchor: Instruction, instr: Instruction) -> None:
        index = self._instructions.index(anchor)
        instr.parent = self
        self._instructions.insert(index, instr)

    def _remove_instruction(self, instr: Instruction) -> None:
        self._instructions.remove(instr)

    def replace_terminator(self, new_term: Instruction) -> None:
        """Swap the terminator, keeping CFG edges and φ nodes consistent
        is the caller's responsibility for φs; edges are handled here."""
        old = self.terminator
        if old is not None:
            if isinstance(old, Branch):
                old._unlink_successors()
            self._instructions.pop()
            old.parent = None
            old.drop_all_operands()
        self.append(new_term)

    def erase(self) -> None:
        """Remove this block from its function, dropping all instructions.

        The block must be CFG-dead (no predecessors) and its values unused
        outside the block itself.
        """
        for instr in reversed(self._instructions):
            for user, _ in instr.uses:
                if isinstance(user, Instruction) and user.parent is not self:
                    raise RuntimeError(
                        f"erasing block {self.name}: {instr!r} still used in "
                        f"{user.parent.name if user.parent else '<detached>'}"
                    )
        for instr in reversed(self._instructions):
            if isinstance(instr, Branch):
                instr._unlink_successors()
            # Remaining intra-block uses: drop them wholesale.
            instr._uses = [u for u in instr._uses
                           if not (isinstance(u[0], Instruction) and u[0].parent is self)]
            instr.drop_all_operands()
            instr.parent = None
        self._instructions = []
        if self.parent is not None:
            self.parent._remove_block(self)

    # ---- misc -----------------------------------------------------------------

    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self._instructions)} instrs)>"
