"""IR verifier: structural and SSA well-formedness checks.

Every transform in this repository (including the CFM melder itself) is
required to leave functions in a verifiable state; the test-suite asserts
this after each pass.  Checks performed:

* every reachable block ends in exactly one terminator;
* φ nodes appear only as a leading run in their block;
* φ incoming blocks exactly match the block's predecessors;
* every definition dominates all of its uses (φ uses are checked at the
  end of the matching incoming block);
* operands belong to the same function (arguments, instructions, blocks);
* cached predecessor lists agree with the terminator edges;
* barrier calls are void: a ``llvm.gpu.barrier`` with uses is rejected;
* conditional branches branch on ``i1`` — nothing else.
"""

from __future__ import annotations

from typing import List

from .block import BasicBlock
from .function import Function, GlobalVariable
from .instructions import Branch, Call, Instruction, Phi, Ret
from .types import I1
from .values import Argument, Constant, Undef, Value


class VerificationError(Exception):
    """Raised when a function violates IR invariants."""

    def __init__(self, function: Function, problems: List[str]) -> None:
        self.function = function
        self.problems = problems
        details = "\n  - ".join(problems)
        super().__init__(
            f"function @{function.name} failed verification:\n  - {details}"
        )


def verify_function(function: Function) -> None:
    """Raise :class:`VerificationError` if ``function`` is malformed."""
    # Imported lazily: the analysis package depends on repro.ir, so a
    # module-level import here would be circular.
    from repro.analysis.cfg import reachable_blocks, verify_preds_consistent
    from repro.analysis.dominators import compute_dominator_tree

    problems: List[str] = []
    reachable = reachable_blocks(function)

    try:
        verify_preds_consistent(function)
    except AssertionError as exc:
        problems.append(str(exc))

    for block in function.blocks:
        problems.extend(_check_block_structure(block))
        problems.extend(_check_instruction_semantics(block))

    if function.entry.preds:
        problems.append(f"entry block %{function.entry.name} has predecessors")

    for block in function.blocks:
        if block not in reachable:
            continue
        problems.extend(_check_phis(block))

    if not problems:
        # Dominance checks only make sense on structurally valid IR.
        dt = compute_dominator_tree(function)
        for block in function.blocks:
            if block not in reachable:
                continue
            for instr in block:
                problems.extend(_check_operand_dominance(function, dt, instr))

    if problems:
        raise VerificationError(function, problems)


def _check_block_structure(block: BasicBlock) -> List[str]:
    problems = []
    instrs = block.instructions
    if not instrs:
        problems.append(f"block %{block.name} is empty")
        return problems
    for i, instr in enumerate(instrs):
        if instr.parent is not block:
            problems.append(
                f"instruction {instr.name or instr.opcode} in %{block.name} "
                f"has wrong parent"
            )
        if instr.is_terminator and i != len(instrs) - 1:
            problems.append(f"block %{block.name} has a terminator mid-block")
    if not instrs[-1].is_terminator:
        problems.append(f"block %{block.name} does not end in a terminator")
    seen_non_phi = False
    for instr in instrs:
        if isinstance(instr, Phi):
            if seen_non_phi:
                problems.append(
                    f"block %{block.name} has a phi after non-phi instructions"
                )
        else:
            seen_non_phi = True
    return problems


def _check_instruction_semantics(block: BasicBlock) -> List[str]:
    """Type/shape rules beyond pure structure: void barriers, i1 branch
    conditions."""
    problems = []
    for instr in block.instructions:
        if isinstance(instr, Call) and instr.is_barrier and instr.is_used:
            problems.append(
                f"barrier call in %{block.name} is void but has "
                f"{len(instr.uses)} use(s)"
            )
        if isinstance(instr, Branch) and instr.is_conditional:
            condition = instr.condition
            ctype = getattr(condition, "type", None)
            if ctype is not I1:
                problems.append(
                    f"conditional branch in %{block.name} has non-i1 "
                    f"condition ({ctype!r})"
                )
    return problems


def _check_phis(block: BasicBlock) -> List[str]:
    problems = []
    preds = set(block.preds)
    for phi in block.phis:
        incoming = phi.incoming_blocks
        if len(set(incoming)) != len(incoming):
            problems.append(
                f"phi %{phi.name} in %{block.name} has duplicate incoming blocks"
            )
        if set(incoming) != preds:
            problems.append(
                f"phi %{phi.name} in %{block.name} incoming blocks "
                f"{sorted(b.name for b in incoming)} != preds "
                f"{sorted(p.name for p in preds)}"
            )
    return problems


def _check_operand_dominance(function: Function, dt, instr: Instruction) -> List[str]:
    problems = []
    for index, operand in enumerate(instr.operands):
        if operand is None:
            problems.append(f"{instr!r} has a missing operand #{index}")
            continue
        if isinstance(operand, (Constant, Undef, GlobalVariable, BasicBlock)):
            continue
        if isinstance(operand, Argument):
            if operand not in function.args:
                problems.append(
                    f"{instr!r} uses argument %{operand.name} of another function"
                )
            continue
        if isinstance(operand, Instruction):
            if operand.parent is None or operand.parent.parent is not function:
                problems.append(
                    f"{instr!r} uses detached/foreign instruction %{operand.name}"
                )
                continue
            if not dt.contains(operand.parent):
                problems.append(
                    f"{instr!r} uses %{operand.name} defined in unreachable block"
                )
                continue
            if not dt.instruction_dominates(operand, instr, index):
                problems.append(
                    f"definition %{operand.name} (in %{operand.parent.name}) does "
                    f"not dominate use in {instr!r} (in %{instr.parent.name})"
                )
            continue
        problems.append(f"{instr!r} has unexpected operand kind {type(operand).__name__}")
    return problems


def is_well_formed(function: Function) -> bool:
    """Boolean convenience wrapper around :func:`verify_function`."""
    try:
        verify_function(function)
        return True
    except VerificationError:
        return False
