"""Low-level IR construction helper.

:class:`IRBuilder` appends instructions to a current insertion block, in
the style of ``llvm::IRBuilder``.  The structured kernel DSL
(:mod:`repro.kernels.dsl`) sits on top of this and adds control flow with
automatic φ placement.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .types import Type, IntType, FloatType, I1, I32, VOID
from .values import Constant, Undef, Value
from .block import BasicBlock
from .function import Function
from .instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    IntrinsicName,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)


class IRBuilder:
    """Appends instructions at the end of a designated basic block."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        return self.block.parent

    def _insert(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        return self.block.append(instr)

    # ---- constants -----------------------------------------------------------

    def const(self, value, type_: Type = I32) -> Constant:
        return Constant(type_, value)

    def undef(self, type_: Type) -> Undef:
        return Undef(type_)

    # ---- arithmetic ------------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp(opcode, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.ADD, lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.SUB, lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.MUL, lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.SDIV, lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.UDIV, lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.SREM, lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.UREM, lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.AND, lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.OR, lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.XOR, lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.SHL, lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.LSHR, lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.ASHR, lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.FADD, lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.FSUB, lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.FMUL, lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop(Opcode.FDIV, lhs, rhs, name)

    def fneg(self, value: Value, name: str = "") -> UnaryOp:
        return self._insert(UnaryOp(Opcode.FNEG, value, name))

    # ---- comparisons -----------------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        return self._insert(FCmp(predicate, lhs, rhs, name))

    # ---- data movement -----------------------------------------------------------

    def select(self, cond: Value, true_value: Value, false_value: Value, name: str = "") -> Select:
        return self._insert(Select(cond, true_value, false_value, name))

    def phi(self, type_: Type, name: str = "") -> Phi:
        """φ nodes are inserted at the start of the block."""
        node = Phi(type_, name)
        self.block.insert_after_phis(node)
        return node

    # ---- memory --------------------------------------------------------------------

    def load(self, ptr: Value, name: str = "") -> Load:
        return self._insert(Load(ptr, name))

    def store(self, value: Value, ptr: Value) -> Store:
        return self._insert(Store(value, ptr))

    def gep(self, base: Value, index: Value, name: str = "") -> GetElementPtr:
        return self._insert(GetElementPtr(base, index, name))

    # ---- casts ----------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._insert(Cast(opcode, value, to_type, name))

    def zext(self, value: Value, to_type: Type, name: str = "") -> Cast:
        return self.cast(Opcode.ZEXT, value, to_type, name)

    def sext(self, value: Value, to_type: Type, name: str = "") -> Cast:
        return self.cast(Opcode.SEXT, value, to_type, name)

    def trunc(self, value: Value, to_type: Type, name: str = "") -> Cast:
        return self.cast(Opcode.TRUNC, value, to_type, name)

    # ---- control flow --------------------------------------------------------------

    def br(self, dest: BasicBlock) -> Branch:
        return self._insert(Branch([dest]))

    def cond_br(self, cond: Value, true_dest: BasicBlock, false_dest: BasicBlock) -> Branch:
        return self._insert(Branch([true_dest, false_dest], cond))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._insert(Ret(value))

    # ---- calls & intrinsics ---------------------------------------------------------

    def call(self, callee: str, args: Sequence[Value], return_type: Type, name: str = "") -> Call:
        return self._insert(Call(callee, args, return_type, name))

    def thread_id(self, name: str = "tid") -> Call:
        return self.call(IntrinsicName.TID_X, [], I32, name)

    def block_dim(self, name: str = "ntid") -> Call:
        return self.call(IntrinsicName.NTID_X, [], I32, name)

    def block_id(self, name: str = "ctaid") -> Call:
        return self.call(IntrinsicName.CTAID_X, [], I32, name)

    def grid_dim(self, name: str = "nctaid") -> Call:
        return self.call(IntrinsicName.NCTAID_X, [], I32, name)

    def barrier(self) -> Call:
        return self.call(IntrinsicName.BARRIER, [], VOID)

    def smin(self, lhs: Value, rhs: Value, name: str = "") -> Call:
        return self.call(IntrinsicName.MIN, [lhs, rhs], lhs.type, name)

    def smax(self, lhs: Value, rhs: Value, name: str = "") -> Call:
        return self.call(IntrinsicName.MAX, [lhs, rhs], lhs.type, name)
