"""Instruction set of the SSA IR.

The opcode inventory covers everything the paper's kernels and the CFM
transformation need: integer/float ALU ops, comparisons, ``select``,
memory operations with address spaces, ``getelementptr``, φ nodes,
branches, calls (used for GPU intrinsics such as ``tid`` and ``barrier``),
casts and ``ret``.

Instructions are :class:`~repro.ir.values.User` objects living inside a
:class:`~repro.ir.block.BasicBlock`.  CFG edges are owned by terminator
instructions; predecessor lists on blocks are maintained by the terminator
mutation methods here, so analyses can trust ``block.preds``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from .types import (
    Type,
    IntType,
    FloatType,
    PointerType,
    VOID,
    I1,
)
from .values import User, Value

if TYPE_CHECKING:  # pragma: no cover
    from .block import BasicBlock


class Opcode:
    """String opcode constants, grouped by family."""

    # Integer arithmetic / bitwise.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    # Float arithmetic.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    # Comparisons.
    ICMP = "icmp"
    FCMP = "fcmp"
    # Data movement / selection.
    SELECT = "select"
    PHI = "phi"
    # Memory.
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"
    # Control flow.
    BR = "br"
    RET = "ret"
    # Calls & intrinsics.
    CALL = "call"
    # Casts.
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    BITCAST = "bitcast"

    INT_BINARY = frozenset(
        {ADD, SUB, MUL, SDIV, UDIV, SREM, UREM, AND, OR, XOR, SHL, LSHR, ASHR}
    )
    FLOAT_BINARY = frozenset({FADD, FSUB, FMUL, FDIV})
    BINARY = INT_BINARY | FLOAT_BINARY
    CASTS = frozenset({ZEXT, SEXT, TRUNC, SITOFP, FPTOSI, BITCAST})
    TERMINATORS = frozenset({BR, RET})


class IntrinsicName:
    """Well-known intrinsic callee names understood by the simulator."""

    TID_X = "llvm.gpu.tid.x"        # threadIdx.x
    NTID_X = "llvm.gpu.ntid.x"      # blockDim.x
    CTAID_X = "llvm.gpu.ctaid.x"    # blockIdx.x
    NCTAID_X = "llvm.gpu.nctaid.x"  # gridDim.x
    BARRIER = "llvm.gpu.barrier"    # __syncthreads()
    MIN = "llvm.smin"
    MAX = "llvm.smax"

    ALL = frozenset({TID_X, NTID_X, CTAID_X, NCTAID_X, BARRIER, MIN, MAX})
    THREAD_ID_SOURCES = frozenset({TID_X})


class Instruction(User):
    """Base class for all instructions."""

    opcode: str = "<abstract>"

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, name)
        self.parent: Optional["BasicBlock"] = None

    # ---- classification --------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.opcode in Opcode.TERMINATORS

    @property
    def may_read_memory(self) -> bool:
        return isinstance(self, Load)

    @property
    def may_write_memory(self) -> bool:
        return isinstance(self, Store)

    @property
    def has_side_effects(self) -> bool:
        """True if removing or speculating this instruction can change
        observable behaviour."""
        if isinstance(self, Store):
            return True
        if isinstance(self, Call):
            return not self.is_pure_intrinsic
        return self.is_terminator

    @property
    def is_speculatable(self) -> bool:
        """True if the instruction may run with a wider mask than its
        original path without changing behaviour (pure, non-trapping).

        Shifts by a non-constant amount are conservatively treated as
        non-speculatable: with garbage inputs the amount can exceed the
        type width, which LLVM defines as silent poison but this
        repository's simulator turns into a trap (a deliberate strictness
        — see :mod:`repro.ir.scalars`)."""
        if self.opcode in (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM):
            return False  # may trap on divide-by-zero
        if self.opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            from .values import Constant

            amount = self.operand(1)
            if not isinstance(amount, Constant):
                return False  # may trap on out-of-range shift
        if isinstance(self, (Load, Store, Phi, Branch, Ret)):
            return False
        if isinstance(self, Call):
            return self.is_pure_intrinsic
        return True

    # ---- placement --------------------------------------------------------

    @property
    def function(self):
        return self.parent.parent if self.parent is not None else None

    def erase_from_parent(self) -> None:
        """Unlink from the containing block and drop all operands."""
        if self.is_used:
            raise RuntimeError(f"erasing {self!r} which still has uses")
        if isinstance(self, Branch):
            self._unlink_successors()
        if self.parent is not None:
            self.parent._remove_instruction(self)
            self.parent = None
        self.drop_all_operands()

    def move_before(self, other: "Instruction") -> None:
        """Move this instruction immediately before ``other``."""
        if self.parent is not None:
            self.parent._remove_instruction(self)
        other.parent._insert_before(other, self)

    # ---- misc --------------------------------------------------------------

    def clone(self) -> "Instruction":
        """Create a detached copy referencing the same operand values."""
        raise NotImplementedError

    def operand_signature(self) -> Tuple:
        """A tuple identifying the *shape* of the instruction (opcode plus
        any immutable attributes such as comparison predicates).  Two
        instructions are candidates for melding only if their signatures
        match (§IV-C, `match` criteria of Rocha et al.)."""
        return (self.opcode, self.type, self.num_operands)

    def __repr__(self) -> str:
        from .printer import format_instruction

        return format_instruction(self)


class BinaryOp(Instruction):
    """Two-operand arithmetic/bitwise operation."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in Opcode.BINARY:
            raise ValueError(f"not a binary opcode: {opcode}")
        if lhs.type is not rhs.type:
            raise TypeError(f"binary op operand types differ: {lhs.type!r} vs {rhs.type!r}")
        super().__init__(lhs.type, name)
        self.opcode = opcode
        self._append_operand(lhs)
        self._append_operand(rhs)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def clone(self) -> "BinaryOp":
        return BinaryOp(self.opcode, self.lhs, self.rhs, self.name)


class UnaryOp(Instruction):
    """One-operand operation (currently only ``fneg``)."""

    def __init__(self, opcode: str, value: Value, name: str = "") -> None:
        if opcode != Opcode.FNEG:
            raise ValueError(f"not a unary opcode: {opcode}")
        super().__init__(value.type, name)
        self.opcode = opcode
        self._append_operand(value)

    def clone(self) -> "UnaryOp":
        return UnaryOp(self.opcode, self.operand(0), self.name)


class ICmpPredicate:
    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"

    ALL = frozenset({EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE})


class FCmpPredicate:
    OEQ = "oeq"
    ONE = "one"
    OLT = "olt"
    OLE = "ole"
    OGT = "ogt"
    OGE = "oge"

    ALL = frozenset({OEQ, ONE, OLT, OLE, OGT, OGE})


class ICmp(Instruction):
    """Integer comparison producing an ``i1``."""

    opcode = Opcode.ICMP

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICmpPredicate.ALL:
            raise ValueError(f"bad icmp predicate: {predicate}")
        if lhs.type is not rhs.type:
            raise TypeError(f"icmp operand types differ: {lhs.type!r} vs {rhs.type!r}")
        super().__init__(I1, name)
        self.predicate = predicate
        self._append_operand(lhs)
        self._append_operand(rhs)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.predicate, self.lhs.type)

    def clone(self) -> "ICmp":
        return ICmp(self.predicate, self.lhs, self.rhs, self.name)


class FCmp(Instruction):
    """Float comparison producing an ``i1`` (ordered predicates only)."""

    opcode = Opcode.FCMP

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in FCmpPredicate.ALL:
            raise ValueError(f"bad fcmp predicate: {predicate}")
        if lhs.type is not rhs.type:
            raise TypeError(f"fcmp operand types differ: {lhs.type!r} vs {rhs.type!r}")
        super().__init__(I1, name)
        self.predicate = predicate
        self._append_operand(lhs)
        self._append_operand(rhs)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.predicate, self.lhs.type)

    def clone(self) -> "FCmp":
        return FCmp(self.predicate, self.lhs, self.rhs, self.name)


class Select(Instruction):
    """``select i1 %c, T %a, T %b`` — the workhorse of CFM's operand
    reconciliation (§IV-D)."""

    opcode = Opcode.SELECT

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = "") -> None:
        if cond.type is not I1:
            raise TypeError("select condition must be i1")
        if true_value.type is not false_value.type:
            raise TypeError(
                f"select arms have different types: {true_value.type!r} vs {false_value.type!r}"
            )
        super().__init__(true_value.type, name)
        self._append_operand(cond)
        self._append_operand(true_value)
        self._append_operand(false_value)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)

    def clone(self) -> "Select":
        return Select(self.condition, self.true_value, self.false_value, self.name)


class Load(Instruction):
    """Memory load through a typed pointer."""

    opcode = Opcode.LOAD

    def __init__(self, ptr: Value, name: str = "") -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load pointer operand must be a pointer, got {ptr.type!r}")
        super().__init__(ptr.type.pointee, name)
        self._append_operand(ptr)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def address_space(self) -> int:
        return self.pointer.type.space

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.type, self.address_space)

    def clone(self) -> "Load":
        return Load(self.pointer, self.name)


class Store(Instruction):
    """Memory store through a typed pointer.  Produces no value."""

    opcode = Opcode.STORE

    def __init__(self, value: Value, ptr: Value) -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store pointer operand must be a pointer, got {ptr.type!r}")
        if ptr.type.pointee is not value.type:
            raise TypeError(
                f"store value type {value.type!r} does not match pointee {ptr.type.pointee!r}"
            )
        super().__init__(VOID)
        self._append_operand(value)
        self._append_operand(ptr)

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)

    @property
    def address_space(self) -> int:
        return self.pointer.type.space

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.value.type, self.address_space)

    def clone(self) -> "Store":
        return Store(self.value, self.pointer)


class GetElementPtr(Instruction):
    """Simplified ``getelementptr``: pointer plus an element index.

    ``result = base + index * sizeof(pointee)`` — enough for the flat
    arrays all the paper's kernels use.
    """

    opcode = Opcode.GEP

    def __init__(self, base: Value, index: Value, name: str = "") -> None:
        if not isinstance(base.type, PointerType):
            raise TypeError(f"gep base must be a pointer, got {base.type!r}")
        if not isinstance(index.type, IntType):
            raise TypeError(f"gep index must be an integer, got {index.type!r}")
        super().__init__(base.type, name)
        self._append_operand(base)
        self._append_operand(index)

    @property
    def base(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.type)

    def clone(self) -> "GetElementPtr":
        return GetElementPtr(self.base, self.index, self.name)


class Cast(Instruction):
    """Width/representation conversions."""

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = "") -> None:
        if opcode not in Opcode.CASTS:
            raise ValueError(f"not a cast opcode: {opcode}")
        _check_cast(opcode, value.type, to_type)
        super().__init__(to_type, name)
        self.opcode = opcode
        self._append_operand(value)

    @property
    def value(self) -> Value:
        return self.operand(0)

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.value.type, self.type)

    def clone(self) -> "Cast":
        return Cast(self.opcode, self.value, self.type, self.name)


def _check_cast(opcode: str, from_type: Type, to_type: Type) -> None:
    if opcode in (Opcode.ZEXT, Opcode.SEXT):
        ok = (
            isinstance(from_type, IntType)
            and isinstance(to_type, IntType)
            and to_type.bits > from_type.bits
        )
    elif opcode == Opcode.TRUNC:
        ok = (
            isinstance(from_type, IntType)
            and isinstance(to_type, IntType)
            and to_type.bits < from_type.bits
        )
    elif opcode == Opcode.SITOFP:
        ok = isinstance(from_type, IntType) and isinstance(to_type, FloatType)
    elif opcode == Opcode.FPTOSI:
        ok = isinstance(from_type, FloatType) and isinstance(to_type, IntType)
    else:  # bitcast: only pointer-to-pointer supported
        ok = isinstance(from_type, PointerType) and isinstance(to_type, PointerType)
    if not ok:
        raise TypeError(f"invalid {opcode} from {from_type!r} to {to_type!r}")


class Call(Instruction):
    """Call of a named callee.  Used for GPU intrinsics (thread id,
    barrier) — the simulator dispatches on the callee name."""

    opcode = Opcode.CALL

    def __init__(self, callee: str, args: Sequence[Value], return_type: Type, name: str = "") -> None:
        super().__init__(return_type, name)
        self.callee = callee
        for arg in args:
            self._append_operand(arg)

    @property
    def args(self) -> List[Value]:
        return self.operands

    @property
    def is_barrier(self) -> bool:
        return self.callee == IntrinsicName.BARRIER

    @property
    def is_pure_intrinsic(self) -> bool:
        """Pure intrinsics produce a value with no side effects."""
        return self.callee in IntrinsicName.ALL and not self.is_barrier

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.callee, self.type, self.num_operands)

    def clone(self) -> "Call":
        return Call(self.callee, self.operands, self.type, self.name)


class Phi(Instruction):
    """SSA φ node.  Incoming values are operands; incoming blocks are kept
    in a parallel list and edited through the methods here."""

    opcode = Opcode.PHI

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, name)
        self._incoming_blocks: List["BasicBlock"] = []

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self._incoming_blocks))

    @property
    def incoming_blocks(self) -> List["BasicBlock"]:
        return list(self._incoming_blocks)

    @property
    def incoming_values(self) -> List[Value]:
        return self.operands

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise TypeError(
                f"phi incoming type {value.type!r} does not match phi type {self.type!r}"
            )
        self._append_operand(value)
        self._incoming_blocks.append(block)

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"no incoming value for block {block.name}")

    def set_incoming_for(self, block: "BasicBlock", value: Value) -> None:
        for i, pred in enumerate(self._incoming_blocks):
            if pred is block:
                self.set_operand(i, value)
                return
        raise KeyError(f"no incoming value for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> Value:
        """Remove the incoming entry for ``block``; returns the old value."""
        for i, pred in enumerate(self._incoming_blocks):
            if pred is block:
                old = self.operand(i)
                self._remove_operand(i)
                del self._incoming_blocks[i]
                return old
        raise KeyError(f"no incoming value for block {block.name}")

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        for i, pred in enumerate(self._incoming_blocks):
            if pred is old:
                self._incoming_blocks[i] = new

    def clone(self) -> "Phi":
        copy = Phi(self.type, self.name)
        for value, block in self.incoming:
            copy.add_incoming(value, block)
        return copy


class Branch(Instruction):
    """Conditional or unconditional branch.

    Successor edges are owned here; creating/erasing/redirecting a branch
    keeps the predecessor lists of the involved blocks up to date.
    """

    opcode = Opcode.BR

    def __init__(
        self,
        successors: Sequence["BasicBlock"],
        condition: Optional[Value] = None,
    ) -> None:
        super().__init__(VOID)
        if condition is None:
            if len(successors) != 1:
                raise ValueError("unconditional branch takes exactly one successor")
        else:
            if condition.type is not I1:
                raise TypeError("branch condition must be i1")
            if len(successors) != 2:
                raise ValueError("conditional branch takes exactly two successors")
            self._append_operand(condition)
        self._successors: List["BasicBlock"] = list(successors)
        self._linked = False

    @property
    def is_conditional(self) -> bool:
        return self.num_operands == 1

    @property
    def condition(self) -> Value:
        if not self.is_conditional:
            raise ValueError("unconditional branch has no condition")
        return self.operand(0)

    @property
    def successors(self) -> List["BasicBlock"]:
        return list(self._successors)

    @property
    def true_successor(self) -> "BasicBlock":
        return self._successors[0]

    @property
    def false_successor(self) -> "BasicBlock":
        if not self.is_conditional:
            raise ValueError("unconditional branch has a single successor")
        return self._successors[1]

    def set_successor(self, index: int, block: "BasicBlock") -> None:
        old = self._successors[index]
        if old is block:
            return
        self._successors[index] = block
        if self._linked:
            if old not in self._successors:
                old._preds.remove(self.parent)
            if self.parent not in block._preds:
                block._preds.append(self.parent)

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        for i, succ in enumerate(self._successors):
            if succ is old:
                self.set_successor(i, new)

    def _link_successors(self) -> None:
        assert not self._linked
        self._linked = True
        for succ in self._successors:
            if self.parent not in succ._preds:
                succ._preds.append(self.parent)

    def _unlink_successors(self) -> None:
        if not self._linked:
            return
        self._linked = False
        seen = []
        for succ in self._successors:
            if succ not in seen:
                seen.append(succ)
                if self.parent in succ._preds:
                    succ._preds.remove(self.parent)

    def clone(self) -> "Branch":
        cond = self.condition if self.is_conditional else None
        return Branch(self._successors, cond)

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.is_conditional)


class Ret(Instruction):
    """Function return; kernels return void."""

    opcode = Opcode.RET

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID)
        if value is not None:
            self._append_operand(value)

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    def clone(self) -> "Ret":
        return Ret(self.value)

    def operand_signature(self) -> Tuple:
        return (self.opcode, self.num_operands)
