"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

The parser accepts the exact grammar the printer produces (an LLVM-flavoured
subset) and reconstructs a :class:`~repro.ir.function.Module`.  It exists so
tests can express CFGs compactly and so printed IR round-trips:

    parse_module(print_module(m))  ==  m   (structurally)

Forward references (loop φs, branch targets) are resolved with placeholder
values that are patched once the whole function has been read.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .types import (
    AddressSpace,
    FloatType,
    IntType,
    PointerType,
    Type,
    VOID,
    F32,
    F64,
    I1,
)
from .values import Constant, Undef, Value
from .block import BasicBlock
from .builder import IRBuilder
from .function import Function, GlobalVariable, Module
from .instructions import (
    Branch,
    Call,
    Cast,
    FCmpPredicate,
    ICmpPredicate,
    Opcode,
    Phi,
    Ret,
)


class ParseError(Exception):
    """Raised on malformed textual IR, with a line number."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


class _ForwardRef(Value):
    """Placeholder for a not-yet-defined SSA name."""

    def __init__(self, type_: Type, name: str) -> None:
        super().__init__(type_, name)


_TYPE_RE = re.compile(
    r"(?P<base>i\d+|float|double)"
    r"(?P<ptr>(?:\s+addrspace\(\d+\))?\*)?"
)
_GLOBAL_RE = re.compile(
    r"@(?P<name>[\w.]+)\s*=\s*(?P<kind>shared|global)\s*"
    r"\[(?P<count>\d+)\s*x\s*(?P<elem>i\d+|float|double)\]"
)
_DEFINE_RE = re.compile(r"define\s+void\s+@(?P<name>[\w.]+)\((?P<args>.*)\)\s*\{")
_LABEL_RE = re.compile(r"(?P<name>[\w.\-]+):(?:\s*;.*)?$")


def _parse_type(text: str) -> Type:
    text = text.strip()
    match = _TYPE_RE.fullmatch(text)
    if match is None:
        raise ValueError(f"cannot parse type {text!r}")
    base = match.group("base")
    if base == "float":
        base_type: Type = F32
    elif base == "double":
        base_type = F64
    else:
        base_type = IntType(int(base[1:]))
    ptr = match.group("ptr")
    if ptr:
        space_match = re.search(r"addrspace\((\d+)\)", ptr)
        space = int(space_match.group(1)) if space_match else AddressSpace.FLAT
        return PointerType(base_type, space)
    return base_type


class _FunctionParser:
    """Parses one ``define ... { ... }`` body."""

    def __init__(self, module: Module, function: Function) -> None:
        self.module = module
        self.function = function
        self.values: Dict[str, Value] = {f"%{a.name}": a for a in function.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.forwards: Dict[Tuple[str, Type], _ForwardRef] = {}
        self.builder = IRBuilder()

    # ---- operand handling ------------------------------------------------

    def block_ref(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            block = self.function.add_block(name)
            if block.name != name:  # name uniquing must not rename labels
                raise ValueError(f"duplicate block label %{name}")
            self.blocks[name] = block
        return self.blocks[name]

    def operand(self, text: str, type_: Type) -> Value:
        text = text.strip()
        if text == "undef":
            return Undef(type_)
        if text.startswith("%"):
            value = self.values.get(text)
            if value is not None:
                return value
            key = (text, type_)
            if key not in self.forwards:
                self.forwards[key] = _ForwardRef(type_, text[1:])
            return self.forwards[key]
        if text.startswith("@"):
            var = self.module.globals.get(text[1:])
            if var is None:
                raise ValueError(f"unknown global {text}")
            return var
        # Constant literal.
        if isinstance(type_, FloatType):
            return Constant(type_, float(text))
        if isinstance(type_, IntType):
            return Constant(type_, int(text))
        raise ValueError(f"cannot parse operand {text!r} of type {type_!r}")

    def typed_operand(self, text: str) -> Value:
        """Parse ``<type> <ref>``."""
        text = text.strip()
        parts = text.rsplit(None, 1)
        if len(parts) != 2:
            raise ValueError(f"expected typed operand, got {text!r}")
        return self.operand(parts[1], _parse_type(parts[0]))

    def define(self, name: Optional[str], value: Value) -> None:
        if name is None:
            return
        key = f"%{name}"
        if key in self.values:
            raise ValueError(f"redefinition of {key}")
        value.name = name
        self.values[key] = value

    def resolve_forwards(self) -> None:
        for (ref, _type), placeholder in self.forwards.items():
            real = self.values.get(ref)
            if real is None:
                raise ValueError(f"undefined value {ref}")
            placeholder.replace_all_uses_with(real)

    # ---- instruction parsing ----------------------------------------------

    def parse_instruction(self, line: str) -> None:
        line = line.split(";")[0].strip()
        name: Optional[str] = None
        body = line
        assign = re.match(r"%(?P<name>[\w.\-]+)\s*=\s*(?P<body>.*)", line)
        if assign:
            name = assign.group("name")
            body = assign.group("body")

        opcode = body.split(None, 1)[0]
        rest = body[len(opcode):].strip()

        if opcode in Opcode.BINARY:
            type_, lhs, rhs = self._split_type_two(rest)
            self.define(name, self.builder.binop(opcode, self.operand(lhs, type_),
                                                 self.operand(rhs, type_)))
        elif opcode == Opcode.FNEG:
            parts = rest.split(None, 1)
            type_ = _parse_type(parts[0])
            self.define(name, self.builder.fneg(self.operand(parts[1], type_)))
        elif opcode == Opcode.ICMP:
            pred, tail = rest.split(None, 1)
            type_, lhs, rhs = self._split_type_two(tail)
            self.define(name, self.builder.icmp(pred, self.operand(lhs, type_),
                                                self.operand(rhs, type_)))
        elif opcode == Opcode.FCMP:
            pred, tail = rest.split(None, 1)
            type_, lhs, rhs = self._split_type_two(tail)
            self.define(name, self.builder.fcmp(pred, self.operand(lhs, type_),
                                                self.operand(rhs, type_)))
        elif opcode == Opcode.SELECT:
            cond_text, true_text, false_text = self._split_commas(rest, 3)
            cond = self.operand(cond_text.split()[-1], I1)
            self.define(name, self.builder.select(
                cond, self.typed_operand(true_text), self.typed_operand(false_text)))
        elif opcode == Opcode.LOAD:
            _result_type, ptr_text = self._split_commas(rest, 2)
            self.define(name, self.builder.load(self.typed_operand(ptr_text)))
        elif opcode == Opcode.STORE:
            value_text, ptr_text = self._split_commas(rest, 2)
            self.builder.store(self.typed_operand(value_text), self.typed_operand(ptr_text))
        elif opcode == Opcode.GEP:
            _pointee, base_text, index_text = self._split_commas(rest, 3)
            self.define(name, self.builder.gep(self.typed_operand(base_text),
                                               self.typed_operand(index_text)))
        elif opcode in Opcode.CASTS:
            value_text, to_text = rest.rsplit(" to ", 1)
            self.define(name, self.builder.cast(opcode, self.typed_operand(value_text),
                                                _parse_type(to_text)))
        elif opcode == Opcode.CALL:
            match = re.match(r"(?P<type>.+?)\s+@(?P<callee>[\w.]+)\((?P<args>.*)\)", rest)
            if match is None:
                raise ValueError(f"cannot parse call {rest!r}")
            type_text = match.group("type").strip()
            return_type = VOID if type_text == "void" else _parse_type(type_text)
            args_text = match.group("args").strip()
            args = [self.typed_operand(a) for a in self._split_commas(args_text)] \
                if args_text else []
            self.define(name, self.builder.call(match.group("callee"), args, return_type))
        elif opcode == Opcode.PHI:
            # The type may contain spaces (pointer address spaces): it is
            # everything before the first incoming-pair bracket.
            bracket = rest.index("[")
            type_ = _parse_type(rest[:bracket].strip())
            phi = self.builder.phi(type_)
            for pair in re.finditer(r"\[\s*(?P<val>[^,\]]+),\s*%(?P<block>[\w.\-]+)\s*\]",
                                    rest[bracket:]):
                phi.add_incoming(self.operand(pair.group("val").strip(), type_),
                                 self.block_ref(pair.group("block")))
            self.define(name, phi)
        elif opcode == Opcode.BR:
            labels = re.findall(r"label\s+%([\w.\-]+)", rest)
            if rest.startswith("label"):
                self.builder.br(self.block_ref(labels[0]))
            else:
                cond_text = rest.split(",")[0].split()[-1]
                cond = self.operand(cond_text, I1)
                self.builder.cond_br(cond, self.block_ref(labels[0]),
                                     self.block_ref(labels[1]))
        elif opcode == Opcode.RET:
            if rest == "void":
                self.builder.ret()
            else:
                self.builder.ret(self.typed_operand(rest))
        else:
            raise ValueError(f"unknown opcode {opcode!r}")

    @staticmethod
    def _split_commas(text: str, expect: Optional[int] = None) -> List[str]:
        parts = [p.strip() for p in text.split(",")]
        if expect is not None and len(parts) != expect:
            raise ValueError(f"expected {expect} comma-separated parts in {text!r}")
        return parts

    def _split_type_two(self, text: str) -> Tuple[Type, str, str]:
        """Parse ``<type> <a>, <b>``."""
        lhs_text, rhs_text = self._split_commas(text, 2)
        type_text, lhs_ref = lhs_text.rsplit(None, 1)
        return _parse_type(type_text), lhs_ref, rhs_text


def parse_module(text: str) -> Module:
    """Parse a full module (globals + functions)."""
    module = Module()
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped.startswith(";"):
            # The printer emits the module name as a leading comment;
            # recover it so print -> parse -> print is a true fixpoint.
            header = re.match(r";\s*module\s+(\S+)\s*$", stripped)
            if header:
                module.name = header.group(1)
            line = ""
        else:
            line = stripped.split(";")[0].strip()
        if not line:
            i += 1
            continue
        gmatch = _GLOBAL_RE.match(line)
        if gmatch:
            space = AddressSpace.SHARED if gmatch.group("kind") == "shared" \
                else AddressSpace.GLOBAL
            elem = _parse_type(gmatch.group("elem"))
            module.add_global(GlobalVariable(gmatch.group("name"),
                                             PointerType(elem, space),
                                             int(gmatch.group("count"))))
            i += 1
            continue
        dmatch = _DEFINE_RE.match(line)
        if dmatch:
            i = _parse_function_body(module, dmatch, lines, i + 1)
            continue
        raise ParseError("unexpected top-level line", i + 1, lines[i])
    return module


def _parse_function_body(module: Module, dmatch, lines: List[str], start: int) -> int:
    arg_types: List[Type] = []
    arg_names: List[str] = []
    args_text = dmatch.group("args").strip()
    if args_text:
        for arg in args_text.split(","):
            type_text, name_text = arg.strip().rsplit(None, 1)
            arg_types.append(_parse_type(type_text))
            arg_names.append(name_text.lstrip("%"))
    function = Function(dmatch.group("name"), arg_types, arg_names)
    module.add_function(function)
    parser = _FunctionParser(module, function)

    i = start
    current: Optional[BasicBlock] = None
    label_order: List[BasicBlock] = []
    while i < len(lines):
        raw = lines[i]
        line = raw.split(";")[0].rstrip() if not raw.strip().startswith(";") else ""
        stripped = line.strip()
        if not stripped:
            i += 1
            continue
        if stripped == "}":
            try:
                parser.resolve_forwards()
            except ValueError as exc:
                raise ParseError(str(exc), i + 1, raw) from exc
            # Blocks may have been created out of order by forward branch
            # references; restore textual (label) order so the entry block
            # is first and printing round-trips.
            function._blocks.sort(key=label_order.index)
            return i + 1
        label = _LABEL_RE.match(stripped)
        if label and not raw.startswith("  "):
            current = parser.block_ref(label.group("name"))
            label_order.append(current)
            parser.builder.position_at_end(current)
            i += 1
            continue
        if current is None:
            raise ParseError("instruction before first label", i + 1, raw)
        try:
            parser.parse_instruction(stripped)
        except ValueError as exc:
            raise ParseError(str(exc), i + 1, raw) from exc
        i += 1
    raise ParseError("unterminated function body", len(lines), "")


def parse_function(text: str) -> Function:
    """Parse a module containing a single function and return it."""
    module = parse_module(text)
    if len(module.functions) != 1:
        raise ValueError("expected exactly one function")
    return next(iter(module.functions.values()))
