"""Functions, modules, and memory objects (kernel parameters & shared arrays).

A :class:`Function` models one GPU kernel: a CFG of basic blocks plus typed
arguments.  A :class:`Module` groups kernels with the global/shared memory
objects they reference (the paper's kernels stage data in LDS — shared
memory — which the simulator and the Figure-10 counters must distinguish
from global memory).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence

from .types import Type, PointerType, AddressSpace
from .values import Argument, Value
from .block import BasicBlock
from .instructions import Instruction


class GlobalVariable(Value):
    """A module-level array, e.g. a ``__shared__`` buffer.

    ``element_count`` is in elements of ``type.pointee``.  Shared variables
    get one copy per thread block in the simulator; global variables one
    copy per grid.
    """

    def __init__(self, name: str, type_: PointerType, element_count: int) -> None:
        if not isinstance(type_, PointerType):
            raise TypeError("global variables are pointer-typed")
        super().__init__(type_, name)
        self.element_count = element_count

    @property
    def is_shared(self) -> bool:
        return self.type.space == AddressSpace.SHARED

    def ref(self) -> str:
        return f"@{self.name}"


class Function:
    """A kernel: argument list + CFG. The first block is the entry."""

    def __init__(self, name: str, arg_types: Sequence[Type], arg_names: Sequence[str]) -> None:
        if len(arg_types) != len(arg_names):
            raise ValueError("argument types and names must have equal length")
        self.name = name
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(arg_types, arg_names))
        ]
        self._blocks: List[BasicBlock] = []
        self._name_counter = itertools.count()
        self._taken_names: Dict[str, int] = {}
        self.module: Optional["Module"] = None

    # ---- blocks -------------------------------------------------------------

    @property
    def blocks(self) -> List[BasicBlock]:
        return list(self._blocks)

    @property
    def entry(self) -> BasicBlock:
        if not self._blocks:
            raise RuntimeError(f"function {self.name} has no blocks")
        return self._blocks[0]

    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name or "bb"))
        block.parent = self
        if after is None:
            self._blocks.append(block)
        else:
            self._blocks.insert(self._blocks.index(after) + 1, block)
        return block

    def _remove_block(self, block: BasicBlock) -> None:
        self._blocks.remove(block)
        block.parent = None

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self._blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name} in {self.name}")

    def arg_by_name(self, name: str) -> Argument:
        for arg in self.args:
            if arg.name == name:
                return arg
        raise KeyError(f"no argument named {name} in {self.name}")

    # ---- names ---------------------------------------------------------------

    def unique_name(self, base: str) -> str:
        """Return ``base`` or ``base.N`` so block/value names stay unique."""
        base = base or "v"
        if base not in self._taken_names:
            self._taken_names[base] = 0
            return base
        while True:
            self._taken_names[base] += 1
            candidate = f"{base}.{self._taken_names[base]}"
            if candidate not in self._taken_names:
                self._taken_names[candidate] = 0
                return candidate

    def assign_names(self) -> None:
        """Give every unnamed instruction a numeric name and deduplicate
        clashing names (cloned instructions keep their original name), so
        printed IR is unambiguous and re-parseable."""
        counter = itertools.count()
        seen = {arg.name for arg in self.args}
        for block in self._blocks:
            for instr in block:
                if instr.type.is_void:
                    continue
                if not instr.name:
                    instr.name = str(next(counter))
                base, n = instr.name, 1
                while instr.name in seen:
                    instr.name = f"{base}.{n}"
                    n += 1
                seen.add(instr.name)

    # ---- iteration -------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self._blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self._blocks)} blocks)>"


class Module:
    """A collection of kernels and the memory objects they reference."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name}")
        self.functions[function.name] = function
        function.module = self
        return function

    def add_global(self, var: GlobalVariable) -> GlobalVariable:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name}")
        self.globals[var.name] = var
        return var

    def function(self, name: str) -> Function:
        return self.functions[name]

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self.functions)} functions)>"
