"""Graphviz DOT export of CFGs.

Produces the kind of figure the paper uses to explain the pipeline
(Figure 5): one record-shaped node per basic block with its instructions,
true/false edge labels, and optional highlighting — e.g. divergent
branches red, melded blocks green.

No Graphviz binding is needed; the output is plain DOT text:

    from repro.ir.dot import function_to_dot
    open("kernel.dot", "w").write(function_to_dot(kernel))
    # then: dot -Tpdf kernel.dot -o kernel.pdf
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from .block import BasicBlock
from .function import Function
from .instructions import Branch
from .printer import format_instruction


def _escape(text: str) -> str:
    for char, replacement in (("\\", "\\\\"), ("{", "\\{"), ("}", "\\}"),
                              ("<", "\\<"), (">", "\\>"), ("|", "\\|"),
                              ('"', '\\"')):
        text = text.replace(char, replacement)
    return text


def function_to_dot(
    function: Function,
    highlight: Optional[Iterable[BasicBlock]] = None,
    divergent: Optional[Iterable[BasicBlock]] = None,
    max_instructions: int = 12,
) -> str:
    """Render the function's CFG as DOT.

    ``highlight`` blocks are filled green (melded blocks); ``divergent``
    blocks get a red border (blocks ending in a divergent branch).
    """
    function.assign_names()
    highlight_set: Set[BasicBlock] = set(highlight or ())
    divergent_set: Set[BasicBlock] = set(divergent or ())

    lines = [
        f'digraph "{function.name}" {{',
        '  node [shape=record, fontname="monospace", fontsize=9];',
        '  edge [fontname="monospace", fontsize=8];',
    ]
    for block in function.blocks:
        body = [f"%{block.name}:"]
        instrs = block.instructions
        shown = instrs[:max_instructions]
        body.extend(f"  {format_instruction(i)}" for i in shown)
        if len(instrs) > len(shown):
            body.append(f"  ... (+{len(instrs) - len(shown)} more)")
        label = "\\l".join(_escape(line) for line in body) + "\\l"

        attrs = [f'label="{label}"']
        if block in highlight_set:
            attrs.append('style=filled, fillcolor="#c8e6c9"')
        if block in divergent_set:
            attrs.append('color="#c62828", penwidth=2')
        lines.append(f'  "{block.name}" [{", ".join(attrs)}];')

    for block in function.blocks:
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        if term.is_conditional:
            lines.append(f'  "{block.name}" -> '
                         f'"{term.true_successor.name}" [label="T"];')
            lines.append(f'  "{block.name}" -> '
                         f'"{term.false_successor.name}" [label="F"];')
        else:
            lines.append(f'  "{block.name}" -> "{term.true_successor.name}";')
    lines.append("}")
    return "\n".join(lines)


def melding_stages_to_dot(function: Function) -> str:
    """Convenience: DOT of ``function`` with divergent branches marked
    (uses the divergence analysis) — the 'before' view of Figure 5."""
    from repro.analysis.divergence import compute_divergence

    info = compute_divergence(function)
    return function_to_dot(function, divergent=info.divergent_branch_blocks)
