"""Command-line front door to the IR tooling:

    python -m repro.ir kernel.ll                  # parse + verify + print
    python -m repro.ir kernel.ll --optimize       # run the -O3 pipeline
    python -m repro.ir kernel.ll --cfm            # ... then control-flow meld
    python -m repro.ir kernel.ll --dot out.dot    # export the CFG
    python -m repro.ir kernel.ll --divergence     # annotate divergent branches

Input files use the textual IR dialect of :mod:`repro.ir.printer` (an
LLVM-flavoured subset; see tests/ir/test_parser_printer.py for examples).
"""

from __future__ import annotations

import argparse
import sys

from .parser import ParseError, parse_module
from .printer import print_module
from .verifier import VerificationError, verify_function


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ir",
        description="Parse, verify, optimize and export textual IR.")
    parser.add_argument("input", help="textual IR file ('-' for stdin)")
    parser.add_argument("--optimize", action="store_true",
                        help="run the -O3 pipeline on every function")
    parser.add_argument("--cfm", action="store_true",
                        help="run control-flow melding (implies a verify)")
    parser.add_argument("--dot", metavar="FILE",
                        help="write a Graphviz CFG (first function)")
    parser.add_argument("--divergence", action="store_true",
                        help="report divergent branches per function")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the printed module")
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.input == "-" else open(args.input).read()
    try:
        module = parse_module(text)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 1

    for function in module.functions.values():
        try:
            verify_function(function)
        except VerificationError as exc:
            print(f"verification failed: {exc}", file=sys.stderr)
            return 2

    if args.optimize:
        from repro.transforms import optimize

        for function in module.functions.values():
            optimize(function)

    if args.cfm:
        from repro.core import run_cfm

        for function in module.functions.values():
            stats = run_cfm(function)
            print(f"; @{function.name}: {len(stats.melds)} melds",
                  file=sys.stderr)

    if args.divergence:
        from repro.analysis import compute_divergence

        for function in module.functions.values():
            info = compute_divergence(function)
            names = sorted(b.name for b in info.divergent_branch_blocks)
            print(f"; @{function.name} divergent branches: "
                  f"{', '.join(names) or '(none)'}", file=sys.stderr)

    if args.dot:
        from .dot import melding_stages_to_dot

        first = next(iter(module.functions.values()))
        with open(args.dot, "w") as handle:
            handle.write(melding_stages_to_dot(first))
        print(f"; wrote {args.dot}", file=sys.stderr)

    if not args.quiet:
        print(print_module(module))
    return 0


if __name__ == "__main__":
    sys.exit(main())
