"""Core SSA value hierarchy: values, users, constants, and use lists.

The design mirrors LLVM's ``Value``/``User`` split:

* every :class:`Value` knows the set of :class:`User` objects that reference
  it (its *uses*), and
* every :class:`User` holds an ordered operand list.

Use lists are what make the melding transformation practical — CFM's code
generation needs ``replace_all_uses_with`` (RAUW) when aligned instructions
collapse into a single melded instruction.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, TYPE_CHECKING

from .types import Type, IntType, FloatType, I1

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .block import BasicBlock


class Value:
    """Anything that can appear as an operand: constants, arguments,
    instructions, basic blocks (as branch targets), globals."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        # Each entry is (user, operand_index); a user may appear more than
        # once if it references this value through several operand slots.
        self._uses: List[Tuple["User", int]] = []

    # ---- use-list management -------------------------------------------

    @property
    def uses(self) -> List[Tuple["User", int]]:
        """Snapshot of (user, operand index) pairs referencing this value."""
        return list(self._uses)

    @property
    def users(self) -> List["User"]:
        """Users referencing this value (deduplicated, in first-use order)."""
        seen = []
        for user, _ in self._uses:
            if user not in seen:
                seen.append(user)
        return seen

    def _add_use(self, user: "User", index: int) -> None:
        self._uses.append((user, index))

    def _remove_use(self, user: "User", index: int) -> None:
        self._uses.remove((user, index))

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    @property
    def is_used(self) -> bool:
        return bool(self._uses)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every operand slot referencing ``self`` to ``new``."""
        if new is self:
            return
        for user, index in self.uses:
            user.set_operand(index, new)

    # ---- misc ------------------------------------------------------------

    def ref(self) -> str:
        """Short printable reference (e.g. ``%x`` or ``42``)."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}>"


class User(Value):
    """A value that references other values through an operand list."""

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, name)
        self._operands: List[Optional[Value]] = []

    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        if old is not None:
            old._remove_use(self, index)
        self._operands[index] = value
        if value is not None:
            value._add_use(self, index)

    def _append_operand(self, value: Value) -> int:
        index = len(self._operands)
        self._operands.append(None)
        self.set_operand(index, value)
        return index

    def _remove_operand(self, index: int) -> None:
        """Remove an operand slot, shifting later slots down.

        Only φ nodes use this (incoming edges disappear when predecessors
        are removed); use-list indices for shifted operands are rewritten.
        """
        old = self._operands[index]
        if old is not None:
            old._remove_use(self, index)
        del self._operands[index]
        for i in range(index, len(self._operands)):
            op = self._operands[i]
            if op is not None:
                op._uses.remove((self, i + 1))
                op._uses.append((self, i))

    def drop_all_operands(self) -> None:
        """Detach every operand (used when deleting an instruction)."""
        for index, op in enumerate(self._operands):
            if op is not None:
                op._remove_use(self, index)
        self._operands = []

    def __iter__(self) -> Iterator[Value]:
        return iter(self._operands)


class Constant(Value):
    """An immediate constant of integer or float type."""

    def __init__(self, type_: Type, value) -> None:
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = _wrap_int(int(value), type_.bits)
        elif isinstance(type_, FloatType):
            value = float(value)
        else:
            raise TypeError(f"constants must be int or float typed, got {type_!r}")
        self.value = value

    def ref(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"<Constant {self.type!r} {self.value}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Undef(Value):
    """LLVM-style ``undef``: a value with no defined contents.

    CFM's unpredication and pre-processing steps introduce ``undef``
    incoming values on φ nodes for paths that never use the value
    (§IV-E/IV-F of the paper).  The simulator traps if an ``undef`` ever
    flows into an observable operation, which is stricter than LLVM and
    doubles as a correctness check on the transformation.
    """

    def __init__(self, type_: Type) -> None:
        super().__init__(type_)

    def ref(self) -> str:
        return "undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Undef) and other.type is self.type

    def __hash__(self) -> int:
        return hash((Undef, self.type))


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index


def const_int(value: int, type_: IntType) -> Constant:
    return Constant(type_, value)

def const_bool(value: bool) -> Constant:
    return Constant(I1, 1 if value else 0)


def _wrap_int(value: int, bits: int) -> int:
    """Wrap ``value`` to the signed range of an ``bits``-wide integer."""
    mask = (1 << bits) - 1
    value &= mask
    if bits > 1 and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value
