"""SSA intermediate representation.

This subpackage is a self-contained, LLVM-like SSA IR: types, values with
use lists, instructions, basic blocks, functions/modules, a builder, a
printer/parser pair, and a verifier.  It is the substrate on which the
CFM control-flow melding transformation (:mod:`repro.core`) operates.
"""

from .types import (
    Type,
    VoidType,
    LabelType,
    IntType,
    FloatType,
    PointerType,
    AddressSpace,
    VOID,
    LABEL,
    I1,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
    pointer,
)
from .values import Value, User, Constant, Undef, Argument, const_int, const_bool
from .instructions import (
    Opcode,
    IntrinsicName,
    Instruction,
    BinaryOp,
    UnaryOp,
    ICmp,
    FCmp,
    ICmpPredicate,
    FCmpPredicate,
    Select,
    Load,
    Store,
    GetElementPtr,
    Cast,
    Call,
    Phi,
    Branch,
    Ret,
)
from .block import BasicBlock
from .function import Function, Module, GlobalVariable
from .builder import IRBuilder
from .printer import print_function, print_module, format_instruction
from .parser import parse_function, parse_module
from .verifier import VerificationError, verify_function, is_well_formed

__all__ = [
    "Type", "VoidType", "LabelType", "IntType", "FloatType", "PointerType",
    "AddressSpace", "VOID", "LABEL", "I1", "I8", "I16", "I32", "I64", "F32",
    "F64", "pointer",
    "Value", "User", "Constant", "Undef", "Argument", "const_int", "const_bool",
    "Opcode", "IntrinsicName", "Instruction", "BinaryOp", "UnaryOp", "ICmp",
    "FCmp", "ICmpPredicate", "FCmpPredicate", "Select", "Load", "Store",
    "GetElementPtr", "Cast", "Call", "Phi", "Branch", "Ret",
    "BasicBlock", "Function", "Module", "GlobalVariable",
    "IRBuilder",
    "print_function", "print_module", "format_instruction",
    "parse_function", "parse_module",
    "VerificationError", "verify_function", "is_well_formed",
]
