"""Scalar evaluation semantics shared by the simulator and constant folding.

Integer ops use two's-complement wraparound at the type's width; division
semantics are C-style (truncation toward zero); shifts of >= width and
division by zero raise :class:`EvalError` (LLVM poison/UB made loud).
"""

from __future__ import annotations

from typing import Callable, Dict

from .types import FloatType, IntType, Type


class EvalError(Exception):
    """Undefined-behaviour trap during scalar evaluation."""


def wrap(value: int, type_: IntType) -> int:
    """Wrap to the signed range of the integer type."""
    mask = (1 << type_.bits) - 1
    value &= mask
    if type_.bits > 1 and value >= (1 << (type_.bits - 1)):
        value -= 1 << type_.bits
    return value


def unsigned(value: int, type_: IntType) -> int:
    return value & ((1 << type_.bits) - 1)


def eval_binary(opcode: str, lhs, rhs, type_: Type):
    """Evaluate a binary opcode on Python scalars."""
    from .instructions import Opcode

    if isinstance(type_, FloatType):
        if opcode == Opcode.FADD:
            return lhs + rhs
        if opcode == Opcode.FSUB:
            return lhs - rhs
        if opcode == Opcode.FMUL:
            return lhs * rhs
        if opcode == Opcode.FDIV:
            if rhs == 0.0:
                if lhs == 0.0:
                    return float("nan")
                return float("inf") if lhs > 0 else float("-inf")
            return lhs / rhs
        raise EvalError(f"bad float opcode {opcode}")

    bits = type_.bits
    if opcode == Opcode.ADD:
        return wrap(lhs + rhs, type_)
    if opcode == Opcode.SUB:
        return wrap(lhs - rhs, type_)
    if opcode == Opcode.MUL:
        return wrap(lhs * rhs, type_)
    if opcode in (Opcode.SDIV, Opcode.SREM):
        if rhs == 0:
            raise EvalError("integer division by zero")
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        if opcode == Opcode.SDIV:
            return wrap(quotient, type_)
        return wrap(lhs - quotient * rhs, type_)
    if opcode in (Opcode.UDIV, Opcode.UREM):
        ul, ur = unsigned(lhs, type_), unsigned(rhs, type_)
        if ur == 0:
            raise EvalError("integer division by zero")
        return wrap(ul // ur if opcode == Opcode.UDIV else ul % ur, type_)
    if opcode == Opcode.AND:
        return wrap(lhs & rhs, type_)
    if opcode == Opcode.OR:
        return wrap(lhs | rhs, type_)
    if opcode == Opcode.XOR:
        return wrap(lhs ^ rhs, type_)
    if opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        shift = unsigned(rhs, type_)
        if shift >= bits:
            raise EvalError(f"shift amount {shift} >= width {bits}")
        if opcode == Opcode.SHL:
            return wrap(lhs << shift, type_)
        if opcode == Opcode.LSHR:
            return wrap(unsigned(lhs, type_) >> shift, type_)
        return wrap(lhs >> shift, type_)
    raise EvalError(f"bad integer opcode {opcode}")


_SIGNED_ICMP: Dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


def eval_icmp(predicate: str, lhs: int, rhs: int, type_: IntType) -> int:
    if predicate in _SIGNED_ICMP:
        return 1 if _SIGNED_ICMP[predicate](lhs, rhs) else 0
    ul, ur = unsigned(lhs, type_), unsigned(rhs, type_)
    result = {
        "ult": ul < ur,
        "ule": ul <= ur,
        "ugt": ul > ur,
        "uge": ul >= ur,
    }[predicate]
    return 1 if result else 0


def eval_fcmp(predicate: str, lhs: float, rhs: float) -> int:
    result = {
        "oeq": lhs == rhs,
        "one": lhs != rhs,
        "olt": lhs < rhs,
        "ole": lhs <= rhs,
        "ogt": lhs > rhs,
        "oge": lhs >= rhs,
    }[predicate]
    return 1 if result else 0


def eval_cast(opcode: str, value, from_type: Type, to_type: Type):
    from .instructions import Opcode

    if opcode == Opcode.ZEXT:
        return unsigned(value, from_type)
    if opcode == Opcode.SEXT:
        return value
    if opcode == Opcode.TRUNC:
        return wrap(value, to_type)
    if opcode == Opcode.SITOFP:
        return float(value)
    if opcode == Opcode.FPTOSI:
        return wrap(int(value), to_type)
    if opcode == Opcode.BITCAST:
        return value
    raise EvalError(f"bad cast {opcode}")
