"""LLVM-style textual printer for modules, functions and instructions.

The printed form round-trips through :mod:`repro.ir.parser`, which the
tests rely on.  Example output::

    define void @kernel(i32 addrspace(1)* %data, i32 %n) {
    entry:
      %tid = call i32 @llvm.gpu.tid.x()
      %cmp = icmp slt i32 %tid, %n
      br i1 %cmp, label %then, label %merge
    ...
"""

from __future__ import annotations

from typing import List

from .values import Constant, Undef, Argument, Value
from .block import BasicBlock
from .function import Function, GlobalVariable, Module
from .instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)


def _value_ref(value: Value) -> str:
    """Typed reference to a value as an operand, e.g. ``i32 %x``."""
    return f"{value.type!r} {_name_ref(value)}"


def _name_ref(value: Value) -> str:
    if isinstance(value, Undef):
        return "undef"
    if isinstance(value, Constant):
        return repr(value.value) if isinstance(value.value, float) else str(value.value)
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, BasicBlock):
        return f"%{value.name}"
    return f"%{value.name}" if value.name else "%<anon>"


def format_instruction(instr: Instruction) -> str:
    """Render one instruction, without indentation."""
    lhs = f"%{instr.name} = " if not instr.type.is_void and instr.name else (
        "" if instr.type.is_void else "%<anon> = "
    )
    if isinstance(instr, BinaryOp):
        return f"{lhs}{instr.opcode} {instr.type!r} {_name_ref(instr.lhs)}, {_name_ref(instr.rhs)}"
    if isinstance(instr, UnaryOp):
        return f"{lhs}{instr.opcode} {instr.type!r} {_name_ref(instr.operand(0))}"
    if isinstance(instr, ICmp):
        return (
            f"{lhs}icmp {instr.predicate} {instr.lhs.type!r} "
            f"{_name_ref(instr.lhs)}, {_name_ref(instr.rhs)}"
        )
    if isinstance(instr, FCmp):
        return (
            f"{lhs}fcmp {instr.predicate} {instr.lhs.type!r} "
            f"{_name_ref(instr.lhs)}, {_name_ref(instr.rhs)}"
        )
    if isinstance(instr, Select):
        return (
            f"{lhs}select i1 {_name_ref(instr.condition)}, "
            f"{_value_ref(instr.true_value)}, {_value_ref(instr.false_value)}"
        )
    if isinstance(instr, Load):
        return f"{lhs}load {instr.type!r}, {_value_ref(instr.pointer)}"
    if isinstance(instr, Store):
        return f"store {_value_ref(instr.value)}, {_value_ref(instr.pointer)}"
    if isinstance(instr, GetElementPtr):
        return (
            f"{lhs}getelementptr {instr.base.type.pointee!r}, "
            f"{_value_ref(instr.base)}, {_value_ref(instr.index)}"
        )
    if isinstance(instr, Cast):
        return f"{lhs}{instr.opcode} {_value_ref(instr.value)} to {instr.type!r}"
    if isinstance(instr, Call):
        args = ", ".join(_value_ref(a) for a in instr.args)
        return f"{lhs}call {instr.type!r} @{instr.callee}({args})"
    if isinstance(instr, Phi):
        pairs = ", ".join(
            f"[ {_name_ref(v)}, %{b.name} ]" for v, b in instr.incoming
        )
        return f"{lhs}phi {instr.type!r} {pairs}"
    if isinstance(instr, Branch):
        if instr.is_conditional:
            return (
                f"br i1 {_name_ref(instr.condition)}, "
                f"label %{instr.true_successor.name}, label %{instr.false_successor.name}"
            )
        return f"br label %{instr.true_successor.name}"
    if isinstance(instr, Ret):
        if instr.value is None:
            return "ret void"
        return f"ret {_value_ref(instr.value)}"
    return f"{lhs}<unknown {type(instr).__name__}>"


def print_function(function: Function) -> str:
    function.assign_names()
    args = ", ".join(f"{a.type!r} %{a.name}" for a in function.args)
    lines: List[str] = [f"define void @{function.name}({args}) {{"]
    for block in function.blocks:
        # Sorted so the comment (and thus whole-function printing) is
        # deterministic regardless of edge-creation order.
        preds = ", ".join(f"%{p.name}" for p in sorted(block.preds,
                                                       key=lambda b: b.name))
        suffix = f"  ; preds = {preds}" if preds else ""
        lines.append(f"{block.name}:{suffix}")
        for instr in block:
            lines.append(f"  {format_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    lines: List[str] = [f"; module {module.name}"]
    for var in module.globals.values():
        kind = "shared" if var.is_shared else "global"
        lines.append(
            f"@{var.name} = {kind} [{var.element_count} x {var.type.pointee!r}]"
        )
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines)
