"""``repro.obs.metrics`` — the aggregate-metrics registry.

The span tracer (:mod:`repro.obs.tracer`) answers "what happened in this
one run"; this module answers the complementary, serving-oriented
question: "what is the system doing in aggregate".  A
:class:`MetricsRegistry` holds labeled **counters**, **gauges** and
fixed-bucket **histograms** (exponential buckets for latencies and
cycles, linear 0–``warp_size`` buckets for active-lane occupancy), named
``repro_<layer>_<name>`` after the four instrumented layers: compile
(pass wall time, compile-cache hits/misses, CFM melding decisions),
runtime (per-policy divergence-rate and occupancy distributions from
both executors), evaluation (task throughput and worker utilization) and
difftest (seeds/sec, failures by oracle arm).

Like tracing, collection is *ambient*: instrumented code reads
:func:`current_registry`, which defaults to the no-op
:data:`NULL_REGISTRY` — a shared singleton whose operations neither
allocate nor record, so the disabled path costs one ``enabled`` check
(the same budget ``tests/obs/test_overhead.py`` holds the tracer to).

Snapshots are plain JSON-able dicts (:meth:`MetricsRegistry.snapshot`)
and merge additively (:meth:`MetricsRegistry.merge`), which is what
makes **cross-process aggregation** work: every ParallelRunner worker
returns its task's delta alongside the :class:`TaskResult` and the
parent folds the deltas — in task order — into one sweep-level registry.
Histogram merges reject mismatched bucket boundaries exactly the way
:meth:`repro.simt.Metrics.merge` rejects mismatched warp widths: a side
that has not observed anything yet adopts the other's buckets; two
counted sides with different buckets raise :class:`ValueError`.

Three exposition paths:

* Prometheus text format v0.0.4 — :func:`render_prometheus`,
  :meth:`MetricsRegistry.write_prom`, and ``python -m repro.obs metrics
  FILE --format prom|json``;
* the evaluation sweep trace — schema v3 embeds the merged snapshot
  under a top-level ``"metrics"`` key;
* Chrome-trace counter tracks — :func:`bridge_to_tracer` replays a
  snapshot through :meth:`repro.obs.Tracer.counter` so Perfetto shows
  the aggregates next to the spans.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .tracer import COMPILE_PID

#: snapshot layout version; bump on incompatible changes
SNAPSHOT_SCHEMA = "repro.obs.metrics/1"

#: characters label values must not contain (they would corrupt the
#: flat ``k=v,k2=v2`` sample key and the Prometheus exposition)
_FORBIDDEN_IN_LABELS = ("=", ",", '"', "\n")

# ---------------------------------------------------------------------------
# bucket helpers


def exponential_buckets(start: float, factor: float,
                        count: int) -> Tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    The implicit ``+Inf`` overflow bucket is always present; these are
    the finite ``le`` bounds only.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("exponential_buckets needs start>0, factor>1, "
                         "count>=1")
    return tuple(start * factor ** i for i in range(count))


def linear_buckets(start: float, width: float, count: int) -> Tuple[float, ...]:
    """``count`` upper bounds spaced ``width`` apart from ``start``."""
    if width <= 0 or count < 1:
        raise ValueError("linear_buckets needs width>0, count>=1")
    return tuple(start + width * i for i in range(count))


def occupancy_buckets(warp_size: int) -> Tuple[float, ...]:
    """Linear 0–``warp_size`` bounds for active-lane occupancy (eight
    buckets for the usual widths, one per lane for tiny warps)."""
    if warp_size >= 8:
        width = warp_size / 8
        return linear_buckets(width, width, 8)
    return linear_buckets(1, 1, max(1, warp_size))


#: wall-time histograms: 100µs … ~26s
SECONDS_BUCKETS = exponential_buckets(1e-4, 4.0, 10)
#: issue-cycle histograms: 64 … ~2.7e8 cycles
CYCLES_BUCKETS = exponential_buckets(64, 4.0, 12)
#: divergence-rate histograms: 0.1 … 1.0
RATE_BUCKETS = linear_buckets(0.1, 0.1, 10)


# ---------------------------------------------------------------------------
# sample keys


def _label_key(labels: Dict[str, object]) -> str:
    """Flat, deterministic sample key: ``"k=v,k2=v2"`` (sorted)."""
    if not labels:
        return ""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _parse_label_key(key: str) -> List[Tuple[str, str]]:
    if not key:
        return []
    return [tuple(part.split("=", 1)) for part in key.split(",")]


def _check_labels(labels: Dict[str, object]) -> None:
    for name, value in labels.items():
        text = str(value)
        for bad in _FORBIDDEN_IN_LABELS:
            if bad in name or bad in text:
                raise ValueError(
                    f"label {name}={text!r} contains {bad!r}; metric label "
                    f"names/values must avoid {_FORBIDDEN_IN_LABELS}")


# ---------------------------------------------------------------------------
# children (the things instrumentation sites actually touch)


class Counter:
    """A monotonically-increasing sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time sample (last write wins, also across merges)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: ``bounds[i]`` is the *upper* (``le``)
    bound of bucket ``i``; ``counts`` has one extra overflow (``+Inf``)
    slot at the end."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


# ---------------------------------------------------------------------------
# families (name + help + labeled children)


class _Family:
    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._children: Dict[str, object] = {}

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels):
        """The child for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            _check_labels(labels)
            child = self._new_child()
            self._children[key] = child
        return child

    def samples(self) -> Dict[str, object]:
        """``label key -> child``, sorted (snapshot order)."""
        return {key: self._children[key] for key in sorted(self._children)}


class CounterFamily(_Family):
    kind = "counter"

    def _new_child(self) -> Counter:
        return Counter()

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.labels().inc(amount)

    def total(self) -> Union[int, float]:
        """Sum over every label set (the un-labeled view of the family)."""
        return sum(child.value for child in self._children.values())


class GaugeFamily(_Family):
    kind = "gauge"

    def _new_child(self) -> Gauge:
        return Gauge()

    def set(self, value: Union[int, float]) -> None:
        self.labels().set(value)


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = SECONDS_BUCKETS) -> None:
        super().__init__(name, help)
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if not self.buckets:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(
                f"histogram {name}: bucket bounds must be strictly "
                f"increasing, got {self.buckets}")

    def _new_child(self) -> Histogram:
        return Histogram(self.buckets)

    def observe(self, value: Union[int, float]) -> None:
        self.labels().observe(value)

    def total_count(self) -> int:
        return sum(child.count for child in self._children.values())

    def _rebucket(self, buckets: Sequence[float]) -> None:
        """Adopt new bounds; only legal while nothing has been observed
        (existing children are re-created empty at the new width)."""
        assert self.total_count() == 0
        self.buckets = tuple(buckets)
        self._children = {key: Histogram(self.buckets)
                          for key in self._children}


# ---------------------------------------------------------------------------
# the registry


class MetricsRegistry:
    """A process-wide collection of metric families.

    Families are created on first access and returned on every later
    one; re-registering a name as a different kind (or a histogram with
    different buckets) raises, because silently forking a metric is how
    dashboards lie.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # ---- registration ----------------------------------------------------

    def _family(self, cls, name: str, help: str, **kwargs) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = cls(name, help, **kwargs)
            self._families[name] = family
            return family
        if not isinstance(family, cls):
            raise ValueError(
                f"metric {name} already registered as {family.kind}, "
                f"not {cls.kind}")
        if help and not family.help:
            # A family can be touched help-less first (e.g. reading a
            # counter's total before anything incremented it); the first
            # real registration supplies the help text.
            family.help = help
        return family

    def counter(self, name: str, help: str = "") -> CounterFamily:
        return self._family(CounterFamily, name, help)

    def gauge(self, name: str, help: str = "") -> GaugeFamily:
        return self._family(GaugeFamily, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = SECONDS_BUCKETS
                  ) -> HistogramFamily:
        family = self._family(HistogramFamily, name, help, buckets=buckets)
        if family.buckets != tuple(buckets):
            raise ValueError(
                f"histogram {name} already registered with buckets "
                f"{family.buckets}, not {tuple(buckets)}")
        return family

    def families(self) -> List[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    # ---- snapshot / merge ------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable state: deterministic key order, loss-free."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for family in self.families():
            if isinstance(family, CounterFamily):
                counters[family.name] = {
                    "help": family.help,
                    "samples": {key: child.value
                                for key, child in family.samples().items()},
                }
            elif isinstance(family, GaugeFamily):
                gauges[family.name] = {
                    "help": family.help,
                    "samples": {key: child.value
                                for key, child in family.samples().items()},
                }
            else:
                histograms[family.name] = {
                    "help": family.help,
                    "buckets": list(family.buckets),
                    "samples": {
                        key: {"counts": list(child.counts),
                              "sum": child.sum, "count": child.count}
                        for key, child in family.samples().items()},
                }
        return {"schema": SNAPSHOT_SCHEMA, "counters": counters,
                "gauges": gauges, "histograms": histograms}

    def merge(self, delta: Union[Dict[str, object], "MetricsRegistry"]
              ) -> None:
        """Fold ``delta`` (a snapshot dict, or another registry) in.

        Counters and histogram buckets add; gauges take the delta's
        value (last write wins, so merge deltas in a deterministic
        order).  Histogram bucket-boundary mismatches follow
        :meth:`repro.simt.Metrics.merge`'s warp-size rule: an empty side
        adopts the other's buckets, two counted sides raise.
        """
        if isinstance(delta, MetricsRegistry):
            delta = delta.snapshot()
        schema = delta.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema {schema!r} "
                f"(expected {SNAPSHOT_SCHEMA!r})")
        for name, data in delta.get("counters", {}).items():
            family = self.counter(name, data.get("help", ""))
            for key, value in data.get("samples", {}).items():
                family.labels(**dict(_parse_label_key(key))).value += value
        for name, data in delta.get("gauges", {}).items():
            family = self.gauge(name, data.get("help", ""))
            for key, value in data.get("samples", {}).items():
                family.labels(**dict(_parse_label_key(key))).value = value
        for name, data in delta.get("histograms", {}).items():
            bounds = tuple(data.get("buckets", ()))
            samples = data.get("samples", {})
            incoming = sum(s.get("count", 0) for s in samples.values())
            family = self._families.get(name)
            if family is None:
                family = self.histogram(name, data.get("help", ""),
                                        buckets=bounds)
            elif not isinstance(family, HistogramFamily):
                raise ValueError(
                    f"metric {name} already registered as {family.kind}, "
                    f"not histogram")
            elif family.buckets != bounds:
                if family.total_count() == 0:
                    family._rebucket(bounds)
                elif incoming != 0:
                    raise ValueError(
                        f"cannot merge histogram {name} with buckets "
                        f"{bounds} into buckets {family.buckets}: bucket "
                        f"sums would be meaningless")
                else:
                    continue  # nothing observed on the incoming side
            if data.get("help") and not family.help:
                family.help = data["help"]
            for key, sample in samples.items():
                child = family.labels(**dict(_parse_label_key(key)))
                counts = sample.get("counts", [])
                if len(counts) != len(child.counts):
                    raise ValueError(
                        f"histogram {name}: sample has {len(counts)} "
                        f"buckets, expected {len(child.counts)}")
                for i, count in enumerate(counts):
                    child.counts[i] += count
                child.sum += sample.get("sum", 0)
                child.count += sample.get("count", 0)

    # ---- exposition ------------------------------------------------------

    def render_prom(self) -> str:
        return render_prometheus(self.snapshot())

    def write_prom(self, path: str) -> None:
        """Write the current snapshot as Prometheus text format v0.0.4."""
        with open(path, "w") as handle:
            handle.write(self.render_prom())


class NullRegistry:
    """The disabled registry: a no-op twin of :class:`MetricsRegistry`.

    Shared singletons all the way down (:data:`NULL_REGISTRY`, one null
    family, one null child), so the disabled path never allocates — the
    same contract :data:`repro.obs.NULL_TRACER` keeps.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> "_NullFamily":
        return _NULL_FAMILY

    def gauge(self, name: str, help: str = "") -> "_NullFamily":
        return _NULL_FAMILY

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = SECONDS_BUCKETS
                  ) -> "_NullFamily":
        return _NULL_FAMILY

    def families(self) -> list:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {"schema": SNAPSHOT_SCHEMA, "counters": {}, "gauges": {},
                "histograms": {}}

    def merge(self, delta) -> None:
        pass

    def render_prom(self) -> str:
        return render_prometheus(self.snapshot())

    def write_prom(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render_prom())


class _NullChild:
    __slots__ = ()
    value = 0
    count = 0
    sum = 0
    counts: tuple = ()

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


class _NullFamily(_NullChild):
    __slots__ = ()
    buckets: tuple = ()

    def labels(self, **labels) -> _NullChild:
        return _NULL_CHILD

    def samples(self) -> dict:
        return {}

    def total(self) -> int:
        return 0

    def total_count(self) -> int:
        return 0


_NULL_CHILD = _NullChild()
_NULL_FAMILY = _NullFamily()
NULL_REGISTRY = NullRegistry()


# ---------------------------------------------------------------------------
# ambient registry (mirrors the tracer's current/use/set trio)

_current: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def current_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The ambient registry (:data:`NULL_REGISTRY` unless installed)."""
    return _current


def set_registry(registry) -> object:
    """Install ``registry`` as ambient; returns the previous one."""
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry) -> Iterator[object]:
    """Install ``registry`` as the ambient registry for the scope."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@contextmanager
def collect_metrics(path: Optional[str] = None,
                    registry: Optional[MetricsRegistry] = None
                    ) -> Iterator[MetricsRegistry]:
    """Collect everything in the scope; optionally write prom on exit.

    The metrics twin of :func:`repro.obs.trace`: yields the (fresh or
    given) registry, and ``path`` gets a Prometheus text snapshot when
    the scope closes.
    """
    active = registry if registry is not None else MetricsRegistry()
    with use_registry(active):
        yield active
    if path is not None:
        active.write_prom(path)


# ---------------------------------------------------------------------------
# Prometheus text exposition v0.0.4


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a snapshot dict as Prometheus text format v0.0.4."""
    lines: List[str] = []

    def header(name: str, kind: str, help: str) -> None:
        if help:
            lines.append(f"# HELP {name} {_escape_help(help)}")
        lines.append(f"# TYPE {name} {kind}")

    for kind in ("counters", "gauges"):
        prom_kind = "counter" if kind == "counters" else "gauge"
        for name, data in snapshot.get(kind, {}).items():
            header(name, prom_kind, data.get("help", ""))
            for key, value in data.get("samples", {}).items():
                lines.append(f"{name}{_prom_labels(_parse_label_key(key))} "
                             f"{_format_value(value)}")
    for name, data in snapshot.get("histograms", {}).items():
        header(name, "histogram", data.get("help", ""))
        bounds = list(data.get("buckets", []))
        for key, sample in data.get("samples", {}).items():
            pairs = _parse_label_key(key)
            cumulative = 0
            counts = sample.get("counts", [])
            for bound, count in zip(bounds, counts):
                cumulative += count
                le = pairs + [("le", _format_value(bound))]
                lines.append(f"{name}_bucket{_prom_labels(le)} {cumulative}")
            le = pairs + [("le", "+Inf")]
            lines.append(f"{name}_bucket{_prom_labels(le)} "
                         f"{sample.get('count', 0)}")
            lines.append(f"{name}_sum{_prom_labels(pairs)} "
                         f"{_format_value(sample.get('sum', 0))}")
            lines.append(f"{name}_count{_prom_labels(pairs)} "
                         f"{sample.get('count', 0)}")
    return "\n".join(lines) + "\n" if lines else ""


def bridge_to_tracer(source, tracer, pid: int = COMPILE_PID) -> None:
    """Replay a snapshot (or registry) as Chrome-trace counter tracks.

    Every counter/gauge sample becomes one :meth:`Tracer.counter` event
    (one track per label set); histograms contribute their observation
    counts.  No-op under a disabled tracer.
    """
    if not getattr(tracer, "enabled", False):
        return
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    for kind in ("counters", "gauges"):
        for name, data in snapshot.get(kind, {}).items():
            for key, value in data.get("samples", {}).items():
                tracer.counter(name, {key or "value": value}, pid=pid)
    for name, data in snapshot.get("histograms", {}).items():
        for key, sample in data.get("samples", {}).items():
            tracer.counter(f"{name}:count",
                           {key or "value": sample.get("count", 0)}, pid=pid)


# ---------------------------------------------------------------------------
# layer instrumentation helpers (each checks `enabled` itself, so call
# sites stay one function call when collection is off)

_CACHE_HITS = "repro_compile_cache_hits_total"
_CACHE_MISSES = "repro_compile_cache_misses_total"
_CACHE_EVICTIONS = "repro_compile_cache_evictions_total"
_CACHE_HIT_RATIO = "repro_compile_cache_hit_ratio"


def record_pass_seconds(pass_name: str, seconds: float,
                        registry=None) -> None:
    """Compile layer: one wall-time observation for one pass execution."""
    registry = registry if registry is not None else _current
    if not registry.enabled:
        return
    registry.histogram(
        "repro_compile_pass_seconds",
        "Wall time of one compiler-pass execution, by pass",
        buckets=SECONDS_BUCKETS).labels(**{"pass": pass_name}
                                        ).observe(seconds)


def record_cache_lookup(hit: bool, source: str = "memory",
                        registry=None) -> None:
    """Compile layer: one compile-cache lookup outcome."""
    registry = registry if registry is not None else _current
    if not registry.enabled:
        return
    if hit:
        registry.counter(
            _CACHE_HITS,
            "Compile-cache hits, by layer the entry came from"
        ).labels(source=source).inc()
    else:
        registry.counter(_CACHE_MISSES, "Compile-cache misses").inc()
    update_cache_hit_ratio(registry)


def record_cache_eviction(registry=None) -> None:
    """Compile layer: one poisoned/stale compile-cache entry dropped."""
    registry = registry if registry is not None else _current
    if not registry.enabled:
        return
    registry.counter(_CACHE_EVICTIONS,
                     "Compile-cache entries evicted as unusable").inc()


def update_cache_hit_ratio(registry=None) -> None:
    """Recompute the hit-ratio gauge from the (possibly merged) counters."""
    registry = registry if registry is not None else _current
    if not registry.enabled:
        return
    hits = registry.counter(
        _CACHE_HITS,
        "Compile-cache hits, by layer the entry came from").total()
    misses = registry.counter(_CACHE_MISSES, "Compile-cache misses").total()
    if hits + misses:
        registry.gauge(
            _CACHE_HIT_RATIO,
            "Compile-cache hits / lookups (recomputed after merges)"
        ).set(hits / (hits + misses))


def record_cfm_decisions(decisions, registry=None) -> None:
    """Compile layer: CFM melding decisions, counted by action."""
    registry = registry if registry is not None else _current
    if not registry.enabled or not decisions:
        return
    family = registry.counter(
        "repro_compile_cfm_decisions_total",
        "CFM melding decisions, by action (accepted = melded)")
    for decision in decisions:
        family.labels(action=decision.action).inc()


def record_validate_verdict(verdict: str, seconds: float,
                            registry=None) -> None:
    """Compile layer: one meld's translation-validation outcome."""
    registry = registry if registry is not None else _current
    if not registry.enabled:
        return
    registry.counter(
        "repro_compile_validate_total",
        "Meld translation validations, by verdict"
    ).labels(verdict=verdict).inc()
    registry.histogram(
        "repro_compile_validate_seconds",
        "Wall time of one meld's symbolic translation validation",
        buckets=SECONDS_BUCKETS).observe(seconds)


def record_task_seconds(seconds: float, registry=None) -> None:
    """Evaluation layer: one sweep task's wall time."""
    registry = registry if registry is not None else _current
    if not registry.enabled:
        return
    registry.histogram("repro_eval_task_seconds",
                       "Wall time of one sweep task (compare both arms)",
                       buckets=SECONDS_BUCKETS).observe(seconds)


class RuntimeSink:
    """Pre-bound metric children for one kernel launch.

    Built once per launch (only when the ambient registry is enabled),
    so the executors' per-block-entry cost is one bound-method call —
    :attr:`block` is the occupancy histogram's ``observe`` itself, and
    untraced, un-metered launches keep their ``obs is None`` fast path.
    """

    __slots__ = ("block", "_divergence", "_cycles", "_launches", "_traps",
                 "_branches", "_divergent", "_barriers")

    def __init__(self, registry: MetricsRegistry, policy: str, executor: str,
                 warp_size: int) -> None:
        labels = {"policy": policy, "executor": executor}
        occupancy = registry.histogram(
            "repro_runtime_active_lanes",
            "Active lanes at block entry (linear 0..warp_size buckets)",
            buckets=occupancy_buckets(warp_size)).labels(**labels)
        #: the per-block-entry hot path: bound Histogram.observe
        self.block = occupancy.observe
        self._divergence = registry.histogram(
            "repro_runtime_warp_divergence_rate",
            "Per-warp divergent/total branch ratio, by policy",
            buckets=RATE_BUCKETS).labels(**labels)
        self._cycles = registry.histogram(
            "repro_runtime_launch_cycles",
            "Issue cycles per launch", buckets=CYCLES_BUCKETS).labels(**labels)
        self._launches = registry.counter(
            "repro_runtime_launches_total", "Kernel launches").labels(**labels)
        self._traps = registry.counter(
            "repro_runtime_traps_total",
            "Launches aborted by a simulation trap").labels(**labels)
        self._branches = registry.counter(
            "repro_runtime_branches_total",
            "Branch instructions issued").labels(**labels)
        self._divergent = registry.counter(
            "repro_runtime_divergent_branches_total",
            "Branch issues whose warp diverged").labels(**labels)
        self._barriers = registry.counter(
            "repro_runtime_barriers_total",
            "Block-wide barriers issued").labels(**labels)

    def warp_done(self, metrics) -> None:
        """Fold one retired warp's counters in (per-warp distributions)."""
        if metrics.branches:
            self._divergence.observe(
                metrics.divergent_branches / metrics.branches)
            self._branches.inc(metrics.branches)
        if metrics.divergent_branches:
            self._divergent.inc(metrics.divergent_branches)
        if metrics.barriers:
            self._barriers.inc(metrics.barriers)

    def launch_done(self, metrics) -> None:
        self._launches.inc()
        self._cycles.observe(metrics.cycles)

    def trap(self) -> None:
        self._traps.inc()


def runtime_sink(registry, policy: str, executor: str,
                 warp_size: int) -> Optional[RuntimeSink]:
    """A :class:`RuntimeSink` for one launch, or None when disabled."""
    if not registry.enabled:
        return None
    return RuntimeSink(registry, policy, executor, warp_size)
