"""Span-based tracing: the one event model every layer shares.

A :class:`Tracer` records *spans* (nested, duration-carrying), *instant*
events and *counters* as plain dicts in the Chrome trace-event format
(``name``/``ph``/``ts``/``pid``/``tid`` plus ``dur``/``args``), so one
:meth:`Tracer.write` call produces a JSON file that loads directly in
Perfetto / ``chrome://tracing``.  Compile-side events use wall-clock
microseconds; the SIMT runtime reports simulated *cycles* as timestamps
(see :mod:`repro.obs.runtime`) — both are plain numbers on the same
timeline, which Perfetto renders happily.

The disabled state is :data:`NULL_TRACER`, a :class:`NullTracer` whose
every operation is a no-op returning shared singletons.  Instrumented
hot paths either check ``tracer.enabled`` (one attribute load) or call
straight through the no-ops; neither allocates, which is what keeps the
default-off overhead unmeasurable (``tests/obs/test_overhead.py`` holds
this to <2% of the smoke sweep).

Process ids partition the timeline: :data:`COMPILE_PID` hosts pass spans
and melding decisions, and each traced kernel launch claims its own pid
starting at :data:`SIM_PID_BASE` (one Perfetto process per launch, one
thread per warp).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

#: pid hosting compile-side spans (passes, melding decisions)
COMPILE_PID = 1
#: first pid used for simulated kernel launches (one pid per launch)
SIM_PID_BASE = 10


class _NullSpan:
    """Shared do-nothing context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every method is a no-op on shared objects.

    There is exactly one instance (:data:`NULL_TRACER`); instrumentation
    that runs against it performs no allocation and records nothing.
    """

    __slots__ = ()

    enabled = False
    #: immutable empty event list (shared; never grows)
    events: tuple = ()

    def span(self, name: str, cat: str = "span", pid: int = COMPILE_PID,
             tid: int = 0, args: Optional[Dict[str, object]] = None) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name: str, dur: float, cat: str = "span",
                 pid: int = COMPILE_PID, tid: int = 0,
                 ts: Optional[float] = None,
                 args: Optional[Dict[str, object]] = None) -> None:
        pass

    def instant(self, name: str, cat: str = "event", pid: int = COMPILE_PID,
                tid: int = 0, ts: Optional[float] = None,
                args: Optional[Dict[str, object]] = None) -> None:
        pass

    def counter(self, name: str, values: Dict[str, float],
                pid: int = COMPILE_PID, tid: int = 0,
                ts: Optional[float] = None) -> None:
        pass

    def process_name(self, pid: int, name: str) -> None:
        pass

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        pass

    def next_launch_pid(self) -> int:
        return SIM_PID_BASE


NULL_TRACER = NullTracer()


class Span:
    """One live span: measures wall time between ``__enter__`` and
    ``__exit__`` and emits a complete (``ph: "X"``) event on exit."""

    __slots__ = ("_tracer", "name", "cat", "pid", "tid", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, pid: int,
                 tid: int, args: Optional[Dict[str, object]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.args = dict(args) if args else {}
        self._start = 0.0

    def set(self, **args) -> None:
        """Attach (or overwrite) argument values while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._start = self._tracer.now()
        return self

    def __exit__(self, *exc) -> bool:
        end = self._tracer.now()
        self._tracer.complete(self.name, end - self._start, cat=self.cat,
                              pid=self.pid, tid=self.tid, ts=self._start,
                              args=self.args or None)
        return False


class Tracer:
    """An enabled tracer accumulating Chrome trace events in memory.

    ``clock`` (microseconds, monotonic) is injectable so tests can pin
    timestamps; the default is ``time.perf_counter`` rebased to the
    tracer's construction instant.
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        if clock is None:
            t0 = time.perf_counter()
            clock = lambda: (time.perf_counter() - t0) * 1e6  # noqa: E731
        self._clock = clock
        self.events: List[Dict[str, object]] = []
        self._launch_pids = 0

    # ---- time ------------------------------------------------------------

    def now(self) -> float:
        """Current trace timestamp in microseconds."""
        return self._clock()

    # ---- emission --------------------------------------------------------

    def _emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def span(self, name: str, cat: str = "span", pid: int = COMPILE_PID,
             tid: int = 0, args: Optional[Dict[str, object]] = None) -> Span:
        """A context manager measuring one nested span."""
        return Span(self, name, cat, pid, tid, args)

    def complete(self, name: str, dur: float, cat: str = "span",
                 pid: int = COMPILE_PID, tid: int = 0,
                 ts: Optional[float] = None,
                 args: Optional[Dict[str, object]] = None) -> None:
        """A pre-measured span (``ph: "X"``); ``dur`` in microseconds."""
        event: Dict[str, object] = {
            "name": name, "ph": "X", "cat": cat,
            "ts": self.now() - dur if ts is None else ts,
            "dur": dur, "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def instant(self, name: str, cat: str = "event", pid: int = COMPILE_PID,
                tid: int = 0, ts: Optional[float] = None,
                args: Optional[Dict[str, object]] = None) -> None:
        """A zero-duration event (``ph: "i"``, thread scope)."""
        event: Dict[str, object] = {
            "name": name, "ph": "i", "s": "t", "cat": cat,
            "ts": self.now() if ts is None else ts,
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, name: str, values: Dict[str, float],
                pid: int = COMPILE_PID, tid: int = 0,
                ts: Optional[float] = None) -> None:
        """A counter sample (``ph: "C"``) — one track per key."""
        self._emit({
            "name": name, "ph": "C", "cat": "counter",
            "ts": self.now() if ts is None else ts,
            "pid": pid, "tid": tid, "args": dict(values),
        })

    # ---- metadata --------------------------------------------------------

    def process_name(self, pid: int, name: str) -> None:
        self._emit({"name": "process_name", "ph": "M", "ts": 0,
                    "pid": pid, "tid": 0, "args": {"name": name}})

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        self._emit({"name": "thread_name", "ph": "M", "ts": 0,
                    "pid": pid, "tid": tid, "args": {"name": name}})

    def next_launch_pid(self) -> int:
        """Claim a fresh pid for one kernel launch (deterministic: the
        N-th traced launch of a tracer always gets ``SIM_PID_BASE + N``)."""
        pid = SIM_PID_BASE + self._launch_pids
        self._launch_pids += 1
        return pid

    # ---- export ----------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, object]]:
        """The recorded events (shared list — copy before mutating)."""
        return self.events

    def payload(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Chrome trace JSON object: ``{"traceEvents": [...], ...extra}``.

        Perfetto and ``chrome://tracing`` read ``traceEvents`` and ignore
        unknown top-level keys, so callers may stash their own metadata
        alongside (the evaluation sweep trace does exactly this).
        """
        payload: Dict[str, object] = {"traceEvents": list(self.events),
                                      "displayTimeUnit": "ms"}
        if extra:
            payload.update(extra)
        return payload

    def write(self, path: str,
              extra: Optional[Dict[str, object]] = None) -> None:
        """Write the trace as Chrome trace-event JSON."""
        with open(path, "w") as handle:
            json.dump(self.payload(extra), handle, indent=2)
            handle.write("\n")
