"""Divergence heatmap: render warp-level trace events as text.

``python -m repro.obs report trace.json`` reads any trace this package
writes — a plain Chrome trace (``{"traceEvents": [...]}``), a bare event
list, or an evaluation ``sweep_trace.json`` v2 (whose top level embeds
``traceEvents``) — and prints, per traced launch, a block-level table:

    block        execs   div  rate              cycles  lanes
    entry            4     2  50.0% █████          120   24.0

``execs``/``div`` count branch executions and how many diverged (the
per-branch divergence timeline aggregated), ``rate`` their ratio,
``cycles`` the issue cycles attributed to the block, and ``lanes`` the
mean active-lane occupancy at block entry.  Comparing the ``-O3`` and
``-O3+CFM`` launches of one kernel makes melding directly legible:
divergent branch rows disappear from the melded arm.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

BAR_WIDTH = 10


@dataclass
class BlockStat:
    """Aggregated runtime behaviour of one basic block in one launch."""

    block: str
    executions: int = 0
    branch_executions: int = 0
    divergent_executions: int = 0
    cycles: int = 0
    active_lane_sum: int = 0

    @property
    def divergence_rate(self) -> float:
        if self.branch_executions == 0:
            return 0.0
        return self.divergent_executions / self.branch_executions

    @property
    def mean_active_lanes(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.active_lane_sum / self.executions


@dataclass
class LaunchSummary:
    """Every block's stats for one traced launch (one trace pid)."""

    pid: int
    name: str
    blocks: Dict[str, BlockStat] = field(default_factory=dict)

    @property
    def divergent_branch_executions(self) -> int:
        return sum(s.divergent_executions for s in self.blocks.values())

    @property
    def branch_executions(self) -> int:
        return sum(s.branch_executions for s in self.blocks.values())

    def stat(self, block: str) -> BlockStat:
        if block not in self.blocks:
            self.blocks[block] = BlockStat(block=block)
        return self.blocks[block]


def load_trace_events(path: str) -> List[dict]:
    """Events from a trace file: Chrome object, bare list, or sweep v2."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, list):
        return data
    if isinstance(data, dict) and "traceEvents" in data:
        return list(data["traceEvents"])
    raise ValueError(f"{path}: no traceEvents found "
                     f"(keys: {sorted(data) if isinstance(data, dict) else '?'})")


def divergence_summary(events: Sequence[dict]) -> List[LaunchSummary]:
    """Aggregate runtime (``cat: "sim"``) events per launch pid.

    Block cycle attribution uses the event timeline itself: an ``exec``
    event opens a block at its cycle timestamp, and the next event on
    the same warp (thread) closes it — the simulator emits an event at
    every block entry, so the deltas partition each warp's cycles.
    """
    process_names: Dict[int, str] = {}
    sim_events: Dict[int, Dict[int, List[dict]]] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            process_names[event["pid"]] = event.get("args", {}).get("name", "")
            continue
        if event.get("cat") != "sim" or event.get("ph") != "i":
            continue
        per_tid = sim_events.setdefault(event["pid"], {})
        per_tid.setdefault(event["tid"], []).append(event)

    summaries: List[LaunchSummary] = []
    for pid in sorted(sim_events):
        summary = LaunchSummary(pid=pid,
                                name=process_names.get(pid, f"pid{pid}"))
        for tid in sorted(sim_events[pid]):
            _aggregate_warp(summary, sim_events[pid][tid])
        summaries.append(summary)
    return summaries


def _aggregate_warp(summary: LaunchSummary, events: List[dict]) -> None:
    open_block: Optional[str] = None
    open_cycle = 0
    for event in events:
        args = event.get("args", {})
        name = event["name"]
        cycle = event["ts"]
        if name == "exec":
            if open_block is not None:
                summary.stat(open_block).cycles += max(0, cycle - open_cycle)
            open_block, open_cycle = args["block"], cycle
            stat = summary.stat(args["block"])
            stat.executions += 1
            stat.active_lane_sum += args.get("active", 0)
        elif name == "branch":
            stat = summary.stat(args["block"])
            stat.branch_executions += 1
        elif name == "diverge":
            stat = summary.stat(args["block"])
            stat.branch_executions += 1
            stat.divergent_executions += 1
    # The final open block keeps zero extra cycles: the warp retired there.


def render_heatmap(summary: LaunchSummary, min_executions: int = 1) -> str:
    """One launch's block × divergence-rate × cycles table."""
    rows = [s for s in summary.blocks.values()
            if s.executions >= min_executions or s.branch_executions > 0]
    rows.sort(key=lambda s: (-s.divergent_executions, -s.cycles, s.block))
    lines = [
        f"== {summary.name} — divergence heatmap "
        f"({summary.divergent_branch_executions} divergent of "
        f"{summary.branch_executions} branch executions) ==",
        f"{'block':<24} {'execs':>6} {'div':>5}  "
        f"{'rate':<{BAR_WIDTH + 7}} {'cycles':>8} {'lanes':>6}",
    ]
    for stat in rows:
        bar = "█" * round(stat.divergence_rate * BAR_WIDTH)
        lines.append(
            f"{stat.block:<24} {stat.executions:>6} "
            f"{stat.divergent_executions:>5}  "
            f"{stat.divergence_rate:>6.1%} {bar:<{BAR_WIDTH}} "
            f"{stat.cycles:>8} {stat.mean_active_lanes:>6.1f}")
    if not rows:
        lines.append("(no runtime events)")
    return "\n".join(lines)


def summary_dict(summary: LaunchSummary) -> Dict[str, object]:
    """JSON-ready serialization of one launch's heatmap."""
    blocks = sorted(summary.blocks.values(),
                    key=lambda s: (-s.divergent_executions, -s.cycles,
                                   s.block))
    return {
        "pid": summary.pid,
        "name": summary.name,
        "branch_executions": summary.branch_executions,
        "divergent_branch_executions": summary.divergent_branch_executions,
        "blocks": [
            {
                "block": s.block,
                "executions": s.executions,
                "branch_executions": s.branch_executions,
                "divergent_executions": s.divergent_executions,
                "divergence_rate": s.divergence_rate,
                "cycles": s.cycles,
                "mean_active_lanes": s.mean_active_lanes,
            }
            for s in blocks
        ],
    }


def report_json(events: Sequence[dict]) -> Dict[str, object]:
    """The whole report as one JSON-ready dict (``report --json``).

    Carries exactly the numbers the text heatmaps render — same launch
    ordering, same per-block stats — so a golden asserted against the
    text output can be asserted against this too.
    """
    return {
        "schema": "repro.obs.report/v1",
        "launches": [summary_dict(s) for s in divergence_summary(events)],
    }


def render_report(events: Sequence[dict]) -> str:
    """Heatmaps for every traced launch, plus a cross-launch comparison."""
    summaries = divergence_summary(events)
    if not summaries:
        return ("no runtime (cat: \"sim\") events in this trace — "
                "was the launch run under repro.trace()?")
    sections = [render_heatmap(s) for s in summaries]
    if len(summaries) > 1:
        lines = ["== divergent-branch executions by launch =="]
        width = max(len(s.name) for s in summaries)
        for s in summaries:
            lines.append(f"{s.name:<{width}}  {s.divergent_branch_executions}"
                         f" divergent / {s.branch_executions} branches")
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"
