"""The melding decision log: why each divergent region melded (or not).

Every Algorithm-1 iteration of the CFM pass produces one
:class:`MeldingDecision` per candidate region: the region entry, the
§IV-C profitability scores (``FP_S`` for the chosen pair, per-block-pair
``FP_B``, and the alignment's summed ``FP_I`` saved cycles), the chosen
subgraph alignment, and the accept/reject reason.  The records live on
:class:`~repro.core.pass_.CFMStats` (the pass owns them), are emitted as
instant trace events when a tracer is active, and are embedded into
difftest corpus entries so a failing seed's repro explains what the
melder did.

This module defines only the schema — it imports nothing from
:mod:`repro.core`, which imports *it*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .tracer import COMPILE_PID

#: decision ``action`` values, in the order Algorithm 1 can reach them
ACTIONS = ("no-path-subgraphs", "no-meldable-pair",
           "rejected-unprofitable", "melded")


@dataclass
class BlockPairScore:
    """``FP_B`` of one aligned block pair (``None`` marks the unmatched
    side of a case-② partial mapping)."""

    true_block: Optional[str]
    false_block: Optional[str]
    fp_b: float

    def as_dict(self) -> Dict[str, object]:
        return {"true_block": self.true_block,
                "false_block": self.false_block,
                "fp_b": round(self.fp_b, 6)}

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "BlockPairScore":
        return cls(true_block=record["true_block"],
                   false_block=record["false_block"],
                   fp_b=record["fp_b"])


@dataclass
class MeldingDecision:
    """One candidate divergent region, scored and judged."""

    iteration: int
    region_entry: str
    #: one of :data:`ACTIONS`
    action: str
    #: human-readable accept/reject explanation
    reason: str
    #: Algorithm 1's profitability threshold in force
    threshold: float
    #: ``FP_S`` of the best pair found (None when no pair existed)
    fp_s: Optional[float] = None
    true_entry: Optional[str] = None
    false_entry: Optional[str] = None
    partial: bool = False
    #: the chosen ordered block mapping ``O`` (block names; None = gap)
    alignment: List[Tuple[Optional[str], Optional[str]]] = field(default_factory=list)
    #: per-pair ``FP_B`` over the alignment
    block_scores: List[BlockPairScore] = field(default_factory=list)
    #: summed ``FP_I`` over the instruction alignment (estimated cycles saved)
    fp_i_saved_cycles: Optional[float] = None
    # ---- post-meld facts (action == "melded" only) -----------------------
    selects_inserted: int = 0
    instructions_melded: int = 0
    instructions_unaligned: int = 0
    #: §IV-E unpredication split at least one gap run out
    unpredicated: bool = False
    #: was the region's entry branch divergent when the pass scored it?
    #: (stamped from the divergence analysis, independently of region
    #: selection, so the lint meld-legality audit can cross-check)
    branch_divergent: Optional[bool] = None
    #: names of the guard blocks unpredication created for side-effecting
    #: gap runs (each must stay dominated by its guard branch)
    guard_blocks: List[str] = field(default_factory=list)
    #: translation-validation verdict for an accepted meld
    #: ("EQUIVALENT" | "INEQUIVALENT" | "UNSUPPORTED"; None = not run)
    validation: Optional[str] = None

    @property
    def accepted(self) -> bool:
        return self.action == "melded"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable record (trace args, corpus entries)."""
        record: Dict[str, object] = {
            "iteration": self.iteration,
            "region_entry": self.region_entry,
            "action": self.action,
            "reason": self.reason,
            "threshold": self.threshold,
            "fp_s": None if self.fp_s is None else round(self.fp_s, 6),
        }
        if self.true_entry is not None:
            record.update(
                true_entry=self.true_entry,
                false_entry=self.false_entry,
                partial=self.partial,
                alignment=[[a, b] for a, b in self.alignment],
                block_scores=[s.as_dict() for s in self.block_scores],
                fp_i_saved_cycles=(None if self.fp_i_saved_cycles is None
                                   else round(self.fp_i_saved_cycles, 6)),
            )
        if self.accepted:
            record.update(
                selects_inserted=self.selects_inserted,
                instructions_melded=self.instructions_melded,
                instructions_unaligned=self.instructions_unaligned,
                unpredicated=self.unpredicated,
            )
        if self.branch_divergent is not None:
            record["branch_divergent"] = self.branch_divergent
        if self.guard_blocks:
            record["guard_blocks"] = list(self.guard_blocks)
        if self.validation is not None:
            record["validation"] = self.validation
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "MeldingDecision":
        """Inverse of :meth:`as_dict` (modulo its 6-digit float rounding).

        The persistent compile cache stores decision logs in this form,
        so a warm replay re-emits the same trace instants a cold compile
        would (``as_dict(from_dict(d)) == d`` holds exactly).
        """
        decision = cls(
            iteration=record["iteration"],
            region_entry=record["region_entry"],
            action=record["action"],
            reason=record["reason"],
            threshold=record["threshold"],
            fp_s=record.get("fp_s"),
        )
        if "true_entry" in record:
            decision.true_entry = record["true_entry"]
            decision.false_entry = record.get("false_entry")
            decision.partial = bool(record.get("partial", False))
            decision.alignment = [tuple(pair)
                                  for pair in record.get("alignment", [])]
            decision.block_scores = [BlockPairScore.from_dict(s)
                                     for s in record.get("block_scores", [])]
            decision.fp_i_saved_cycles = record.get("fp_i_saved_cycles")
        if decision.accepted:
            decision.selects_inserted = record.get("selects_inserted", 0)
            decision.instructions_melded = record.get("instructions_melded", 0)
            decision.instructions_unaligned = \
                record.get("instructions_unaligned", 0)
            decision.unpredicated = bool(record.get("unpredicated", False))
        decision.branch_divergent = record.get("branch_divergent")
        decision.guard_blocks = list(record.get("guard_blocks", []))
        decision.validation = record.get("validation")
        return decision


def emit_decisions(decisions: List[MeldingDecision], tracer,
                   tid: int = 0) -> None:
    """Emit each decision as an instant event on the compile timeline."""
    if not tracer.enabled:
        return
    for decision in decisions:
        tracer.instant(f"meld:{decision.action}", cat="melding",
                       pid=COMPILE_PID, tid=tid, args=decision.as_dict())
