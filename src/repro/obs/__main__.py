"""``python -m repro.obs`` — trace and metrics inspection CLI.

Subcommands:

``report TRACE.json [--json]``
    Render the divergence heatmap(s) of a trace produced by
    ``repro.trace(...)``, ``python -m repro.evaluation --trace`` (the
    sweep trace embeds ``traceEvents``) or a difftest ``--trace`` run.
    ``--json`` emits the same numbers as a machine-readable document.

``summary TRACE.json``
    One line per traced launch: divergent / total branch executions.

``metrics SOURCE [--format prom|json]``
    Re-render an aggregate-metrics snapshot.  ``SOURCE`` is either a
    sweep trace (schema v3; its top-level ``"metrics"`` key) or a raw
    snapshot JSON written by :meth:`MetricsRegistry.snapshot`.  The
    default ``prom`` format is Prometheus text exposition v0.0.4.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .metrics import SNAPSHOT_SCHEMA, render_prometheus
from .report import (
    divergence_summary,
    load_trace_events,
    render_report,
    report_json,
)


def _load_metrics_snapshot(path: str) -> dict:
    """A metrics snapshot from a raw snapshot file or a sweep trace."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    if data.get("schema") == SNAPSHOT_SCHEMA:
        return data
    metrics = data.get("metrics")
    if isinstance(metrics, dict) and metrics.get("schema") == SNAPSHOT_SCHEMA:
        return metrics
    raise ValueError(
        f"{path}: no metrics snapshot found — expected a raw "
        f"{SNAPSHOT_SCHEMA!r} document or a sweep trace (schema v3) whose "
        "top-level \"metrics\" key carries one (older sweep traces and "
        "metric-less runs store null there)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect traces and metrics produced by repro.obs.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render divergence heatmaps")
    report.add_argument("trace", help="trace JSON (Chrome / sweep v2+)")
    report.add_argument("--json", action="store_true",
                        help="emit the heatmap data as JSON instead of text")

    summary = sub.add_parser("summary", help="per-launch divergence totals")
    summary.add_argument("trace", help="trace JSON (Chrome / sweep v2+)")

    metrics = sub.add_parser(
        "metrics", help="re-render an aggregate-metrics snapshot")
    metrics.add_argument("source",
                         help="sweep trace (schema v3) or raw snapshot JSON")
    metrics.add_argument("--format", choices=("prom", "json"),
                         default="prom", dest="fmt",
                         help="output format (default: prom — Prometheus "
                              "text exposition)")

    args = parser.parse_args(argv)

    if args.command == "metrics":
        try:
            snapshot = _load_metrics_snapshot(args.source)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        if args.fmt == "json":
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(render_prometheus(snapshot), end="")
        return 0

    events = load_trace_events(args.trace)

    if args.command == "report":
        if args.json:
            print(json.dumps(report_json(events), indent=2))
        else:
            print(render_report(events), end="")
        return 0

    summaries = divergence_summary(events)
    if not summaries:
        print("no runtime events")
        return 1
    for entry in summaries:
        print(f"{entry.name}: {entry.divergent_branch_executions} divergent "
              f"/ {entry.branch_executions} branch executions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
