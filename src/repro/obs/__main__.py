"""``python -m repro.obs`` — trace inspection CLI.

Subcommands:

``report TRACE.json``
    Render the divergence heatmap(s) of a trace produced by
    ``repro.trace(...)``, ``python -m repro.evaluation --trace`` (the
    sweep trace embeds ``traceEvents``) or a difftest ``--trace`` run.

``summary TRACE.json``
    One line per traced launch: divergent / total branch executions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .report import divergence_summary, load_trace_events, render_report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect traces produced by the repro.obs layer.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render divergence heatmaps")
    report.add_argument("trace", help="trace JSON (Chrome / sweep v2)")

    summary = sub.add_parser("summary", help="per-launch divergence totals")
    summary.add_argument("trace", help="trace JSON (Chrome / sweep v2)")

    args = parser.parse_args(argv)
    events = load_trace_events(args.trace)

    if args.command == "report":
        print(render_report(events), end="")
        return 0

    summaries = divergence_summary(events)
    if not summaries:
        print("no runtime events")
        return 1
    for entry in summaries:
        print(f"{entry.name}: {entry.divergent_branch_executions} divergent "
              f"/ {entry.branch_executions} branch executions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
