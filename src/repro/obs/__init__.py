"""``repro.obs`` — the span-based observability layer.

One tracer model serves all three layers of the system (see
``docs/observability.md``):

* **compile side** — :class:`~repro.transforms.PassPipeline` emits one
  span per pass execution (IR-size deltas in the args) and the CFM pass
  emits its structured melding decision log as instant events;
* **runtime side** — kernel launches under an enabled tracer record
  per-warp divergence/reconvergence events and active-lane occupancy
  (:mod:`repro.obs.runtime`), rendered by ``python -m repro.obs report``
  as a text divergence heatmap;
* **harness side** — evaluation sweeps and the difftest oracle attach
  these events to their own artifacts (sweep trace v2, corpus entries).

Tracing is *ambient*: instrumented code reads :func:`current_tracer`,
which defaults to the no-op :data:`NULL_TRACER`.  Enable it for a scope
with :func:`use` (install an existing tracer) or :func:`trace` (create
one and optionally write Chrome trace-event JSON on exit)::

    import repro

    with repro.trace("trace.json"):
        repro.compile(kernel, cfm=True)
        repro.launch(kernel, grid=1, block=32, args={...})
    # trace.json now loads in Perfetto / chrome://tracing

The disabled path is allocation-free: :data:`NULL_TRACER` is a shared
singleton whose operations are no-ops, and the simulator skips its
instrumentation entirely when no tracer is enabled.

The *aggregate* view lives in :mod:`repro.obs.metrics`: an ambient
:class:`MetricsRegistry` of labeled counters/gauges/histograms with the
same null-singleton discipline (:data:`NULL_REGISTRY`), cross-process
snapshot/merge semantics, and Prometheus text exposition — see
``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .tracer import (
    COMPILE_PID,
    NULL_TRACER,
    NullTracer,
    SIM_PID_BASE,
    Span,
    Tracer,
)
from .decisions import (
    ACTIONS,
    BlockPairScore,
    MeldingDecision,
    emit_decisions,
)
from .metrics import (
    CYCLES_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    RATE_BUCKETS,
    SECONDS_BUCKETS,
    SNAPSHOT_SCHEMA,
    bridge_to_tracer,
    collect_metrics,
    current_registry,
    exponential_buckets,
    linear_buckets,
    occupancy_buckets,
    record_cache_eviction,
    record_cache_lookup,
    record_cfm_decisions,
    record_pass_seconds,
    record_task_seconds,
    record_validate_verdict,
    render_prometheus,
    runtime_sink,
    set_registry,
    update_cache_hit_ratio,
    use_registry,
)
from .passes import emit_pass_timing, pass_timing_event, pass_timing_events
from .report import (
    BlockStat,
    LaunchSummary,
    divergence_summary,
    load_trace_events,
    render_heatmap,
    render_report,
    report_json,
    summary_dict,
)
from .runtime import WarpTrace, flush_warp_trace

__all__ = [
    "Tracer", "NullTracer", "NULL_TRACER", "Span",
    "COMPILE_PID", "SIM_PID_BASE",
    "current_tracer", "set_tracer", "use", "trace",
    "MeldingDecision", "BlockPairScore", "ACTIONS", "emit_decisions",
    "pass_timing_event", "pass_timing_events", "emit_pass_timing",
    "WarpTrace", "flush_warp_trace",
    "BlockStat", "LaunchSummary", "divergence_summary",
    "load_trace_events", "render_heatmap", "render_report",
    "report_json", "summary_dict",
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY", "SNAPSHOT_SCHEMA",
    "current_registry", "set_registry", "use_registry", "collect_metrics",
    "exponential_buckets", "linear_buckets", "occupancy_buckets",
    "SECONDS_BUCKETS", "CYCLES_BUCKETS", "RATE_BUCKETS",
    "render_prometheus", "bridge_to_tracer", "runtime_sink",
    "record_pass_seconds", "record_cache_lookup", "record_cache_eviction",
    "record_cfm_decisions", "record_task_seconds", "record_validate_verdict",
    "update_cache_hit_ratio",
]

#: the ambient tracer every instrumentation site reads
_current = NULL_TRACER


def current_tracer():
    """The ambient tracer (:data:`NULL_TRACER` unless one is installed)."""
    return _current


def set_tracer(tracer) -> object:
    """Install ``tracer`` as the ambient tracer; returns the previous one.

    Prefer the scoped :func:`use` / :func:`trace` context managers; this
    exists for REPL sessions and harnesses that manage scope themselves.
    """
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use(tracer) -> Iterator[object]:
    """Install ``tracer`` as the ambient tracer for the ``with`` scope."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def trace(path: Optional[str] = None, tracer: Optional[Tracer] = None
          ) -> Iterator[Tracer]:
    """Trace everything in the ``with`` scope; write Chrome JSON on exit.

    ``path=None`` skips the write — the yielded :class:`Tracer` still
    holds every event for programmatic use.  This is also exported as
    ``repro.trace``.
    """
    active = tracer if tracer is not None else Tracer()
    with use(active):
        yield active
    if path is not None:
        active.write(path)
