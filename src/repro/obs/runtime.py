"""Warp-level runtime tracing: divergence, reconvergence, occupancy.

The SIMT interpreter is the hot path, so tracing is strictly opt-in: a
:class:`WarpTrace` sink is handed to each :class:`~repro.simt.warp.Warp`
only when a launch runs under an enabled tracer; with tracing disabled
the warp holds ``trace=None`` and the instrumentation is a single
``is not None`` check (no calls, no allocations).

A sink records compact tuples during execution — timestamps are the
warp's own cumulative issue-cycle count, so the timeline is the
simulator's cycle model, not wall clock — and is flushed into the
tracer once the block finishes:

* ``exec``        — block entry, with the active-lane count (occupancy);
* ``branch``      — a uniform conditional/unconditional branch;
* ``diverge``     — a mask split, with taken / not-taken lane counts;
* ``reconverge``  — an IPDOM stack pop merging lanes back.

One Perfetto process per launch, one thread per warp
(``block<B>/warp<W>``), plus an ``active_lanes`` counter track per warp.
The :mod:`repro.obs.report` heatmap aggregates exactly these events.
"""

from __future__ import annotations

from typing import List, Tuple

#: event-kind tags used in the compact per-warp tuples
EXEC, BRANCH, DIVERGE, RECONVERGE = "exec", "branch", "diverge", "reconverge"


class WarpTrace:
    """Per-warp event sink (compact tuples; flushed post-run)."""

    __slots__ = ("block_id", "warp_index", "events")

    def __init__(self, block_id: int, warp_index: int) -> None:
        self.block_id = block_id
        self.warp_index = warp_index
        #: (kind, cycle, block_name, a, b) — a/b are kind-specific counts
        self.events: List[Tuple[str, int, str, int, int]] = []

    # The recorders run inside the warp interpreter loop: keep them to a
    # single tuple append each.

    def exec_block(self, cycle: int, block: str, active: int) -> None:
        self.events.append((EXEC, cycle, block, active, 0))

    def branch(self, cycle: int, block: str, active: int) -> None:
        self.events.append((BRANCH, cycle, block, active, 0))

    def diverge(self, cycle: int, block: str, taken: int,
                not_taken: int) -> None:
        self.events.append((DIVERGE, cycle, block, taken, not_taken))

    def reconverge(self, cycle: int, block: str, active: int) -> None:
        self.events.append((RECONVERGE, cycle, block, active, 0))


def flush_warp_trace(tracer, pid: int, tid: int, trace: WarpTrace) -> None:
    """Convert one warp's compact events into trace events.

    ``exec`` entries become instants *and* ``active_lanes`` counter
    samples; branch/diverge/reconverge become instants whose args the
    report CLI aggregates into the divergence heatmap.
    """
    tracer.thread_name(pid, tid,
                       f"block{trace.block_id}/warp{trace.warp_index}")
    for kind, cycle, block, a, b in trace.events:
        if kind == EXEC:
            tracer.instant(EXEC, cat="sim", pid=pid, tid=tid, ts=cycle,
                           args={"block": block, "active": a})
            tracer.counter("active_lanes", {"active": a},
                           pid=pid, tid=tid, ts=cycle)
        elif kind == BRANCH:
            tracer.instant(BRANCH, cat="sim", pid=pid, tid=tid, ts=cycle,
                           args={"block": block, "divergent": False,
                                 "active": a})
        elif kind == DIVERGE:
            tracer.instant(DIVERGE, cat="sim", pid=pid, tid=tid, ts=cycle,
                           args={"block": block, "divergent": True,
                                 "taken": a, "not_taken": b})
        else:
            tracer.instant(RECONVERGE, cat="sim", pid=pid, tid=tid,
                           ts=cycle, args={"block": block, "active": a})
