"""Pass-timing events: the single implementation both the pass manager
and the evaluation harness serialize through.

``PassPipeline.trace_events()`` and
``repro.evaluation.trace.pass_trace_events()`` used to hand-roll the
same JSON event shape independently; both are now thin aliases of
:func:`pass_timing_events`.  The shape is duck-typed — anything with the
:class:`~repro.transforms.pass_manager.PassTiming` attributes serializes
— so this module imports nothing from :mod:`repro.transforms` and stays
a leaf.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .tracer import COMPILE_PID, NULL_TRACER


def pass_timing_event(timing) -> Dict[str, object]:
    """One pass execution as a JSON-serializable event dict.

    This is the line format of the JSONL pass trace: ``pass`` /
    ``seconds`` / ``changed``, plus the IR block/instruction sizes when
    the pipeline collected them.
    """
    event: Dict[str, object] = {
        "pass": timing.name,
        "seconds": timing.seconds,
        "changed": timing.changed,
    }
    if timing.blocks_before is not None:
        event.update(
            blocks_before=timing.blocks_before,
            blocks_after=timing.blocks_after,
            instructions_before=timing.instructions_before,
            instructions_after=timing.instructions_after,
        )
    if getattr(timing, "cached", False):
        # Replayed from a compile cache: ``seconds`` is the original
        # run's cost, not a live measurement of this process.
        event["cached"] = True
    return event


def pass_timing_events(timings: Iterable) -> List[Dict[str, object]]:
    """Serialize pass timings as JSON-ready event dicts."""
    return [pass_timing_event(t) for t in timings]


def emit_pass_timing(timing, tracer=None, tid: int = 0,
                     ts: Optional[float] = None) -> None:
    """Record one finished pass execution as a compile-side span.

    The span's args carry the JSONL event (IR-size deltas included), so
    a Perfetto click on a pass bar shows exactly what the structured
    trace records.  A no-op under the :class:`~repro.obs.NullTracer`.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if not tracer.enabled:
        return
    tracer.complete(f"pass:{timing.name}", dur=timing.seconds * 1e6,
                    cat="compile", pid=COMPILE_PID, tid=tid, ts=ts,
                    args=pass_timing_event(timing))
