"""Branch fusion (Coutinho et al. 2011) — the stronger baseline of Table I.

Branch fusion generalizes tail merging with instruction alignment, but is
restricted to *diamond-shaped* divergent branches: both sides must be a
single basic block with a common successor.  As the paper observes, CFM
subsumes it — so the implementation literally runs CFM's melder on a
region whose subgraph decomposition is constrained to the
single-block/single-block case, refusing anything more complex.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.divergence import compute_divergence
from repro.analysis.dominators import compute_postdominator_tree
from repro.core.meldable import find_meldable_region, subgraphs_meldable
from repro.core.melder import Melder
from repro.core.profitability import subgraph_profitability
from repro.core.sese import SESESubgraph
from repro.core.subgraph_align import SubgraphPair
from repro.core.unpredication import unpredicate
from repro.ir.function import Function
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.simplifycfg import (
    fold_redundant_branches,
    remove_trivial_phis,
    remove_unreachable_blocks,
)
from repro.transforms.ssa_repair import repair_ssa


def fuse_branches(function: Function, profitability_threshold: float = 0.0,
                  max_iterations: int = 32) -> bool:
    """Fuse divergent diamonds to a fixpoint.  Returns True if changed."""
    changed = False
    for _ in range(max_iterations):
        if not _fuse_one(function, profitability_threshold):
            return changed
        changed = True
    return changed


def _fuse_one(function: Function, threshold: float) -> bool:
    divergence = compute_divergence(function)
    pdt = compute_postdominator_tree(function)
    for block in function.blocks:
        region = find_meldable_region(block, divergence, pdt)
        if region is None:
            continue
        pair = _diamond_pair(region)
        if pair is None or pair.profitability <= threshold:
            continue
        result = Melder(function, region, pair).meld()
        remove_unreachable_blocks(function)
        repair_ssa(function)
        unpredicate(function, result)
        progress = True
        while progress:
            progress = fold_redundant_branches(function)
            progress |= remove_trivial_phis(function)
            progress |= remove_unreachable_blocks(function)
        eliminate_dead_code(function)
        return True
    return False


def _diamond_pair(region) -> Optional[SubgraphPair]:
    """The diamond restriction: each path is exactly one basic block whose
    single successor is the region exit."""
    true_block = region.true_first
    false_block = region.false_first
    if true_block.single_succ is not region.exit:
        return None
    if false_block.single_succ is not region.exit:
        return None
    if true_block.single_pred is not region.entry:
        return None
    if false_block.single_pred is not region.entry:
        return None
    s_t = SESESubgraph(true_block, true_block, region.exit, {true_block})
    s_f = SESESubgraph(false_block, false_block, region.exit, {false_block})
    mapping = subgraphs_meldable(s_t, s_f)
    if mapping is None:
        return None
    return SubgraphPair(s_t, s_f, mapping, subgraph_profitability(mapping), 0, 0)
