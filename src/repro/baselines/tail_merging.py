"""Tail merging (cross-jumping) — the classic baseline of Table I.

Merges *literally identical* instruction suffixes of two unconditional
predecessors of a join block into a shared tail block.  This is the
restrictive technique the paper contrasts with: it requires the two
sides to execute the same opcodes on the **same operands** (value
identity), so the diamond-with-identical-sequences pattern merges fully,
while anything with side-specific operands (CFM's bread and butter) is
out of reach.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Instruction, Phi
from repro.ir.values import Constant, Value


def _identical(a: Instruction, b: Instruction,
               correspondence: dict) -> bool:
    """Identical instructions: same shape, and operands that are either
    the same value or corresponding earlier instructions of the suffix
    (the SSA rendition of 'identical code sequences' — in machine code
    the intra-suffix references are register names, which match too)."""
    if a.operand_signature() != b.operand_signature():
        return False
    for op_a, op_b in zip(a.operands, b.operands):
        if op_a is op_b:
            continue
        if correspondence.get(op_b) is op_a:
            continue
        if isinstance(op_a, Constant) and isinstance(op_b, Constant) and op_a == op_b:
            continue
        return False
    return True


def _common_suffix(a: BasicBlock, b: BasicBlock) -> List[Tuple[Instruction, Instruction]]:
    """Pairs of identical instructions at the two blocks' tails (excluding
    terminators), in execution order.  Intra-suffix operand references are
    matched positionally, so the longest valid suffix is found by trying
    suffix lengths longest-first."""
    instrs_a = [i for i in a.instructions if not i.is_terminator
                and not isinstance(i, Phi)]
    instrs_b = [i for i in b.instructions if not i.is_terminator
                and not isinstance(i, Phi)]
    for length in range(min(len(instrs_a), len(instrs_b)), 0, -1):
        tail_a = instrs_a[-length:]
        tail_b = instrs_b[-length:]
        correspondence: dict = {}
        ok = True
        for instr_a, instr_b in zip(tail_a, tail_b):
            if instr_a is instr_b or not _identical(instr_a, instr_b,
                                                    correspondence):
                ok = False
                break
            correspondence[instr_b] = instr_a
        if ok:
            return list(zip(tail_a, tail_b))
    return []


def merge_tails(function: Function) -> bool:
    """Run tail merging to a fixpoint.  Returns True if the CFG changed."""
    changed = False
    while _merge_one(function):
        changed = True
    return changed


def _merge_one(function: Function) -> bool:
    for merge in function.blocks:
        preds = merge.preds
        if len(preds) != 2:
            continue
        a, b = preds
        if a is b:
            continue
        term_a, term_b = a.terminator, b.terminator
        if not isinstance(term_a, Branch) or term_a.is_conditional:
            continue
        if not isinstance(term_b, Branch) or term_b.is_conditional:
            continue
        suffix = _common_suffix(a, b)
        # Identical suffixes must not depend on side-local values outside
        # the suffix: an instruction whose operand is an earlier suffix
        # instruction is fine, anything else must be common to both sides
        # (enforced by _identical already, since operands are compared by
        # identity).  φ consistency in the join limits how deep we can go.
        suffix = _trim_for_phis(merge, a, b, suffix)
        if not suffix:
            continue
        _apply(function, merge, a, b, suffix)
        return True
    return False


def _trim_for_phis(merge: BasicBlock, a: BasicBlock, b: BasicBlock,
                   suffix: List[Tuple[Instruction, Instruction]]) -> List:
    """After merging, the join's φs receive one edge instead of two, so
    each φ's incoming values from a and b must be the same value once the
    suffix pairs are unified."""
    if not suffix:
        return suffix
    unified = {pair[1]: pair[0] for pair in suffix}
    for phi in merge.phis:
        value_a = phi.incoming_for(a)
        value_b = phi.incoming_for(b)
        value_b = unified.get(value_b, value_b)
        same = value_a is value_b or (
            isinstance(value_a, Constant) and isinstance(value_b, Constant)
            and value_a == value_b)
        if not same:
            return []
    return suffix


def _apply(function: Function, merge: BasicBlock, a: BasicBlock, b: BasicBlock,
           suffix: List[Tuple[Instruction, Instruction]]) -> None:
    tail = function.add_block(f"{merge.name}.tail", after=a)
    # Move a's copies into the tail; b's copies die after RAUW.
    for instr_a, _ in suffix:
        a._remove_instruction(instr_a)
        instr_a.parent = tail
        tail._instructions.append(instr_a)
    for instr_a, instr_b in suffix:
        instr_b.replace_all_uses_with(instr_a)
    for _, instr_b in reversed(suffix):
        instr_b.erase_from_parent()
    tail.append(Branch([merge]))
    a.terminator.replace_successor(merge, tail)
    b.terminator.replace_successor(merge, tail)
    for phi in merge.phis:
        value = phi.incoming_for(a)
        phi.remove_incoming(a)
        phi.remove_incoming(b)
        phi.add_incoming(value, tail)
