"""Prior divergence-reduction techniques CFM is compared against
(Table I): tail merging and branch fusion.

Both are exposed twice: as plain ``(Function) -> bool`` callables
(:func:`merge_tails`, :func:`fuse_branches`) and as standard
:class:`~repro.transforms.Pass` subclasses (:class:`TailMergingPass`,
:class:`BranchFusionPass`) so a :class:`~repro.transforms.PassPipeline`
— and the differential-testing oracle built on it — can host the
baselines through the same ``run(function) -> PassResult`` surface as
CFM and the standard transforms.
"""

from typing import Optional

from repro.ir.function import Function
from repro.transforms.pass_manager import Pass, PassResult

from .tail_merging import merge_tails
from .branch_fusion import fuse_branches


class TailMergingPass(Pass):
    """Tail merging (cross-jumping) behind the standard pass surface."""

    name = "tail-merging"

    def run(self, function: Function) -> PassResult:
        return PassResult(changed=merge_tails(function))


class BranchFusionPass(Pass):
    """Branch fusion (Coutinho et al. 2011) behind the standard pass
    surface; the profitability threshold mirrors :func:`fuse_branches`."""

    name = "branch-fusion"

    def __init__(self, profitability_threshold: float = 0.0) -> None:
        self.profitability_threshold = profitability_threshold

    def run(self, function: Function) -> PassResult:
        return PassResult(changed=fuse_branches(
            function, profitability_threshold=self.profitability_threshold))


__all__ = ["merge_tails", "fuse_branches",
           "TailMergingPass", "BranchFusionPass"]
