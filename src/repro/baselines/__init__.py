"""Prior divergence-reduction techniques CFM is compared against
(Table I): tail merging and branch fusion."""

from .tail_merging import merge_tails
from .branch_fusion import fuse_branches

__all__ = ["merge_tails", "fuse_branches"]
