"""SIMT GPU simulator: warps, IPDOM reconvergence, metrics.

This package substitutes for the paper's AMD Vega 64 + rocprof setup: it
executes kernels warp-by-warp in lockstep with an IPDOM reconvergence
stack (the divergence mechanism CFM optimizes) and reports the same
counter families the paper measures.
"""

from .config import DEFAULT_CONFIG, MachineConfig
from .machine import GPU, Buffer, run_kernel
from .memory import DeviceMemory, MemoryError_, sizeof
from .metrics import Metrics
from .warp import SimulationError, UNDEF, Warp

__all__ = [
    "DEFAULT_CONFIG", "MachineConfig",
    "GPU", "Buffer", "run_kernel",
    "DeviceMemory", "MemoryError_", "sizeof",
    "Metrics",
    "SimulationError", "UNDEF", "Warp",
]
