"""SIMT GPU simulator: warps, IPDOM reconvergence, metrics.

This package substitutes for the paper's AMD Vega 64 + rocprof setup: it
executes kernels warp-by-warp in lockstep with an IPDOM reconvergence
stack (the divergence mechanism CFM optimizes) and reports the same
counter families the paper measures.

Two executors share the machine semantics (see ``docs/performance.md``):
the tree-walking **reference** interpreter (:class:`Warp`) and the
lowered **fast** path (:class:`FastWarp` over a :class:`LoweredProgram`),
selected via ``MachineConfig.executor`` or ``GPU(executor=...)``.
"""

from .config import DEFAULT_CONFIG, EXECUTORS, MachineConfig
from .fastpath import FastWarp
from .lowering import (
    PROGRAM_SCHEMA,
    LoweredProgram,
    ProgramDecodeError,
    get_program,
    invalidate_lowering,
    latency_token_key,
    lower_function,
    lower_symbolic,
    materialize_program,
    seed_program,
)
from .machine import GPU, Buffer, run_kernel
from .memory import DeviceMemory, MemoryError_, sizeof
from .metrics import Metrics
from .warp import SimulationError, UNDEF, Warp

__all__ = [
    "DEFAULT_CONFIG", "EXECUTORS", "MachineConfig",
    "GPU", "Buffer", "run_kernel",
    "DeviceMemory", "MemoryError_", "sizeof",
    "Metrics",
    "SimulationError", "UNDEF", "Warp",
    "FastWarp", "LoweredProgram", "PROGRAM_SCHEMA", "ProgramDecodeError",
    "get_program", "invalidate_lowering", "lower_function",
    "latency_token_key", "lower_symbolic", "materialize_program",
    "seed_program",
]
