"""SIMT GPU simulator: warps, pluggable reconvergence, metrics.

This package substitutes for the paper's AMD Vega 64 + rocprof setup: it
executes kernels warp-by-warp in lockstep under a reconvergence policy
(the divergence mechanism CFM optimizes) and reports the same counter
families the paper measures.

:class:`MachineConfig` is the single machine description — warp size,
latency model, executor, reconvergence policy — accepted uniformly as
``machine=`` by every launch surface.  Two executors share the machine
semantics (see ``docs/performance.md``): the tree-walking **reference**
interpreter (:class:`Warp`) and the lowered **fast** path
(:class:`FastWarp` over a :class:`LoweredProgram`), selected via
``MachineConfig.executor``.  Two reconvergence policies share the
scheduling logic (:mod:`repro.simt.reconvergence`): the classic
``"ipdom"`` stack and the stack-less ``"min-pc"`` path list, selected
via ``MachineConfig.reconvergence``.
"""

from .config import (
    DEFAULT_CONFIG,
    EXECUTORS,
    MachineConfig,
    machine_token_key,
    resolve_machine,
)
from .fastpath import FastWarp
from .lowering import (
    PROGRAM_SCHEMA,
    LoweredProgram,
    ProgramDecodeError,
    clear_lowering_memo,
    get_program,
    invalidate_lowering,
    latency_token_key,
    lower_function,
    lower_symbolic,
    materialize_program,
    seed_program,
)
from .machine import GPU, Buffer, run_kernel
from .memory import DeviceMemory, MemoryError_, sizeof
from .metrics import Metrics
from .reconvergence import (
    RECONVERGENCE_POLICIES,
    IPDOMPolicy,
    MinPCPolicy,
    ReconvergencePolicy,
    get_policy,
)
from .warp import SimulationError, UNDEF, Warp

__all__ = [
    "DEFAULT_CONFIG", "EXECUTORS", "MachineConfig",
    "machine_token_key", "resolve_machine",
    "RECONVERGENCE_POLICIES", "ReconvergencePolicy",
    "IPDOMPolicy", "MinPCPolicy", "get_policy",
    "GPU", "Buffer", "run_kernel",
    "DeviceMemory", "MemoryError_", "sizeof",
    "Metrics",
    "SimulationError", "UNDEF", "Warp",
    "FastWarp", "LoweredProgram", "PROGRAM_SCHEMA", "ProgramDecodeError",
    "clear_lowering_memo", "get_program", "invalidate_lowering",
    "lower_function",
    "latency_token_key", "lower_symbolic", "materialize_program",
    "seed_program",
]
