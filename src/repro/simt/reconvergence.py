"""Pluggable warp reconvergence policies.

The simulator's original (and default) divergence mechanism is the
classic **IPDOM stack** (§II-A of the paper): at a divergent branch the
current stack entry is rewritten to the immediate post-dominator and the
two sides are pushed; an entry whose ``pc`` reaches its ``rpc`` pops,
implicitly merging its lanes.  Hardware and simulators also ship
**stack-less** schemes — "Control Flow Management in Modern GPUs"
(arXiv 2407.02944) surveys the design space — and the ``rust_riscv``
``simtx`` executor models one directly: a warp is a list of
``(fetch_pc, execution_mask)`` *paths*; before each fetch the scheduler
picks the path with the minimum PC and opportunistically *fuses* any
paths whose PCs collide.

Both mechanisms live here, once, behind the
:class:`ReconvergencePolicy` strategy interface, and are shared by
**both** executors (:class:`repro.simt.warp.Warp` and
:class:`repro.simt.fastpath.FastWarp`) — so for a given policy the two
executors remain bit-identical in memory, metrics and trace stream, and
the scheduling logic itself can never drift between them.

A policy never touches registers or memory: φ transfers happen on edge
*execution* (at the branch), so a path's lanes always carry correct
register state and fusing two paths is a pure mask union.  Program
counters are **block indices** in ``function.blocks`` order — the same
order :mod:`repro.simt.lowering` assigns, so the reference executor
(which walks IR blocks) and the fast path (which walks lowered blocks)
agree on what "minimum PC" means.

Scheduler protocol (one scheduler instance per warp ``run()``):

``next()``
    Returns ``(pc, mask, merges)`` for the path to execute next, where
    ``merges`` is ``None`` or a list of ``(pc, active_after)``
    reconvergence notifications the executor must trace *before*
    executing the block.  ``pc is None`` once every lane has retired.
``advance(pc)``
    The current path took a uniform control transfer to ``pc``.
``retire()``
    The current path executed ``ret``.
``diverge(true_pc, false_pc, taken, not_taken, rpc)``
    The current path split at a divergent conditional branch.  ``rpc``
    is the immediate post-dominator's block index (``-1`` when the
    sides never rejoin); stack-less policies are free to ignore it.

Device memory is bit-identical across policies for race-free kernels
(each lane executes its own program-order instruction sequence no
matter how paths interleave); cycle counts, divergence counters and
trace streams are *per-policy observables* with their own goldens
(``tests/simt/test_policy_goldens.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "RECONVERGENCE_POLICIES",
    "ReconvergencePolicy",
    "IPDOMPolicy",
    "MinPCPolicy",
    "get_policy",
]


class _IPDOMScheduler:
    """The classic reconvergence stack, entries ``[pc, rpc, mask]``.

    ``rpc == -1`` marks "no reconvergence point" (an entry that runs to
    ``ret``); the true side is pushed last so it executes first, exactly
    as the pre-policy executors did.
    """

    __slots__ = ("_stack",)

    def __init__(self, entry_pc: int, mask: Tuple[int, ...]) -> None:
        self._stack: List[list] = [[entry_pc, -1, mask]]

    def next(self):
        stack = self._stack
        merges = None
        while stack:
            entry = stack[-1]
            pc = entry[0]
            if entry[1] >= 0 and pc == entry[1]:
                # pc reached its reconvergence point: pop, lanes merge
                # into the entry below (the reconvergence holder).
                stack.pop()
                if merges is None:
                    merges = []
                merges.append((pc, len(stack[-1][2]) if stack else 0))
                continue
            return pc, entry[2], merges
        return None, (), merges

    def advance(self, pc: int) -> None:
        self._stack[-1][0] = pc

    def retire(self) -> None:
        self._stack.pop()

    def diverge(self, true_pc: int, false_pc: int,
                taken: Tuple[int, ...], not_taken: Tuple[int, ...],
                rpc: int) -> None:
        stack = self._stack
        if rpc < 0:
            # No common post-dominator (multiple rets): both sides run
            # to completion independently and never merge.
            stack.pop()
            stack.append([false_pc, -1, not_taken])
            stack.append([true_pc, -1, taken])
        else:
            stack[-1][0] = rpc  # current entry becomes the holder
            stack.append([false_pc, rpc, not_taken])
            stack.append([true_pc, rpc, taken])


class _MinPCScheduler:
    """Stack-less path list, simtx-style: ``[pc, mask]`` paths.

    ``next()`` first fuses every group of paths sharing a PC (one
    reconvergence notification per fused group, masks merged in lane
    order), then steps the path with the minimum PC.  A divergent branch
    simply replaces the current path with its two sides — no
    post-dominator bookkeeping, so ``rpc`` is ignored.
    """

    __slots__ = ("_paths", "_current")

    def __init__(self, entry_pc: int, mask: Tuple[int, ...]) -> None:
        self._paths: List[list] = [[entry_pc, mask]]
        self._current = 0

    def next(self):
        paths = self._paths
        if not paths:
            return None, (), None
        merges = None
        if len(paths) > 1:
            by_pc = {}
            fused = None
            for path in paths:
                kept = by_pc.get(path[0])
                if kept is None:
                    by_pc[path[0]] = path
                else:
                    kept[1] = kept[1] + path[1]
                    if fused is None:
                        fused = set()
                    fused.add(path[0])
            if fused is not None:
                for pc in fused:
                    by_pc[pc][1] = tuple(sorted(by_pc[pc][1]))
                self._paths = paths = [by_pc[pc] for pc in sorted(by_pc)]
                merges = [(pc, len(by_pc[pc][1])) for pc in sorted(fused)]
        current = 0
        lowest = paths[0][0]
        for index in range(1, len(paths)):
            if paths[index][0] < lowest:
                lowest = paths[index][0]
                current = index
        self._current = current
        path = paths[current]
        return path[0], path[1], merges

    def advance(self, pc: int) -> None:
        self._paths[self._current][0] = pc

    def retire(self) -> None:
        self._paths.pop(self._current)

    def diverge(self, true_pc: int, false_pc: int,
                taken: Tuple[int, ...], not_taken: Tuple[int, ...],
                rpc: int) -> None:
        current = self._current
        self._paths[current] = [true_pc, taken]
        self._paths.insert(current + 1, [false_pc, not_taken])


class ReconvergencePolicy:
    """Strategy interface: how a warp schedules divergent control flow.

    A policy is a stateless singleton whose :meth:`scheduler` mints one
    per-warp scheduler (see the protocol in the module docstring).
    Select one via :attr:`repro.simt.MachineConfig.reconvergence`;
    registered names are in :data:`RECONVERGENCE_POLICIES`.
    """

    #: registry name, the value ``MachineConfig.reconvergence`` takes
    name: str = "?"

    def scheduler(self, entry_pc: int, mask: Tuple[int, ...]):
        """A fresh per-warp scheduler starting at ``entry_pc``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<ReconvergencePolicy {self.name!r}>"


class IPDOMPolicy(ReconvergencePolicy):
    """Stack-based reconvergence at the immediate post-dominator."""

    name = "ipdom"

    def scheduler(self, entry_pc: int, mask: Tuple[int, ...]):
        return _IPDOMScheduler(entry_pc, mask)


class MinPCPolicy(ReconvergencePolicy):
    """Stack-less min-PC path-list scheduling with path fusion."""

    name = "min-pc"

    def scheduler(self, entry_pc: int, mask: Tuple[int, ...]):
        return _MinPCScheduler(entry_pc, mask)


#: recognized ``MachineConfig.reconvergence`` values, in registry order
RECONVERGENCE_POLICIES = ("ipdom", "min-pc")

_POLICIES = {policy.name: policy
             for policy in (IPDOMPolicy(), MinPCPolicy())}


def get_policy(name: str) -> ReconvergencePolicy:
    """The registered policy singleton for ``name``."""
    policy = _POLICIES.get(name)
    if policy is None:
        raise ValueError(
            f"unknown reconvergence policy {name!r}; "
            f"expected one of {RECONVERGENCE_POLICIES}")
    return policy
