"""Machine model for the SIMT simulator.

The defaults are Vega-flavoured (the paper's GPU): SIMD execution of one
warp/wavefront per issue, LDS much cheaper than global memory, and
64-byte memory coalescing segments.  ``warp_size`` defaults to 32 so the
paper's block-size sweeps (32..1024) divide evenly; the AMD wavefront
width of 64 is a one-line change and is exercised in tests/ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.latency import LatencyModel

#: recognized ``MachineConfig.executor`` / ``GPU(executor=...)`` values
EXECUTORS = ("fast", "reference")


@dataclass
class MachineConfig:
    """Tunable parameters of the simulated GPU."""

    warp_size: int = 32
    #: static latency table shared with CFM's profitability heuristics
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: bytes per coalesced global-memory transaction
    coalesce_segment_bytes: int = 64
    #: extra cycles charged per additional memory transaction
    extra_transaction_cycles: int = 32
    #: max steps per warp before the simulator assumes non-termination
    max_warp_steps: int = 2_000_000
    #: record a per-branch divergence profile (Metrics.branch_profile)
    profile_branches: bool = False
    #: warp executor: "fast" runs lowered µop programs (repro.simt.fastpath),
    #: "reference" walks the IR directly (repro.simt.warp) — bit-identical
    #: semantics, held together by tests/simt/test_executor_diff.py
    executor: str = "fast"

    def transactions_for(self, addresses) -> int:
        """Number of coalescing segments touched by the given byte
        addresses (at least 1 when any lane is active)."""
        if not addresses:
            return 0
        seg = self.coalesce_segment_bytes
        return len({addr // seg for addr in addresses})


DEFAULT_CONFIG = MachineConfig()
