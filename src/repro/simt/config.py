"""Machine model for the SIMT simulator.

:class:`MachineConfig` is **the single machine description**: warp
width, latency tables, coalescing, the warp executor *and* the
reconvergence policy all live here, and every launch surface — ``GPU``,
``run_kernel``, ``repro.launch``, difftest's ``run_oracle``, the
evaluation sweeps — accepts one uniform ``machine=`` argument.  The
pre-PR-7 spellings (``executor=`` kwargs, ``config=``) survive as thin
deprecated aliases for one release; see :func:`resolve_machine`.

The defaults are Vega-flavoured (the paper's GPU): SIMD execution of one
warp/wavefront per issue, LDS much cheaper than global memory, and
64-byte memory coalescing segments.  ``warp_size`` defaults to 32 so the
paper's block-size sweeps (32..1024) divide evenly; the AMD wavefront
width of 64 is a one-line change and is exercised in tests/ablations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Optional

from repro._deprecation import warn_once
from repro.analysis.latency import LatencyModel, latency_token

from .reconvergence import RECONVERGENCE_POLICIES

#: recognized ``MachineConfig.executor`` values
EXECUTORS = ("fast", "reference")


@dataclass
class MachineConfig:
    """Tunable parameters of the simulated GPU.

    Instances hash and compare by contents (:meth:`token`), so configs
    can key caches directly — two machines with equal fields share
    warp-level program cache entries, and machines that differ in any
    observable knob (including :attr:`reconvergence`) can never alias.
    """

    warp_size: int = 32
    #: static latency table shared with CFM's profitability heuristics
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: bytes per coalesced global-memory transaction
    coalesce_segment_bytes: int = 64
    #: extra cycles charged per additional memory transaction
    extra_transaction_cycles: int = 32
    #: max steps per warp before the simulator assumes non-termination
    max_warp_steps: int = 2_000_000
    #: record a per-branch divergence profile (Metrics.branch_profile)
    profile_branches: bool = False
    #: warp executor: "fast" runs lowered µop programs (repro.simt.fastpath),
    #: "reference" walks the IR directly (repro.simt.warp) — bit-identical
    #: semantics, held together by tests/simt/test_executor_diff.py
    executor: str = "fast"
    #: reconvergence policy: "ipdom" (classic post-dominator stack) or
    #: "min-pc" (stack-less path list with fusion); see
    #: repro.simt.reconvergence.  Device memory is policy-invariant for
    #: race-free kernels; cycles/divergence observables are per-policy.
    reconvergence: str = "ipdom"

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {EXECUTORS}")
        if self.reconvergence not in RECONVERGENCE_POLICIES:
            raise ValueError(
                f"unknown reconvergence policy {self.reconvergence!r}; "
                f"expected one of {RECONVERGENCE_POLICIES}")

    def transactions_for(self, addresses) -> int:
        """Number of coalescing segments touched by the given byte
        addresses (at least 1 when any lane is active)."""
        if not addresses:
            return 0
        seg = self.coalesce_segment_bytes
        return len({addr // seg for addr in addresses})

    # ---- identity ---------------------------------------------------------

    def token(self) -> tuple:
        """Hashable identity of every observable field (backs ``hash``)."""
        return (self.warp_size, latency_token(self.latency),
                self.coalesce_segment_bytes, self.extra_transaction_cycles,
                self.max_warp_steps, self.profile_branches,
                self.executor, self.reconvergence)

    def program_token(self) -> tuple:
        """Identity of everything warp-level *lowering state* may depend
        on.  Includes the reconvergence policy, so per-policy entries in
        the program memo and the persistent compile cache can never
        alias across policies (µop programs are policy-independent
        today, but the key is defensive by design)."""
        return (latency_token(self.latency), self.reconvergence)

    def __hash__(self) -> int:
        return hash(self.token())


def machine_token_key(machine: MachineConfig) -> str:
    """Stable text form of :meth:`MachineConfig.program_token`, used by
    digest-keyed caches (the persistent compile cache's program
    payload)."""
    return json.dumps(machine.program_token(), separators=(",", ":"))


DEFAULT_CONFIG = MachineConfig()


def resolve_machine(machine: Optional[MachineConfig] = None, *,
                    config: Optional[MachineConfig] = None,
                    executor: Optional[str] = None,
                    where: str = "GPU",
                    stacklevel: int = 4) -> MachineConfig:
    """Collapse the legacy machine kwargs into one :class:`MachineConfig`.

    ``machine=`` is the canonical spelling.  The legacy kwargs —
    ``config=`` (the old name) and ``executor=`` (the old per-call
    override, which still overrides ``config.executor`` as it always
    did) — keep working on their own, each emitting a
    :class:`DeprecationWarning` once per call site.  But a legacy kwarg
    that duplicates a ``MachineConfig`` field alongside ``machine=`` is
    rejected with an error naming the winning spelling: the redesign's
    whole point is that the machine description has one home.
    """
    if machine is not None:
        if config is not None:
            raise ValueError(
                f"{where}: config= and machine= are the same parameter; "
                f"pass machine= only")
        if executor is not None:
            raise ValueError(
                f"{where}: executor= duplicates MachineConfig.executor "
                f"and the machine= config wins; spell it "
                f"machine=MachineConfig(executor={executor!r})")
        return machine
    if config is not None:
        warn_once(f"{where}(config=...) is deprecated; "
                  f"pass machine=<MachineConfig>", stacklevel=stacklevel)
        machine = config
    if executor is not None:
        warn_once(f"{where}(executor=...) is deprecated; pass "
                  f"machine=MachineConfig(executor=...)",
                  stacklevel=stacklevel)
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; "
                f"expected one of {EXECUTORS}")
        machine = replace(machine if machine is not None else DEFAULT_CONFIG,
                          executor=executor)
    return machine if machine is not None else DEFAULT_CONFIG
