"""Execution metrics: cycles, ALU utilization, memory instruction counts.

These mirror the ``rocprof`` counters the paper reports:

* **cycles** — the simulator's per-warp issue-cycle count, used to compute
  the Figure-7/8 speedups (``baseline.cycles / cfm.cycles``);
* **ALU utilization** (Figure 9) — active lanes per ALU issue, divided by
  the warp width: divergence leaves lanes masked off and drags this down;
* **memory instruction counters** (Figure 10) — per-warp issue counts of
  vector-memory (global), LDS (shared) and FLAT instructions, as in the
  Vega ISA manual the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.ir.types import AddressSpace


@dataclass
class Metrics:
    """Aggregated counters for one launch (or one warp)."""

    cycles: int = 0
    instructions_issued: int = 0
    alu_issues: int = 0
    alu_active_lanes: int = 0
    warp_size: int = 32
    #: per-address-space memory instruction issue counts
    memory_issues: Dict[int, int] = field(default_factory=dict)
    memory_transactions: int = 0
    barriers: int = 0
    branches: int = 0
    divergent_branches: int = 0
    #: per-branch-block profile: name -> [executions, divergent executions]
    #: (populated only when MachineConfig.profile_branches is set)
    branch_profile: Dict[str, List[int]] = field(default_factory=dict)

    # ---- recording -------------------------------------------------------

    def record_alu(self, active_lanes: int, latency: int) -> None:
        self.alu_issues += 1
        self.alu_active_lanes += active_lanes
        self.instructions_issued += 1
        self.cycles += latency

    def record_memory(self, space: int, latency: int, transactions: int) -> None:
        self.memory_issues[space] = self.memory_issues.get(space, 0) + 1
        self.memory_transactions += transactions
        self.instructions_issued += 1
        self.cycles += latency

    def record_branch(self, latency: int, divergent: bool,
                      block_name: str = "", profile: bool = False) -> None:
        self.branches += 1
        if divergent:
            self.divergent_branches += 1
        self.instructions_issued += 1
        self.cycles += latency
        if profile:
            entry = self.branch_profile.setdefault(block_name, [0, 0])
            entry[0] += 1
            if divergent:
                entry[1] += 1

    def record_barrier(self, latency: int) -> None:
        self.barriers += 1
        self.instructions_issued += 1
        self.cycles += latency

    # ---- aggregation ------------------------------------------------------

    def merge(self, other: "Metrics") -> None:
        """Accumulate another warp's counters into this one.

        Both sides must agree on ``warp_size`` — ``alu_utilization``
        divides the pooled active-lane count by one width, so mixing
        widths would silently skew it.  A side that has not issued any
        ALU work yet (a freshly-constructed accumulator) adopts the other
        side's width instead of raising.
        """
        if self.warp_size != other.warp_size:
            if self.alu_issues == 0:
                self.warp_size = other.warp_size
            elif other.alu_issues != 0:
                raise ValueError(
                    f"cannot merge Metrics with warp_size="
                    f"{other.warp_size} into warp_size={self.warp_size}: "
                    f"alu_utilization would be meaningless")
        self.cycles += other.cycles
        self.instructions_issued += other.instructions_issued
        self.alu_issues += other.alu_issues
        self.alu_active_lanes += other.alu_active_lanes
        self.memory_transactions += other.memory_transactions
        self.barriers += other.barriers
        self.branches += other.branches
        self.divergent_branches += other.divergent_branches
        for space, count in other.memory_issues.items():
            self.memory_issues[space] = self.memory_issues.get(space, 0) + count
        for name, (execs, divs) in other.branch_profile.items():
            entry = self.branch_profile.setdefault(name, [0, 0])
            entry[0] += execs
            entry[1] += divs

    # ---- derived quantities --------------------------------------------------

    def divergence_rate(self, block_name: str) -> float:
        """Fraction of a branch's dynamic executions that diverged."""
        execs, divs = self.branch_profile.get(block_name, (0, 0))
        return divs / execs if execs else 0.0

    @property
    def alu_utilization(self) -> float:
        """Fraction of SIMD lanes doing useful ALU work per ALU issue
        (Figure 9 reports this as a percentage)."""
        if self.alu_issues == 0:
            return 0.0
        return self.alu_active_lanes / (self.alu_issues * self.warp_size)

    @property
    def vector_memory_issues(self) -> int:
        return self.memory_issues.get(AddressSpace.GLOBAL, 0)

    @property
    def shared_memory_issues(self) -> int:
        return self.memory_issues.get(AddressSpace.SHARED, 0)

    @property
    def flat_memory_issues(self) -> int:
        return self.memory_issues.get(AddressSpace.FLAT, 0)

    def as_dict(self) -> Dict[str, object]:
        """Lossless JSON-serializable snapshot (report CLI, sweep trace).

        Contains every raw counter, so ``Metrics.from_dict(m.as_dict())``
        round-trips exactly; derived quantities (``alu_utilization``,
        the per-space issue counts) are included for readability but
        ignored on the way back in.
        """
        return {
            "cycles": self.cycles,
            "instructions_issued": self.instructions_issued,
            "alu_issues": self.alu_issues,
            "alu_active_lanes": self.alu_active_lanes,
            "warp_size": self.warp_size,
            "alu_utilization": round(self.alu_utilization, 4),
            "memory_issues": {str(space): count
                              for space, count in sorted(self.memory_issues.items())},
            "vector_memory_issues": self.vector_memory_issues,
            "shared_memory_issues": self.shared_memory_issues,
            "flat_memory_issues": self.flat_memory_issues,
            "memory_transactions": self.memory_transactions,
            "branches": self.branches,
            "divergent_branches": self.divergent_branches,
            "barriers": self.barriers,
            "branch_profile": {k: list(v) for k, v in self.branch_profile.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Metrics":
        """Inverse of :meth:`as_dict` (derived fields are recomputed)."""
        return cls(
            cycles=int(data.get("cycles", 0)),
            instructions_issued=int(data.get("instructions_issued", 0)),
            alu_issues=int(data.get("alu_issues", 0)),
            alu_active_lanes=int(data.get("alu_active_lanes", 0)),
            warp_size=int(data.get("warp_size", 32)),
            memory_issues={int(space): int(count) for space, count
                           in dict(data.get("memory_issues", {})).items()},
            memory_transactions=int(data.get("memory_transactions", 0)),
            barriers=int(data.get("barriers", 0)),
            branches=int(data.get("branches", 0)),
            divergent_branches=int(data.get("divergent_branches", 0)),
            branch_profile={name: list(entry) for name, entry
                            in dict(data.get("branch_profile", {})).items()},
        )

    def summary(self) -> str:
        return (
            f"cycles={self.cycles} issued={self.instructions_issued} "
            f"alu_util={self.alu_utilization:.1%} "
            f"vmem={self.vector_memory_issues} lds={self.shared_memory_issues} "
            f"flat={self.flat_memory_issues} branches={self.branches} "
            f"(divergent={self.divergent_branches}) barriers={self.barriers}"
        )
