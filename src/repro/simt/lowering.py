"""Lowering: one-time translation of an :class:`ir.Function` into a flat
µop program for the fast-path warp executor.

The tree-walking interpreter in :mod:`repro.simt.warp` re-discovers the
same facts for every instruction, every lane, every launch: which Python
class the instruction is, where its operands live, what its latency is,
where its branch reconverges.  Lowering hoists all of that to launch
time:

* **dense virtual registers** — every SSA value (instruction results,
  arguments, constants, globals, ``undef``) gets one slot in a flat
  register file; operand access is a list index instead of a dict lookup
  through a :class:`~repro.ir.values.Value` key;
* **per-opcode dispatch** — each instruction becomes one µop tuple whose
  head is a small-int kind, with a *pre-specialized* per-lane evaluation
  closure (wraparound masks, comparison predicates, GEP scale factors
  all baked in at lowering time);
* **precomputed control flow** — branch targets, φ transfer plans per
  CFG edge (parallel read-then-write pairs), and IPDOM reconvergence
  points are resolved to block indices once.

Programs are cached per function behind the same memo pattern as
:func:`repro.analysis.cached_divergence`, with two refinements: the
cache key is the machine's **program token**
(:meth:`repro.simt.MachineConfig.program_token` — latency model plus
reconvergence policy, since latencies are baked into the µops and
per-policy lowering state must never alias) and the structural
fingerprint covers **operand identity**
(ids of operands, successors and φ incoming blocks), so in-place operand
rewrites miss the cache instead of silently replaying stale code.

Semantics are bit-identical to the reference interpreter by
construction: the per-lane closures reuse (or inline exactly) the scalar
semantics of :mod:`repro.ir.scalars`, undef propagation matches
:class:`~repro.simt.warp.Warp` observation points, and trap messages
embed the printed form of the bound function's own instruction
(re-derived at materialization, so the symbolic form stays independent
of SSA value naming and survives print/parse bit-identically).

Lowering is split into two stages so programs can persist across
processes (the compile cache stores them next to the optimized IR):

* :func:`lower_symbolic` walks the IR once and produces a **symbolic
  program** — a pure-data (JSON-serializable) µop listing in which every
  per-lane closure is a *descriptor* (e.g. ``["int2", "add", 32]``) and
  arguments/globals are referenced by name;
* :func:`materialize_program` turns a symbolic program back into a
  runnable :class:`LoweredProgram` against a concrete function: closure
  descriptors become the specialized closures, names resolve to the
  function's live :class:`~repro.ir.values.Argument` /
  :class:`~repro.ir.function.GlobalVariable` objects.

:func:`lower_function` is the composition of the two, so a program that
went through ``json.dumps``/``json.loads`` between the stages is
structurally identical to one lowered fresh — the round-trip tests in
``tests/simt/test_program_serialize.py`` assert this bit-for-bit across
all five difftest oracle arms.
"""

from __future__ import annotations

import json
import operator
import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.dominators import (
    compute_postdominator_tree,
    immediate_postdominator,
)
from repro.analysis.latency import (
    LatencyModel,
    latency_token,
    latency_token_key,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function, GlobalVariable
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    IntrinsicName,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
)
from repro.ir.scalars import EvalError, eval_binary, eval_icmp, unsigned, wrap
from repro.ir.types import FloatType, IntType
from repro.ir.values import Argument, Constant, Undef, Value

from .memory import sizeof
from .warp import SimulationError, UNDEF

# ---------------------------------------------------------------------------
# µop encoding
#
# Each non-φ, non-terminator instruction lowers to one tuple whose first
# element is a kind tag; the executor dispatches on it with an if/elif
# chain ordered by dynamic frequency.  Shapes:
#
#   (OP_COMPUTE2, dest, src_a, src_b, loop_fn, latency)
#   (OP_LOAD,     dest, src_ptr, address_space, latency, repr)
#   (OP_STORE,    src_val, src_ptr, address_space, latency, repr)
#   (OP_SELECT,   dest, src_cond, src_true, src_false, latency)
#   (OP_COMPUTE1, dest, src_a, loop_fn, latency)
#   (OP_SREG,     dest, sreg_tag, latency)
#   (OP_BARRIER,  latency)
#   (OP_TRAP,     message)
#
# ``loop_fn(rd, ra[, rb], lanes)`` evaluates the whole active mask in one
# call, so dispatch cost is paid per µop execution, not per lane.

OP_COMPUTE2 = 0
OP_LOAD = 1
OP_STORE = 2
OP_SELECT = 3
OP_COMPUTE1 = 4
OP_SREG = 5
OP_BARRIER = 6
OP_TRAP = 7

#: OP_SREG tags (index into the warp's special-register bank)
SREG_TID, SREG_NTID, SREG_CTAID, SREG_NCTAID = 0, 1, 2, 3

# Terminator shapes:
#   (TERM_RET,)
#   (TERM_BR,  succ_index, transfer_pairs)
#   (TERM_CBR, src_cond, true_index, false_index, rpc_index,
#              true_pairs, false_pairs, repr)
# ``rpc_index`` is -1 when the branch has no immediate post-dominator
# (both sides run to completion and never merge).  ``*_pairs`` are
# tuples of ``(dest_slot, src_slot)`` implementing the successor's φs
# for that edge with parallel read-then-write semantics.
# ``TERM_NONE`` marks a block without a terminator: the reference
# interpreter re-executes such a block until the step guard trips, and
# the fast path mirrors that (the verifier rejects this shape anyway).

TERM_RET = 0
TERM_BR = 1
TERM_CBR = 2
TERM_NONE = 3


class LoweredBlock:
    """One basic block, lowered: ``(name, µops, terminator)``."""

    __slots__ = ("name", "ops", "term")

    def __init__(self, name: str, ops: Tuple[tuple, ...], term: tuple) -> None:
        self.name = name
        self.ops = ops
        self.term = term


class LoweredProgram:
    """A whole function, lowered once per (function, latency model)."""

    __slots__ = ("function_name", "blocks", "entry_index", "num_slots",
                 "const_slots", "arg_slots", "global_slots", "branch_latency")

    def __init__(self, function_name: str, blocks: List[LoweredBlock],
                 entry_index: int, num_slots: int,
                 const_slots: List[Tuple[int, object]],
                 arg_slots: List[Tuple[int, Argument]],
                 global_slots: List[Tuple[int, GlobalVariable]],
                 branch_latency: int) -> None:
        self.function_name = function_name
        self.blocks = blocks
        self.entry_index = entry_index
        self.num_slots = num_slots
        self.const_slots = const_slots
        self.arg_slots = arg_slots
        self.global_slots = global_slots
        self.branch_latency = branch_latency


# ---------------------------------------------------------------------------
# per-lane evaluation closures
#
# Each maker returns ``run(rd, ra[, rb], lanes)`` evaluating every active
# lane.  Undef handling matches the reference interpreter exactly: any
# undef input yields an undef output for pure ops; traps re-raise as
# SimulationError with the instruction's printed form.

_INT_OPERATORS = {
    Opcode.ADD: operator.add, Opcode.SUB: operator.sub,
    Opcode.MUL: operator.mul, Opcode.AND: operator.and_,
    Opcode.OR: operator.or_, Opcode.XOR: operator.xor,
}
_FLOAT_OPERATORS = {
    Opcode.FADD: operator.add, Opcode.FSUB: operator.sub,
    Opcode.FMUL: operator.mul,
}
_SIGNED_CMP_OPERATORS = {
    "eq": operator.eq, "ne": operator.ne,
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
}


def _make_int2(pyop: Callable, type_: IntType) -> Callable:
    """Wraparound integer binary op — inlines :func:`scalars.wrap`."""
    mask_v = (1 << type_.bits) - 1
    if type_.bits > 1:
        sign = 1 << (type_.bits - 1)
        mod = 1 << type_.bits

        def run(rd, ra, rb, lanes):
            for i in lanes:
                a = ra[i]
                b = rb[i]
                if a is UNDEF or b is UNDEF:
                    rd[i] = UNDEF
                else:
                    v = pyop(a, b) & mask_v
                    rd[i] = v - mod if v >= sign else v
    else:
        def run(rd, ra, rb, lanes):
            for i in lanes:
                a = ra[i]
                b = rb[i]
                rd[i] = UNDEF if (a is UNDEF or b is UNDEF) else pyop(a, b) & mask_v
    return run


def _make_float2(pyop: Callable) -> Callable:
    def run(rd, ra, rb, lanes):
        for i in lanes:
            a = ra[i]
            b = rb[i]
            rd[i] = UNDEF if (a is UNDEF or b is UNDEF) else pyop(a, b)
    return run


def _make_generic2(opcode: str, type_, instr_repr: str) -> Callable:
    """Cold binary ops (div/rem/shift/fdiv): defer to ``eval_binary``."""
    def run(rd, ra, rb, lanes):
        for i in lanes:
            a = ra[i]
            b = rb[i]
            if a is UNDEF or b is UNDEF:
                rd[i] = UNDEF
                continue
            try:
                rd[i] = eval_binary(opcode, a, b, type_)
            except EvalError as exc:
                raise SimulationError(f"{exc}: {instr_repr}") from exc
    return run


def _make_icmp(predicate: str, type_: IntType) -> Callable:
    pyop = _SIGNED_CMP_OPERATORS.get(predicate)
    if pyop is not None:
        def run(rd, ra, rb, lanes):
            for i in lanes:
                a = ra[i]
                b = rb[i]
                if a is UNDEF or b is UNDEF:
                    rd[i] = UNDEF
                else:
                    rd[i] = 1 if pyop(a, b) else 0
    else:  # unsigned predicates need the width-aware reinterpretation
        def run(rd, ra, rb, lanes):
            for i in lanes:
                a = ra[i]
                b = rb[i]
                if a is UNDEF or b is UNDEF:
                    rd[i] = UNDEF
                else:
                    rd[i] = eval_icmp(predicate, a, b, type_)
    return run


def _make_fcmp(predicate: str) -> Callable:
    pyop = {"oeq": operator.eq, "one": operator.ne,
            "olt": operator.lt, "ole": operator.le,
            "ogt": operator.gt, "oge": operator.ge}[predicate]

    def run(rd, ra, rb, lanes):
        for i in lanes:
            a = ra[i]
            b = rb[i]
            if a is UNDEF or b is UNDEF:
                rd[i] = UNDEF
            else:
                rd[i] = 1 if pyop(a, b) else 0
    return run


def _make_gep(element_size: int) -> Callable:
    def run(rd, ra, rb, lanes):
        for i in lanes:
            a = ra[i]
            b = rb[i]
            rd[i] = UNDEF if (a is UNDEF or b is UNDEF) else a + b * element_size
    return run


def _make_minmax(fn: Callable) -> Callable:
    def run(rd, ra, rb, lanes):
        for i in lanes:
            a = ra[i]
            b = rb[i]
            rd[i] = UNDEF if (a is UNDEF or b is UNDEF) else fn(a, b)
    return run


def _make_fneg() -> Callable:
    def run(rd, ra, lanes):
        for i in lanes:
            v = ra[i]
            rd[i] = UNDEF if v is UNDEF else -v
    return run


def _make_cast(opcode: str, from_type, to_type) -> Callable:
    """Casts never trap; inline the :func:`scalars.eval_cast` arms."""
    if opcode == Opcode.ZEXT:
        convert = lambda v: unsigned(v, from_type)
    elif opcode == Opcode.SEXT:
        convert = lambda v: v
    elif opcode == Opcode.TRUNC:
        convert = lambda v: wrap(v, to_type)
    elif opcode == Opcode.SITOFP:
        convert = float
    elif opcode == Opcode.FPTOSI:
        convert = lambda v: wrap(int(v), to_type)
    else:  # bitcast: pointer reinterpretation, value unchanged
        convert = lambda v: v

    def run(rd, ra, lanes):
        for i in lanes:
            v = ra[i]
            rd[i] = UNDEF if v is UNDEF else convert(v)
    return run


# ---------------------------------------------------------------------------
# closure descriptors
#
# The symbolic program form replaces every per-lane closure with a small
# pure-data descriptor (a list, so it survives JSON unchanged); the first
# element names the maker, the rest are its arguments.  Types embed as
# ``["i", bits]`` / ``["f", bits]``; types a maker never reads (the
# pointer sides of a bitcast) embed as ``["p"]``.

PROGRAM_SCHEMA = "repro.simt.lowered-program/1"


class ProgramDecodeError(Exception):
    """A symbolic program could not be materialized (wrong schema,
    unknown descriptor, or a name that does not resolve against the
    target function)."""


def _encode_type(type_) -> list:
    if isinstance(type_, IntType):
        return ["i", type_.bits]
    if isinstance(type_, FloatType):
        return ["f", type_.bits]
    return ["p"]


def _decode_type(tref):
    kind = tref[0]
    if kind == "i":
        return IntType(tref[1])
    if kind == "f":
        return FloatType(tref[1])
    if kind == "p":
        return None  # only legal where the maker ignores the type
    raise ProgramDecodeError(f"unknown type reference {tref!r}")


def _binary_desc(instr: BinaryOp) -> list:
    # The trap-message repr slot is None in the symbolic form (value
    # names are not stable across print/parse); materialization fills it
    # from the bound function's own instruction.
    opcode = instr.opcode
    if isinstance(instr.type, FloatType):
        if opcode in _FLOAT_OPERATORS:
            return ["float2", opcode]
        return ["generic2", opcode, _encode_type(instr.type), None]
    if opcode in _INT_OPERATORS:
        return ["int2", opcode, _encode_type(instr.type)]
    return ["generic2", opcode, _encode_type(instr.type), None]


def _closure_from_desc(desc, instr: Optional[Instruction] = None) -> Callable:
    kind = desc[0]
    try:
        if kind == "int2":
            return _make_int2(_INT_OPERATORS[desc[1]], _decode_type(desc[2]))
        if kind == "float2":
            return _make_float2(_FLOAT_OPERATORS[desc[1]])
        if kind == "generic2":
            instr_repr = desc[3] if desc[3] is not None else repr(instr)
            return _make_generic2(desc[1], _decode_type(desc[2]), instr_repr)
        if kind == "icmp":
            return _make_icmp(desc[1], _decode_type(desc[2]))
        if kind == "fcmp":
            return _make_fcmp(desc[1])
        if kind == "gep":
            return _make_gep(desc[1])
        if kind == "minmax":
            return _make_minmax(min if desc[1] == "min" else max)
        if kind == "cast":
            return _make_cast(desc[1], _decode_type(desc[2]),
                              _decode_type(desc[3]))
        if kind == "fneg":
            return _make_fneg()
    except ProgramDecodeError:
        raise
    except Exception as exc:
        raise ProgramDecodeError(
            f"bad closure descriptor {desc!r}: {exc}") from exc
    raise ProgramDecodeError(f"unknown closure descriptor {desc!r}")


# ---------------------------------------------------------------------------
# the lowerer (IR → symbolic program)


class _Lowerer:
    def __init__(self, function: Function, latency: LatencyModel) -> None:
        self.function = function
        self.latency = latency
        self._slots: Dict[object, int] = {}
        self._next_slot = 0
        self.const_slots: List[list] = []
        self.arg_slots: List[list] = []
        self.global_slots: List[list] = []

    def slot(self, value: Value) -> int:
        # All undefs share one slot: the register file is UNDEF-initialized,
        # so the shared slot never needs writing.
        key = "__undef__" if isinstance(value, Undef) else value
        index = self._slots.get(key)
        if index is None:
            index = self._next_slot
            self._next_slot += 1
            self._slots[key] = index
            if isinstance(value, Constant):
                self.const_slots.append([index, value.value])
            elif isinstance(value, Argument):
                self.arg_slots.append([index, value.name])
            elif isinstance(value, GlobalVariable):
                self.global_slots.append([index, value.name])
        return index

    def lower(self) -> dict:
        function = self.function
        blocks = function.blocks
        block_index = {id(block): i for i, block in enumerate(blocks)}
        pdt = compute_postdominator_tree(function)

        lowered: List[dict] = []
        for block in blocks:
            ops: List[list] = []
            term: list = [TERM_NONE]
            for instr in block.instructions:
                if isinstance(instr, Phi):
                    continue  # applied on edge transfer
                if isinstance(instr, Branch):
                    term = self._lower_branch(instr, block, block_index, pdt)
                    break
                if isinstance(instr, Ret):
                    term = [TERM_RET]
                    break
                ops.append(self._lower_simple(instr))
            lowered.append({"name": block.name, "ops": ops, "term": term})

        return {
            "schema": PROGRAM_SCHEMA,
            "function": function.name,
            "blocks": lowered,
            "entry_index": block_index[id(function.entry)],
            "num_slots": self._next_slot,
            "const_slots": self.const_slots,
            "arg_slots": self.arg_slots,
            "global_slots": self.global_slots,
            "branch_latency": self.latency.branch_latency,
        }

    # ---- straight-line instructions ---------------------------------------

    def _lower_simple(self, instr: Instruction) -> list:
        latency = self.latency.latency(instr)
        if isinstance(instr, BinaryOp):
            return [OP_COMPUTE2, self.slot(instr), self.slot(instr.lhs),
                    self.slot(instr.rhs), _binary_desc(instr), latency]
        if isinstance(instr, ICmp):
            return [OP_COMPUTE2, self.slot(instr), self.slot(instr.lhs),
                    self.slot(instr.rhs),
                    ["icmp", instr.predicate, _encode_type(instr.lhs.type)],
                    latency]
        if isinstance(instr, FCmp):
            return [OP_COMPUTE2, self.slot(instr), self.slot(instr.lhs),
                    self.slot(instr.rhs), ["fcmp", instr.predicate], latency]
        if isinstance(instr, Select):
            return [OP_SELECT, self.slot(instr), self.slot(instr.condition),
                    self.slot(instr.true_value), self.slot(instr.false_value),
                    latency]
        if isinstance(instr, GetElementPtr):
            return [OP_COMPUTE2, self.slot(instr), self.slot(instr.base),
                    self.slot(instr.index),
                    ["gep", sizeof(instr.base.type.pointee)], latency]
        if isinstance(instr, Load):
            return [OP_LOAD, self.slot(instr), self.slot(instr.pointer),
                    instr.address_space, latency, None]
        if isinstance(instr, Store):
            return [OP_STORE, self.slot(instr.value), self.slot(instr.pointer),
                    instr.address_space, latency, None]
        if isinstance(instr, Cast):
            return [OP_COMPUTE1, self.slot(instr), self.slot(instr.value),
                    ["cast", instr.opcode, _encode_type(instr.value.type),
                     _encode_type(instr.type)], latency]
        if isinstance(instr, UnaryOp):
            return [OP_COMPUTE1, self.slot(instr), self.slot(instr.operand(0)),
                    ["fneg"], latency]
        if isinstance(instr, Call):
            return self._lower_call(instr, latency)
        # The reference interpreter traps when asked to evaluate an
        # unknown instruction; lower it to the same trap, fired lazily so
        # unreachable code does not poison the whole program.  (None →
        # materialization renders the message from the bound instruction.)
        return [OP_TRAP, None]

    def _lower_call(self, call: Call, latency: int) -> list:
        name = call.callee
        if call.is_barrier:
            return [OP_BARRIER, self.latency.barrier_latency]
        if name == IntrinsicName.TID_X:
            return [OP_SREG, self.slot(call), SREG_TID, latency]
        if name == IntrinsicName.NTID_X:
            return [OP_SREG, self.slot(call), SREG_NTID, latency]
        if name == IntrinsicName.CTAID_X:
            return [OP_SREG, self.slot(call), SREG_CTAID, latency]
        if name == IntrinsicName.NCTAID_X:
            return [OP_SREG, self.slot(call), SREG_NCTAID, latency]
        if name in (IntrinsicName.MIN, IntrinsicName.MAX):
            which = "min" if name == IntrinsicName.MIN else "max"
            return [OP_COMPUTE2, self.slot(call), self.slot(call.args[0]),
                    self.slot(call.args[1]), ["minmax", which], latency]
        return [OP_TRAP, f"unknown intrinsic @{name}"]

    # ---- control flow ------------------------------------------------------

    def _transfer_pairs(self, pred: BasicBlock, succ: BasicBlock) -> List[list]:
        return [[self.slot(phi), self.slot(phi.incoming_for(pred))]
                for phi in succ.phis]

    def _lower_branch(self, branch: Branch, block: BasicBlock,
                      block_index: Dict[int, int], pdt) -> list:
        if not branch.is_conditional:
            succ = branch.true_successor
            return [TERM_BR, block_index[id(succ)],
                    self._transfer_pairs(block, succ)]
        true_succ = branch.true_successor
        false_succ = branch.false_successor
        rpc = immediate_postdominator(pdt, block)
        return [TERM_CBR, self.slot(branch.condition),
                block_index[id(true_succ)], block_index[id(false_succ)],
                -1 if rpc is None else block_index[id(rpc)],
                self._transfer_pairs(block, true_succ),
                self._transfer_pairs(block, false_succ),
                None]


def lower_symbolic(function: Function, latency: LatencyModel) -> dict:
    """Lower ``function`` to the pure-data symbolic program form.

    The result contains only JSON-native values (dicts with string keys,
    lists, strings, ints, floats), so ``json.loads(json.dumps(p)) == p``
    holds exactly and the form can be persisted by the compile cache.
    Latencies from ``latency`` are baked into the µops — persisted
    programs must be keyed by :func:`latency_token` as well as by IR.
    """
    return _Lowerer(function, latency).lower()


# ---------------------------------------------------------------------------
# materialization (symbolic program → runnable program)


def _materialize_op(op, instr: Optional[Instruction]) -> tuple:
    kind = op[0]
    if kind == OP_COMPUTE2:
        return (OP_COMPUTE2, op[1], op[2], op[3],
                _closure_from_desc(op[4], instr), op[5])
    if kind == OP_COMPUTE1:
        return (OP_COMPUTE1, op[1], op[2],
                _closure_from_desc(op[3], instr), op[4])
    if kind in (OP_LOAD, OP_STORE):
        return tuple(op[:5]) + (op[5] if op[5] is not None else repr(instr),)
    if kind == OP_TRAP:
        message = op[1] if op[1] is not None else f"cannot evaluate {instr!r}"
        return (OP_TRAP, message)
    if kind in (OP_SELECT, OP_SREG, OP_BARRIER):
        return tuple(op)
    raise ProgramDecodeError(f"unknown µop kind {kind!r}")


def _materialize_term(term, branch: Optional[Instruction]) -> tuple:
    kind = term[0]
    if kind in (TERM_RET, TERM_NONE):
        return (kind,)
    if kind == TERM_BR:
        return (TERM_BR, term[1], tuple(tuple(p) for p in term[2]))
    if kind == TERM_CBR:
        branch_repr = term[7] if term[7] is not None else repr(branch)
        return (TERM_CBR, term[1], term[2], term[3], term[4],
                tuple(tuple(p) for p in term[5]),
                tuple(tuple(p) for p in term[6]), branch_repr)
    raise ProgramDecodeError(f"unknown terminator kind {kind!r}")


def _block_schedule(block: BasicBlock):
    """The (simple instructions, terminator) a lowering of ``block``
    visits — the lockstep counterpart of :meth:`_Lowerer.lower`, used by
    materialization to rebind trap-message reprs to the live IR."""
    simple: List[Instruction] = []
    terminator: Optional[Instruction] = None
    for instr in block.instructions:
        if isinstance(instr, Phi):
            continue
        if isinstance(instr, (Branch, Ret)):
            terminator = instr
            break
        simple.append(instr)
    return simple, terminator


def materialize_program(data: dict, function: Function) -> LoweredProgram:
    """Turn a symbolic program (fresh or deserialized) into a runnable
    :class:`LoweredProgram` bound to ``function``.

    Argument and global slots resolve **by name** against ``function``
    (and its module), so a program cached in one process binds to the
    re-parsed IR of another.  Raises :class:`ProgramDecodeError` when the
    schema, a descriptor, or a name does not line up.
    """
    try:
        if data["schema"] != PROGRAM_SCHEMA:
            raise ProgramDecodeError(
                f"program schema {data['schema']!r} != {PROGRAM_SCHEMA!r}")
        if len(data["blocks"]) != len(function.blocks):
            raise ProgramDecodeError(
                f"program has {len(data['blocks'])} blocks, "
                f"@{function.name} has {len(function.blocks)}")
        blocks = []
        for encoded, live in zip(data["blocks"], function.blocks):
            if encoded["name"] != live.name:
                raise ProgramDecodeError(
                    f"program block {encoded['name']!r} != live block "
                    f"{live.name!r} in @{function.name}")
            simple, terminator = _block_schedule(live)
            if len(simple) != len(encoded["ops"]):
                raise ProgramDecodeError(
                    f"block {live.name!r}: program has {len(encoded['ops'])} "
                    f"µops, live block lowers {len(simple)}")
            blocks.append(LoweredBlock(
                encoded["name"],
                tuple(_materialize_op(op, instr)
                      for op, instr in zip(encoded["ops"], simple)),
                _materialize_term(encoded["term"], terminator)))
        arg_by_name = {arg.name: arg for arg in function.args}
        arg_slots: List[Tuple[int, Argument]] = []
        for index, name in data["arg_slots"]:
            if name not in arg_by_name:
                raise ProgramDecodeError(
                    f"program argument {name!r} not in @{function.name}")
            arg_slots.append((index, arg_by_name[name]))
        global_slots: List[Tuple[int, GlobalVariable]] = []
        for index, name in data["global_slots"]:
            var = function.module.globals.get(name) \
                if function.module is not None else None
            if var is None:
                raise ProgramDecodeError(
                    f"program global @{name} not in module of @{function.name}")
            global_slots.append((index, var))
        return LoweredProgram(
            function_name=data["function"],
            blocks=blocks,
            entry_index=data["entry_index"],
            num_slots=data["num_slots"],
            const_slots=[(index, value)
                         for index, value in data["const_slots"]],
            arg_slots=arg_slots,
            global_slots=global_slots,
            branch_latency=data["branch_latency"],
        )
    except ProgramDecodeError:
        raise
    except Exception as exc:  # malformed shapes: KeyError, IndexError, ...
        raise ProgramDecodeError(f"malformed symbolic program: {exc}") from exc


def lower_function(function: Function, latency: LatencyModel) -> LoweredProgram:
    """Lower ``function`` to a µop program (uncached; see :func:`get_program`)."""
    return materialize_program(lower_symbolic(function, latency), function)


# ---------------------------------------------------------------------------
# memoization — same shape as analysis.cached_divergence, but keyed on
# MachineConfig.program_token() (latencies are baked into µops, and the
# reconvergence policy keys defensively so per-policy lowering state can
# never alias) and fingerprinted down to operand identity (operand
# rewrites must miss).  latency_token/latency_token_key now live in
# repro.analysis.latency and are re-imported above for compatibility.

_program_cache: "weakref.WeakKeyDictionary[Function, Dict[tuple, Tuple[tuple, LoweredProgram]]]" = (
    weakref.WeakKeyDictionary()
)


def function_fingerprint(function: Function) -> tuple:
    """Structural + operand-identity fingerprint of a function.

    Unlike :func:`analysis.divergence._fingerprint`, this sees in-place
    operand rewrites, successor retargeting and φ incoming edits, so
    callers never need an explicit invalidation between compile and
    launch.  Cost is O(instructions) per launch — noise next to the
    execution it guards.
    """
    parts = []
    for block in function.blocks:
        row: List[int] = [id(block)]
        append = row.append
        for instr in block.instructions:
            append(id(instr))
            for op in instr._operands:
                append(id(op))
            if isinstance(instr, Branch):
                for succ in instr._successors:
                    append(id(succ))
            elif isinstance(instr, Phi):
                for pred in instr._incoming_blocks:
                    append(id(pred))
        parts.append(tuple(row))
    return tuple(parts)


def get_program(function: Function, machine) -> LoweredProgram:
    """Memoized :func:`lower_function` (the launch-time entry point).

    ``machine`` is a :class:`repro.simt.MachineConfig`; the memo is keyed
    by its :meth:`~repro.simt.MachineConfig.program_token`, so machines
    that differ only in fields µop programs cannot observe (warp size,
    coalescing) share entries while latency-model or policy changes
    always miss.
    """
    token = machine.program_token()
    fingerprint = function_fingerprint(function)
    per_function = _program_cache.get(function)
    if per_function is not None:
        hit = per_function.get(token)
        if hit is not None and hit[0] == fingerprint:
            return hit[1]
    else:
        per_function = {}
        _program_cache[function] = per_function
    program = lower_function(function, machine.latency)
    per_function[token] = (fingerprint, program)
    return program


def seed_program(function: Function, machine,
                 program: LoweredProgram) -> None:
    """Pre-populate the launch memo with an already-materialized program.

    The compile cache calls this after a warm hit: the cached symbolic
    program is materialized against the freshly parsed ``function`` and
    seeded here, so the first launch skips :func:`lower_function`
    entirely.  The entry is guarded by the same fingerprint as a memoized
    lowering — if the function mutates before launch, the seed simply
    misses and lowering runs normally.
    """
    token = machine.program_token()
    per_function = _program_cache.get(function)
    if per_function is None:
        per_function = {}
        _program_cache[function] = per_function
    per_function[token] = (function_fingerprint(function), program)


def invalidate_lowering(function: Function) -> None:
    """Drop cached programs for ``function`` (operand-identity
    fingerprinting makes this rarely necessary; provided for symmetry
    with :func:`repro.analysis.invalidate_divergence`)."""
    _program_cache.pop(function, None)


def clear_lowering_memo() -> None:
    """Drop every memoized program in this process.

    The quarantine hook for long-lived worker processes: a task that
    crashed mid-lowering (or mid-:func:`seed_program`) may have left a
    partially-built or deliberately corrupted entry behind for a
    function object that outlives the task, and the fingerprint —
    being keyed on object identities, not content — cannot tell a
    poisoned entry from a legitimate one.  ``repro.scheduler`` workers
    call this after any task failure so the retry (in this worker or a
    replacement) always re-lowers from the IR instead of trusting
    whatever the crashed attempt left in the memo.
    """
    _program_cache.clear()
