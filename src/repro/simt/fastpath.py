"""Fast-path warp executor over lowered µop programs.

Same machine semantics as :class:`repro.simt.warp.Warp` — the pluggable
reconvergence policy (:mod:`repro.simt.reconvergence`), φ-on-edge
transfer, undef trapping, the cycle and transaction model — but
executing a :class:`~repro.simt.lowering.LoweredProgram`
instead of walking IR objects:

* operands live in a flat register file (``regs[slot][lane]``) instead of
  a dict keyed by SSA value;
* each µop carries a pre-specialized per-lane closure, so per-instruction
  dispatch is one small-int comparison instead of an ``isinstance`` chain;
* branch targets, φ transfer plans and reconvergence points are block
  indices precomputed at lowering time.  That successor/φ/rpc metadata
  is policy-*independent* — the min-PC scheduler simply ignores the rpc
  hint — so one ``LoweredProgram`` (and one serialized compile-cache
  entry) serves every reconvergence policy.

Everything observable is bit-identical to the reference executor:
device memory, every :class:`~repro.simt.metrics.Metrics` counter, the
branch profile, and the full :class:`~repro.obs.WarpTrace` event stream
(same events, same order, same ``metrics.cycles`` timestamps).  The
differential tests in ``tests/simt/test_executor_diff.py`` hold the two
executors to that contract over the difftest generator corpus.

The register file is initialized to ``UNDEF`` wholesale, so the
reference executor's "read of unwritten value" trap cannot fire here;
the verifier's dominance checks guarantee no verified kernel can
observe the difference (an unwritten read would be a use not dominated
by its definition).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.ir.values import Argument
from repro.obs import WarpTrace

from .config import MachineConfig
from .lowering import (
    LoweredProgram,
    OP_BARRIER,
    OP_COMPUTE1,
    OP_COMPUTE2,
    OP_LOAD,
    OP_SELECT,
    OP_SREG,
    OP_STORE,
    OP_TRAP,
    TERM_BR,
    TERM_CBR,
    TERM_RET,
)
from .memory import BlockMemoryView, MemoryError_, SHARED_BASE
from .metrics import Metrics
from .reconvergence import get_policy
from .warp import SimulationError, UNDEF, account_memory

#: Test-only hook (see ``benchmarks/perf/test_guard.py``): a positive
#: value sleeps this many seconds per executed block, simulating a
#: dispatch-loop performance regression so the perf guard's failure path
#: can be exercised for real.  Never set outside tests.
_TEST_DISPATCH_DELAY = 0.0


class FastWarp:
    """One warp executing a lowered µop program in lockstep.

    Drop-in replacement for :class:`~repro.simt.warp.Warp` from the
    block scheduler's point of view: same constructor surface (modulo
    taking a :class:`LoweredProgram` instead of a Function), same
    ``run()`` generator protocol (yields ``"barrier"``, returns when
    every lane has retired).
    """

    def __init__(
        self,
        program: LoweredProgram,
        lane_thread_ids: Sequence[int],
        block_dim: int,
        block_id: int,
        grid_dim: int,
        args: Dict[Argument, object],
        memory: BlockMemoryView,
        config: MachineConfig,
        metrics: Optional[Metrics] = None,
        trace: Optional[WarpTrace] = None,
        obs: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.program = program
        self.lanes = list(lane_thread_ids)
        self.block_dim = block_dim
        self.block_id = block_id
        self.grid_dim = grid_dim
        self.memory = memory
        self.config = config
        self.metrics = metrics if metrics is not None else Metrics()
        self.metrics.warp_size = config.warp_size
        self._trace = trace
        # Aggregate-metrics occupancy observer (None when collection is
        # off — same `is not None` cost contract as _trace).
        self._obs = obs
        n = len(self.lanes)
        # Flat register file, UNDEF-initialized (shared undef slot included).
        regs: List[List[object]] = [[UNDEF] * n for _ in range(program.num_slots)]
        for slot, value in program.const_slots:
            regs[slot] = [value] * n
        for slot, arg in program.arg_slots:
            regs[slot] = [args[arg]] * n
        for slot, var in program.global_slots:
            # Shared globals are windowed per block: resolve here, never
            # at lowering time.
            regs[slot] = [memory.var_address(var)] * n
        self._regs = regs
        # Special registers, one row per SREG tag (tid/ntid/ctaid/nctaid).
        self._sregs = (list(self.lanes), [block_dim] * n,
                       [block_id] * n, [grid_dim] * n)
        # Segment lists for inlined address resolution.  No allocation
        # happens mid-launch (buffers and shared windows exist before any
        # warp is constructed), so snapshotting the lists here is safe.
        self._global_segments = memory.device.global_memory._segments
        self._shared_segments = memory.shared._segments
        self._steps = 0

    def _find_segment(self, addr: int):
        """Segment owning ``addr`` — same window rule and failure message
        as :meth:`AddressSpaceMemory.segment_for`."""
        segments = (self._shared_segments if addr >= SHARED_BASE
                    else self._global_segments)
        for segment in segments:
            if segment.base <= addr < segment.end:
                return segment
        raise MemoryError_(f"wild access at {addr:#x}")

    def run(self) -> Iterator[str]:
        program = self.program
        blocks = program.blocks
        regs = self._regs
        sregs = self._sregs
        find_segment = self._find_segment
        metrics = self.metrics
        record_alu = metrics.record_alu
        record_branch = metrics.record_branch
        config = self.config
        trace = self._trace
        obs = self._obs
        profile = config.profile_branches
        branch_latency = program.branch_latency
        max_steps = config.max_warp_steps

        all_lanes = tuple(range(len(self.lanes)))
        # All control flow goes through the policy's per-warp scheduler;
        # PCs are block indices in program.blocks order (same numbering
        # the reference executor uses).
        scheduler = get_policy(config.reconvergence).scheduler(
            program.entry_index, all_lanes)
        scheduler_next = scheduler.next
        while True:
            pc, mask, merges = scheduler_next()
            if merges is not None and trace is not None:
                for merge_pc, active in merges:
                    trace.reconverge(metrics.cycles, blocks[merge_pc].name,
                                     active)
            if pc is None:
                return

            if _TEST_DISPATCH_DELAY:
                time.sleep(_TEST_DISPATCH_DELAY)
            block = blocks[pc]
            if trace is not None:
                trace.exec_block(metrics.cycles, block.name, len(mask))
            if obs is not None:
                obs(len(mask))

            for op in block.ops:
                kind = op[0]
                if kind == OP_COMPUTE2:
                    op[4](regs[op[1]], regs[op[2]], regs[op[3]], mask)
                    record_alu(len(mask), op[5])
                elif kind == OP_LOAD:
                    rd = regs[op[1]]
                    rp = regs[op[2]]
                    addresses = []
                    # Inlined address resolution with a one-entry segment
                    # cache: warp accesses overwhelmingly stay in one
                    # segment, so the linear segment scan runs once per
                    # µop instead of once per lane.
                    seg_base = seg_end = 0
                    for i in mask:
                        addr = rp[i]
                        if addr is UNDEF:
                            raise SimulationError(
                                f"load through undef address: {op[5]}")
                        addresses.append(addr)
                        if not seg_base <= addr < seg_end:
                            seg = find_segment(addr)
                            seg_base = seg.base
                            seg_end = seg.end
                            seg_data = seg.data
                            seg_size = seg.element_size
                        index, rem = divmod(addr - seg_base, seg_size)
                        if rem:
                            seg.index_of(addr)  # canonical misaligned trap
                        rd[i] = seg_data[index]
                    account_memory(metrics, config, op[3], addresses, op[4])
                elif kind == OP_STORE:
                    rv = regs[op[1]]
                    rp = regs[op[2]]
                    addresses = []
                    seg_base = seg_end = 0
                    for i in mask:
                        addr = rp[i]
                        if addr is UNDEF:
                            raise SimulationError(
                                f"store through undef address: {op[5]}")
                        addresses.append(addr)
                        if not seg_base <= addr < seg_end:
                            seg = find_segment(addr)
                            seg_base = seg.base
                            seg_end = seg.end
                            seg_data = seg.data
                            seg_size = seg.element_size
                        index, rem = divmod(addr - seg_base, seg_size)
                        if rem:
                            seg.index_of(addr)  # canonical misaligned trap
                        seg_data[index] = rv[i]
                    account_memory(metrics, config, op[3], addresses, op[4])
                elif kind == OP_SELECT:
                    rd = regs[op[1]]
                    rc = regs[op[2]]
                    rt = regs[op[3]]
                    rf = regs[op[4]]
                    for i in mask:
                        c = rc[i]
                        # `select undef, a, b` is defined (either side);
                        # propagate undef, do not trap.
                        rd[i] = UNDEF if c is UNDEF else (rt[i] if c else rf[i])
                    record_alu(len(mask), op[5])
                elif kind == OP_COMPUTE1:
                    op[3](regs[op[1]], regs[op[2]], mask)
                    record_alu(len(mask), op[4])
                elif kind == OP_SREG:
                    rd = regs[op[1]]
                    row = sregs[op[2]]
                    for i in mask:
                        rd[i] = row[i]
                    record_alu(len(mask), op[3])
                elif kind == OP_BARRIER:
                    metrics.record_barrier(op[1])
                    yield "barrier"
                else:  # OP_TRAP
                    raise SimulationError(op[1])

            term = block.term
            kind = term[0]
            if kind == TERM_RET:
                scheduler.retire()
            elif kind == TERM_BR:
                record_branch(branch_latency, divergent=False,
                              block_name=block.name, profile=profile)
                if trace is not None:
                    trace.branch(metrics.cycles, block.name, len(mask))
                pairs = term[2]
                if pairs:
                    self._transfer(pairs, mask)
                scheduler.advance(term[1])
            elif kind == TERM_CBR:
                rc = regs[term[1]]
                taken: List[int] = []
                not_taken: List[int] = []
                for i in mask:
                    cond = rc[i]
                    if cond is UNDEF:
                        raise SimulationError(
                            f"branch on undef condition: {term[7]}")
                    (taken if cond else not_taken).append(i)
                if not not_taken or not taken:
                    record_branch(branch_latency, divergent=False,
                                  block_name=block.name, profile=profile)
                    if trace is not None:
                        trace.branch(metrics.cycles, block.name, len(mask))
                    if taken:
                        target, pairs = term[2], term[5]
                    else:
                        target, pairs = term[3], term[6]
                    if pairs:
                        self._transfer(pairs, mask)
                    scheduler.advance(target)
                else:
                    # Divergence: the policy schedules the two sides;
                    # term[4] is the precomputed IPDOM index hint (-1
                    # when the sides never rejoin), which stack-less
                    # policies ignore.
                    record_branch(branch_latency, divergent=True,
                                  block_name=block.name, profile=profile)
                    if trace is not None:
                        trace.diverge(metrics.cycles, block.name,
                                      len(taken), len(not_taken))
                    taken_t = tuple(taken)
                    not_taken_t = tuple(not_taken)
                    scheduler.diverge(term[2], term[3], taken_t, not_taken_t,
                                      term[4])
                    if term[6]:
                        self._transfer(term[6], not_taken_t)
                    if term[5]:
                        self._transfer(term[5], taken_t)
            # TERM_NONE: leave pc unchanged; the step guard below catches
            # the resulting non-termination, as in the reference.

            self._steps += 1
            if self._steps > max_steps:
                raise SimulationError(
                    f"warp exceeded {max_steps} block steps; likely "
                    f"non-termination in @{program.function_name}")

    def _transfer(self, pairs, mask) -> None:
        """Apply one CFG edge's φ moves (parallel read-then-write)."""
        regs = self._regs
        staged = [(dest, [regs[src][i] for i in mask]) for dest, src in pairs]
        for dest, values in staged:
            rd = regs[dest]
            for i, value in zip(mask, values):
                rd[i] = value
