"""Grid/block execution and the host-side launch API.

The :class:`GPU` owns device memory and launches kernels over a grid of
thread blocks.  Each block's warps run round-robin with generator-based
barrier synchronization (``__syncthreads`` yields); non-uniform barrier
arrival — undefined behaviour on hardware — raises an error here.

The cycle model is deliberately simple and documented: total cycles are
the *sum of per-warp issue cycles*, i.e. the number of issue slots the
kernel consumes on a single-issue SIMD core.  Absolute numbers do not
match any real GPU, but ratios (the paper's speedups) track the quantity
CFM improves: issued-instruction × latency volume, which divergence
doubles and melding halves back.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.ir.function import Function, Module
from repro.ir.types import IntType, Type, I32
from repro.ir.values import Argument
from repro.obs import (
    WarpTrace,
    current_registry,
    current_tracer,
    flush_warp_trace,
    runtime_sink,
)

from .config import MachineConfig, resolve_machine
from .fastpath import FastWarp
from .lowering import get_program
from .memory import DeviceMemory, Segment
from .metrics import Metrics
from .warp import SimulationError, UNDEF, Warp


class Buffer:
    """Host handle to a device global-memory allocation."""

    def __init__(self, segment: Segment) -> None:
        self._segment = segment

    @property
    def address(self) -> int:
        return self._segment.base

    @property
    def data(self) -> List:
        """Current device contents (a copy)."""
        return list(self._segment.data)

    def write(self, values: Sequence) -> None:
        if len(values) > self._segment.count:
            raise ValueError(
                f"writing {len(values)} elements into buffer of "
                f"{self._segment.count}")
        for i, value in enumerate(values):
            self._segment.data[i] = value

    def __len__(self) -> int:
        return self._segment.count

    def assert_no_undef(self) -> None:
        """Trap helper for tests: undef must never escape to memory a
        host would read."""
        for i, value in enumerate(self._segment.data):
            if value is UNDEF:
                raise SimulationError(f"undef leaked to buffer index {i}")


class GPU:
    """A simulated GPU bound to one module.

    A GPU can be reused across many launches (a long fuzzing run drives
    thousands through one machine): :meth:`reset` drops every host
    allocation and per-block shared window so no device-memory state
    leaks from one experiment into the next, and the context-manager
    form resets on exit::

        with GPU(module) as gpu:
            buf = gpu.alloc("data", I32, values)
            gpu.launch("kernel", grid, block, {"data": buf})
    """

    def __init__(self, module: Module, machine: Optional[MachineConfig] = None,
                 *, config: Optional[MachineConfig] = None,
                 executor: Optional[str] = None) -> None:
        self.module = module
        #: the machine description (the second positional argument was
        #: named ``config`` before PR 7; ``config=``/``executor=``
        #: keywords survive as deprecated aliases via resolve_machine)
        self.machine = resolve_machine(machine, config=config,
                                       executor=executor, where="GPU")
        #: legacy aliases for pre-PR-7 call sites; same object as machine
        self.config = self.machine
        self.executor = self.machine.executor
        self.memory = DeviceMemory(module)
        #: launches since construction (reset() does not clear it)
        self.launch_count = 0

    def reset(self) -> None:
        """Return the device to its just-constructed state.

        Host buffers, module globals and every block's shared window are
        reallocated from the module's declarations; outstanding
        :class:`Buffer` handles from before the reset go stale and must
        not be passed to later launches.
        """
        self.memory = DeviceMemory(self.module)

    def __enter__(self) -> "GPU":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.reset()

    def alloc(self, name: str, element_type: Type, init: Union[int, Sequence]) -> Buffer:
        """Allocate a global buffer; ``init`` is a size or initial data."""
        if isinstance(init, int):
            segment = self.memory.allocate_buffer(name, element_type, init)
        else:
            segment = self.memory.allocate_buffer(name, element_type, len(init))
            for i, value in enumerate(init):
                segment.data[i] = value
        return Buffer(segment)

    def launch(
        self,
        kernel: Union[str, Function],
        grid_dim: int,
        block_dim: int,
        args: Dict[str, object],
        trace_label: Optional[str] = None,
    ) -> Metrics:
        """Run ``kernel`` over ``grid_dim`` blocks of ``block_dim`` threads.

        ``args`` maps parameter names to Python ints/floats or
        :class:`Buffer` handles (passed as device addresses).

        Under an enabled ambient tracer (``repro.obs``) the launch claims
        its own trace pid (named ``trace_label``, defaulting to
        ``launch:<kernel>``) and records per-warp divergence events; with
        the default no-op tracer nothing is allocated.
        """
        function = (self.module.function(kernel)
                    if isinstance(kernel, str) else kernel)
        self.launch_count += 1
        bound = self._bind_args(function, args)
        # Fast path: lower the function once per launch (memoized across
        # launches by fingerprint + machine program token, so the
        # per-launch cost of a cache hit is one fingerprint walk).
        program = (get_program(function, self.machine)
                   if self.executor == "fast" else None)
        tracer = current_tracer()
        pid = 0
        if tracer.enabled:
            pid = tracer.next_launch_pid()
            tracer.process_name(pid, trace_label or f"launch:{function.name}")
        # Aggregate metrics (repro.obs.metrics) mirror the tracer: one
        # sink per launch when the ambient registry is enabled, None —
        # and therefore zero per-site work — otherwise.
        sink = runtime_sink(current_registry(), self.machine.reconvergence,
                            self.machine.executor, self.config.warp_size)
        total = Metrics(warp_size=self.config.warp_size)
        try:
            for block_id in range(grid_dim):
                block_metrics = self._run_block(function, block_id, grid_dim,
                                                block_dim, bound, tracer, pid,
                                                program, sink)
                total.merge(block_metrics)
        except SimulationError:
            if sink is not None:
                sink.trap()
            raise
        if sink is not None:
            sink.launch_done(total)
        return total

    def _bind_args(self, function: Function, args: Dict[str, object]) -> Dict[Argument, object]:
        bound: Dict[Argument, object] = {}
        missing = [a.name for a in function.args if a.name not in args]
        if missing:
            raise ValueError(f"missing kernel arguments: {missing}")
        for arg in function.args:
            value = args[arg.name]
            if isinstance(value, Buffer):
                if not arg.type.is_pointer:
                    raise TypeError(f"buffer passed for scalar param %{arg.name}")
                bound[arg] = value.address
            else:
                bound[arg] = value
        return bound

    def _run_block(self, function: Function, block_id: int, grid_dim: int,
                   block_dim: int, args: Dict[Argument, object],
                   tracer=None, pid: int = 0, program=None,
                   sink=None) -> Metrics:
        view = self.memory.shared_for_block(block_id)
        warp_size = self.config.warp_size
        tracing = tracer is not None and tracer.enabled
        obs = sink.block if sink is not None else None
        traces: List[WarpTrace] = []
        warps: List[Union[Warp, FastWarp]] = []
        for start in range(0, block_dim, warp_size):
            lanes = list(range(start, min(start + warp_size, block_dim)))
            trace = None
            if tracing:
                trace = WarpTrace(block_id, len(warps))
                traces.append(trace)
            if program is not None:
                warps.append(FastWarp(program, lanes, block_dim, block_id,
                                      grid_dim, args, view, self.config,
                                      trace=trace, obs=obs))
            else:
                warps.append(Warp(function, lanes, block_dim, block_id,
                                  grid_dim, args, view, self.config,
                                  trace=trace, obs=obs))

        generators = [warp.run() for warp in warps]
        active = list(range(len(warps)))
        while active:
            at_barrier: List[int] = []
            finished: List[int] = []
            for index in active:
                try:
                    event = next(generators[index])
                    if event != "barrier":  # pragma: no cover - future events
                        raise SimulationError(f"unknown warp event {event!r}")
                    at_barrier.append(index)
                except StopIteration:
                    finished.append(index)
            if at_barrier and finished:
                raise SimulationError(
                    f"non-uniform barrier: warps {at_barrier} wait while "
                    f"warps {finished} exited @{function.name}")
            active = at_barrier

        block_metrics = Metrics(warp_size=warp_size)
        for warp in warps:
            block_metrics.merge(warp.metrics)
            if sink is not None:
                sink.warp_done(warp.metrics)
        if tracing:
            # Deterministic thread ids: warps numbered grid-wide in
            # (block, warp) order, so identical runs emit identical tids.
            for index, trace in enumerate(traces):
                tid = block_id * len(warps) + index
                flush_warp_trace(tracer, pid, tid, trace)
        return block_metrics


def run_kernel(
    module: Module,
    kernel: Union[str, Function],
    grid_dim: int,
    block_dim: int,
    buffers: Dict[str, Sequence],
    scalars: Optional[Dict[str, object]] = None,
    element_types: Optional[Dict[str, Type]] = None,
    machine: Optional[MachineConfig] = None,
    trace_label: Optional[str] = None,
    *,
    config: Optional[MachineConfig] = None,
    executor: Optional[str] = None,
) -> tuple:
    """One-shot convenience: allocate, launch, and read back.

    ``machine`` (a :class:`MachineConfig`) is the whole machine
    description; ``config=``/``executor=`` are deprecated aliases.
    Returns ``(outputs, metrics)`` where ``outputs`` maps each buffer name
    to its final contents.
    """
    gpu = GPU(module, resolve_machine(machine, config=config,
                                      executor=executor, where="run_kernel"))
    args: Dict[str, object] = dict(scalars or {})
    handles: Dict[str, Buffer] = {}
    for name, data in buffers.items():
        etype = (element_types or {}).get(name, I32)
        handles[name] = gpu.alloc(name, etype, list(data))
        args[name] = handles[name]
    metrics = gpu.launch(kernel, grid_dim, block_dim, args,
                         trace_label=trace_label)
    outputs = {name: handle.data for name, handle in handles.items()}
    return outputs, metrics
