"""Simulated GPU memory: global, shared (per-block), and flat addressing.

Addresses are plain integers in one flat byte-addressed space, split into
two windows:

* ``[GLOBAL_BASE, SHARED_BASE)`` — device global memory, one instance per
  grid;
* ``[SHARED_BASE, ...)`` — LDS/shared memory, one instance per thread
  block (every block sees the same virtual addresses backed by its own
  storage, as on real hardware).

``flat`` pointers need no special handling: the address window determines
which backing store serves the access, mirroring how GCN flat instructions
are resolved dynamically (and why the paper counts them separately).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.types import AddressSpace, FloatType, IntType, PointerType, Type
from repro.ir.function import GlobalVariable, Module


GLOBAL_BASE = 0x1000_0000
SHARED_BASE = 0x7000_0000


class MemoryError_(Exception):
    """Out-of-bounds or otherwise invalid simulated memory access."""


def sizeof(type_: Type) -> int:
    """Byte size of one element."""
    if isinstance(type_, IntType):
        return max(1, (type_.bits + 7) // 8)
    if isinstance(type_, FloatType):
        return type_.bits // 8
    if isinstance(type_, PointerType):
        return 8
    raise TypeError(f"sizeof undefined for {type_!r}")


class Segment:
    """One allocation: a typed array with bounds checking."""

    def __init__(self, name: str, base: int, element_type: Type, count: int) -> None:
        self.name = name
        self.base = base
        self.element_type = element_type
        self.element_size = sizeof(element_type)
        self.count = count
        self.data: List = [0] * count

    @property
    def end(self) -> int:
        return self.base + self.count * self.element_size

    def index_of(self, addr: int) -> int:
        offset = addr - self.base
        index, rem = divmod(offset, self.element_size)
        if rem != 0:
            raise MemoryError_(
                f"misaligned access at {addr:#x} in segment {self.name}")
        if not 0 <= index < self.count:
            raise MemoryError_(
                f"out-of-bounds access at {addr:#x} in segment {self.name} "
                f"(index {index}, count {self.count})")
        return index

    def load(self, addr: int):
        return self.data[self.index_of(addr)]

    def store(self, addr: int, value) -> None:
        self.data[self.index_of(addr)] = value


class AddressSpaceMemory:
    """A set of segments in one window (global or one block's shared)."""

    def __init__(self, base: int) -> None:
        self._next = base
        self._segments: List[Segment] = []

    def allocate(self, name: str, element_type: Type, count: int) -> Segment:
        size = sizeof(element_type) * count
        # Align segments to 256 bytes so coalescing stats are stable.
        base = (self._next + 255) & ~255
        segment = Segment(name, base, element_type, count)
        self._next = base + size
        self._segments.append(segment)
        return segment

    def segment_for(self, addr: int) -> Segment:
        for segment in self._segments:
            if segment.base <= addr < segment.end:
                return segment
        raise MemoryError_(f"wild access at {addr:#x}")

    def load(self, addr: int):
        return self.segment_for(addr).load(addr)

    def store(self, addr: int, value) -> None:
        self.segment_for(addr).store(addr, value)


class DeviceMemory:
    """The grid-wide view: one global window plus per-block shared windows.

    The shared windows are created lazily by :meth:`shared_for_block`,
    cloning the shared-variable layout declared in the module.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self.global_memory = AddressSpaceMemory(GLOBAL_BASE)
        self._shared_layout: List[GlobalVariable] = [
            g for g in module.globals.values() if g.is_shared
        ]
        self._global_vars: Dict[str, Segment] = {}
        for var in module.globals.values():
            if not var.is_shared:
                self._global_vars[var.name] = self.global_memory.allocate(
                    var.name, var.type.pointee, var.element_count)
        self._shared_instances: Dict[int, AddressSpaceMemory] = {}
        self._shared_segments: Dict[int, Dict[str, Segment]] = {}

    def allocate_buffer(self, name: str, element_type: Type, count: int) -> Segment:
        """Host-side allocation of a global buffer (kernel argument)."""
        return self.global_memory.allocate(name, element_type, count)

    def shared_for_block(self, block_id: int) -> "BlockMemoryView":
        if block_id not in self._shared_instances:
            shared = AddressSpaceMemory(SHARED_BASE)
            segments = {
                var.name: shared.allocate(var.name, var.type.pointee,
                                          var.element_count)
                for var in self._shared_layout
            }
            self._shared_instances[block_id] = shared
            self._shared_segments[block_id] = segments
        return BlockMemoryView(self, self._shared_instances[block_id],
                               self._shared_segments[block_id])

    def global_var_address(self, name: str) -> int:
        return self._global_vars[name].base


class BlockMemoryView:
    """What one thread block sees: global memory + its own shared window."""

    def __init__(self, device: DeviceMemory, shared: AddressSpaceMemory,
                 shared_segments: Dict[str, Segment]) -> None:
        self.device = device
        self.shared = shared
        self._shared_segments = shared_segments

    def resolve_space(self, addr: int) -> int:
        """Which address space (for metrics) an address belongs to."""
        return AddressSpace.SHARED if addr >= SHARED_BASE else AddressSpace.GLOBAL

    def load(self, addr: int):
        if addr >= SHARED_BASE:
            return self.shared.load(addr)
        return self.device.global_memory.load(addr)

    def store(self, addr: int, value) -> None:
        if addr >= SHARED_BASE:
            self.shared.store(addr, value)
        else:
            self.device.global_memory.store(addr, value)

    def var_address(self, var: GlobalVariable) -> int:
        if var.is_shared:
            return self._shared_segments[var.name].base
        return self.device.global_var_address(var.name)
